"""Shared fixtures for the benchmark harness.

Benchmarks are sized to finish in seconds while preserving the paper's
qualitative comparisons; the full-scale regenerators are the CLI entry
points (``python -m repro.experiments.table1`` etc., or the installed
``repro-table1``/``repro-table2``/``repro-figure7`` scripts).

Machine-readable results: the :func:`bench_json` fixture collects one JSON
document per benchmark family and writes it to ``BENCH_<name>.json`` at the
repository root when the session ends, so CI runs leave a diffable record
of the measured numbers next to the human-readable terminal output.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.simulator.params import MachineParams

_REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xBEEF)


@pytest.fixture(scope="session")
def ncube7() -> MachineParams:
    return MachineParams.ncube7()


@pytest.fixture(scope="session")
def bench_json():
    """Session-wide recorder: ``bench_json(name, key, value)``.

    Each distinct ``name`` becomes one ``BENCH_<name>.json`` file at the
    repo root, written once at session teardown; ``value`` must be
    JSON-serializable.
    """
    records: dict[str, dict] = {}

    def record(name: str, key: str, value) -> None:
        records.setdefault(name, {})[key] = value

    yield record
    for name, payload in records.items():
        path = _REPO_ROOT / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
