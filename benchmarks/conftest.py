"""Shared fixtures for the benchmark harness.

Benchmarks are sized to finish in seconds while preserving the paper's
qualitative comparisons; the full-scale regenerators are the CLI entry
points (``python -m repro.experiments.table1`` etc., or the installed
``repro-table1``/``repro-table2``/``repro-figure7`` scripts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.params import MachineParams


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xBEEF)


@pytest.fixture(scope="session")
def ncube7() -> MachineParams:
    return MachineParams.ncube7()
