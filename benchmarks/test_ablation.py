"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ablations:

* **Step 8 realization** — two-merge (+ mirror) versus the literal
  full-sort the paper's worst-case formula charges.
* **Eq.-(1) selection** — the chosen ``D_β`` versus the worst sequence in
  Ψ (how much the min-max heuristic actually saves).
* **Boundary probes** — simulated time with and without the probe
  short-circuit in every compare-split.
"""

from __future__ import annotations

import numpy as np

from repro.core.ftsort import fault_tolerant_sort, plan_partition
from repro.core.partition import find_min_cuts
from repro.core.selection import extra_comm_cost


FAULTS_Q6 = [7, 8, 31, 37, 49]


def test_ablation_step8_two_merge(benchmark, rng, ncube7):
    keys = rng.random(64 * 500)
    res = benchmark.pedantic(
        lambda: fault_tolerant_sort(keys, 6, FAULTS_Q6, params=ncube7, step8="two-merge"),
        rounds=1, iterations=1,
    )
    t_full = fault_tolerant_sort(keys, 6, FAULTS_Q6, params=ncube7, step8="full-sort").elapsed
    print(f"\nstep8 ablation: two-merge {res.elapsed:.0f}us vs full-sort {t_full:.0f}us "
          f"({t_full / res.elapsed:.2f}x)")
    assert res.elapsed < t_full  # s = 3 or 4 here; two-merge wins


def test_ablation_selection_heuristic(benchmark, rng, ncube7):
    """Best-vs-worst cutting sequence under the Eq.-(1) objective."""
    keys = rng.random(32 * 500)
    faults = [3, 5, 16, 24]
    partition = find_min_cuts(5, faults)
    costs = {d: extra_comm_cost(5, d, faults) for d in partition.cutting_set}
    worst = max(costs, key=costs.get)
    best_res = benchmark.pedantic(
        lambda: fault_tolerant_sort(keys, 5, faults, params=ncube7),
        rounds=1, iterations=1,
    )
    worst_res = fault_tolerant_sort(keys, 5, faults, params=ncube7, cut_dims=worst)
    print(f"\nselection ablation: D_beta={best_res.selection.cut_dims} "
          f"(cost {best_res.selection.cost}) {best_res.elapsed:.0f}us vs "
          f"worst {worst} (cost {costs[worst]}) {worst_res.elapsed:.0f}us")
    assert best_res.selection.cost <= costs[worst]
    assert best_res.elapsed <= worst_res.elapsed


def test_ablation_probe_short_circuit(benchmark, rng, ncube7):
    """Probe on/off: measured via monkeypatching the kernel default."""
    import repro.sorting.bitonic_cube as bc

    keys = rng.random(64 * 500)

    def run_with_probe(flag: bool):
        # Every batched compare-split funnels through run_exchange_jobs,
        # so forcing its probe flag toggles the optimisation everywhere.
        original = bc.run_exchange_jobs

        def patched(machine, jobs, kernels=None, probe=True):
            return original(machine, jobs, kernels=kernels, probe=flag)

        bc.run_exchange_jobs = patched
        # ftsort imported the symbol directly; patch there too.
        import repro.core.ftsort as fts

        saved = fts.run_exchange_jobs
        fts.run_exchange_jobs = patched
        try:
            return fault_tolerant_sort(keys, 6, FAULTS_Q6, params=ncube7).elapsed
        finally:
            bc.run_exchange_jobs = original
            fts.run_exchange_jobs = saved

    with_probe = benchmark.pedantic(lambda: run_with_probe(True), rounds=1, iterations=1)
    without = run_with_probe(False)
    print(f"\nprobe ablation: with {with_probe:.0f}us vs without {without:.0f}us "
          f"({without / with_probe:.2f}x)")
    assert with_probe < without


def test_ablation_switching_mode(benchmark, rng):
    """Store-and-forward (NCUBE/7) vs cut-through (NCUBE/2-style) switching.

    The partition's inter-subcube exchanges are multi-hop (reindexed
    partners); cut-through pipelining shrinks exactly that penalty, so the
    fault-tolerant sort gains more than the plain baseline does.
    """
    from repro.simulator.params import MachineParams

    keys = rng.random(32 * 500)
    faults = [3, 5, 16, 24]
    sf = MachineParams(t_compare=2, t_element=2, t_startup=100, switching="store_forward")
    ct = MachineParams(t_compare=2, t_element=2, t_startup=100, switching="cut_through")
    res_sf = benchmark.pedantic(
        lambda: fault_tolerant_sort(keys, 5, faults, params=sf), rounds=1, iterations=1
    )
    res_ct = fault_tolerant_sort(keys, 5, faults, params=ct)
    from repro.core.single_fault import fault_free_bitonic_sort

    base_sf = fault_free_bitonic_sort(keys, 5, params=sf).elapsed
    base_ct = fault_free_bitonic_sort(keys, 5, params=ct).elapsed
    ft_gain = res_sf.elapsed / res_ct.elapsed
    base_gain = base_sf / base_ct
    print(f"\nswitching ablation: ft gains {ft_gain:.3f}x from cut-through, "
          f"fault-free baseline gains {base_gain:.3f}x")
    assert res_ct.elapsed <= res_sf.elapsed
    assert ft_gain >= base_gain  # multi-hop traffic benefits most


def test_ablation_partition_vs_single_subcube_workload(benchmark, rng, ncube7):
    """Utilization payoff: sorted keys per simulated second, both methods."""
    from repro.baselines.subcube_sort import max_subcube_sort

    keys = rng.random(64 * 1000)
    ft = benchmark.pedantic(
        lambda: fault_tolerant_sort(keys, 6, FAULTS_Q6, params=ncube7),
        rounds=1, iterations=1,
    )
    base = max_subcube_sort(keys, 6, FAULTS_Q6, params=ncube7)
    ft_rate = keys.size / ft.elapsed
    base_rate = keys.size / base.elapsed
    print(f"\nthroughput: proposed {ft_rate:.3f} keys/us vs "
          f"max-subcube(Q_{base.subcube.dim}) {base_rate:.3f} keys/us")
    assert ft_rate > base_rate
