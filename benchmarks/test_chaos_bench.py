"""Chaos-campaign health benchmark — writes ``BENCH_chaos.json``.

A seeded smoke campaign (both backends, arrival stratified over the whole
run) asserting the robustness layer's contract — every scenario recovers
and sorts correctly — and recording the aggregate telemetry (detection
latency, retries, recovery overhead) as a diffable CI record.  The
full-scale gate is ``repro chaos --scenarios 200``.
"""

from __future__ import annotations

import pytest

from repro.chaos import run_campaign

SCENARIOS = 32
SEED = 1992


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(count=SCENARIOS, seed=SEED, shrink_failures=False)


class TestChaosCampaignHealth:
    def test_every_scenario_passes(self, campaign):
        assert campaign.scenarios == SCENARIOS
        assert campaign.all_passed, campaign.failures

    def test_both_backends_covered(self, campaign):
        assert set(campaign.backends) == {"phase", "spmd"}
        for per in campaign.backends.values():
            assert per["passed"] == per["scenarios"]

    def test_recoveries_actually_exercised(self, campaign):
        # The generator guarantees at least one mid-run event per scenario;
        # a campaign with no recoveries at all would mean the faults never
        # landed inside the run — a harness bug, not a robustness success.
        assert campaign.with_recovery > 0
        assert campaign.mean_recovery_overhead >= 1.0

    def test_record_results(self, campaign, bench_json):
        bench_json("chaos", "scenarios", campaign.scenarios)
        bench_json("chaos", "seed", SEED)
        bench_json("chaos", "passed", campaign.passed)
        bench_json("chaos", "all_passed", campaign.all_passed)
        bench_json("chaos", "backends", campaign.backends)
        bench_json("chaos", "recoveries", campaign.recoveries)
        bench_json("chaos", "scenarios_with_recovery", campaign.with_recovery)
        bench_json("chaos", "retries", campaign.retries)
        bench_json("chaos", "false_suspicions", campaign.false_suspicions)
        bench_json("chaos", "mean_detect_latency_us", campaign.mean_detect_latency)
        bench_json("chaos", "max_detect_latency_us", campaign.max_detect_latency)
        bench_json("chaos", "mean_recovery_overhead", campaign.mean_recovery_overhead)
        bench_json("chaos", "max_recovery_overhead", campaign.max_recovery_overhead)
