"""Chaos-campaign health benchmark — writes ``BENCH_chaos.json``.

A seeded smoke campaign (both backends, arrival stratified over the whole
run) asserting the robustness layer's contract — every scenario recovers
and sorts correctly — and recording the aggregate telemetry (detection
latency, retries, recovery overhead) as a diffable CI record.  A second
campaign cycles every registered fault universe (comparison lies, memory
corruption, hybrid diagnosis, ABFT checksums) over both backends and all
severity strata, recording the per-class survival curves and gating on
>= 95% survival per class and backend.  The full-scale gate is
``repro chaos --scenarios 200 --fault-class all``.
"""

from __future__ import annotations

import pytest

from repro.chaos import run_campaign
from repro.faults.universe import fault_class_names

SCENARIOS = 32
SEED = 1992
#: Scenario count for the all-classes campaign: 5 classes x 2 backends x
#: 3 severity strata x 2 repetitions.
CLASS_SCENARIOS = 60
#: The acceptance floor for every class/backend survival rate.
SURVIVAL_FLOOR = 0.95


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(count=SCENARIOS, seed=SEED, shrink_failures=False)


@pytest.fixture(scope="module")
def class_campaign():
    return run_campaign(count=CLASS_SCENARIOS, seed=SEED,
                        shrink_failures=False,
                        fault_classes=fault_class_names())


class TestChaosCampaignHealth:
    def test_every_scenario_passes(self, campaign):
        assert campaign.scenarios == SCENARIOS
        assert campaign.all_passed, campaign.failures

    def test_both_backends_covered(self, campaign):
        assert set(campaign.backends) == {"phase", "spmd"}
        for per in campaign.backends.values():
            assert per["passed"] == per["scenarios"]

    def test_recoveries_actually_exercised(self, campaign):
        # The generator guarantees at least one mid-run event per scenario;
        # a campaign with no recoveries at all would mean the faults never
        # landed inside the run — a harness bug, not a robustness success.
        assert campaign.with_recovery > 0
        assert campaign.mean_recovery_overhead >= 1.0

class TestFaultClassSurvival:
    def test_every_registered_class_ran_on_both_backends(self, class_campaign):
        per_class = class_campaign.fault_classes
        assert set(per_class) == set(fault_class_names())
        for name, entry in per_class.items():
            assert set(entry["backends"]) == {"phase", "spmd"}, name

    def test_survival_floor_per_class_and_backend(self, class_campaign):
        for name, entry in class_campaign.fault_classes.items():
            assert entry["pass_rate"] >= SURVIVAL_FLOOR, (name, entry)
            for backend, per in entry["backends"].items():
                rate = per["passed"] / per["scenarios"]
                assert rate >= SURVIVAL_FLOOR, (name, backend, per)

    def test_comparison_class_judged_by_dislocation(self, class_campaign):
        entry = class_campaign.fault_classes["comparison"]
        assert entry["oracle"] == "max-dislocation"
        # Every severity stratum ran and is judged against the tolerance
        # bound, not np.sort equality.
        assert set(entry["curve"]) == {"0.0005", "0.002", "0.008"}
        for point in entry["curve"].values():
            assert "max_max_dislocation" in point

    def test_all_strata_covered(self, class_campaign):
        from repro.faults.universe import get_fault_class

        for name, entry in class_campaign.fault_classes.items():
            cls = get_fault_class(name)
            if cls.curve_param is None:
                assert set(entry["curve"]) == {"default"}
            else:
                assert set(entry["curve"]) == {
                    str(float(v)) for v in cls.strata}, name

    def test_record_class_results(self, class_campaign, bench_json):
        bench_json("chaos", "fault_class_scenarios", class_campaign.scenarios)
        bench_json("chaos", "fault_class_passed", class_campaign.passed)
        bench_json("chaos", "survival_floor", SURVIVAL_FLOOR)
        bench_json("chaos", "fault_classes", class_campaign.fault_classes)


class TestRecordBaseline:
    def test_record_results(self, campaign, bench_json):
        bench_json("chaos", "scenarios", campaign.scenarios)
        bench_json("chaos", "seed", SEED)
        bench_json("chaos", "passed", campaign.passed)
        bench_json("chaos", "all_passed", campaign.all_passed)
        bench_json("chaos", "backends", campaign.backends)
        bench_json("chaos", "recoveries", campaign.recoveries)
        bench_json("chaos", "scenarios_with_recovery", campaign.with_recovery)
        bench_json("chaos", "retries", campaign.retries)
        bench_json("chaos", "false_suspicions", campaign.false_suspicions)
        bench_json("chaos", "mean_detect_latency_us", campaign.mean_detect_latency)
        bench_json("chaos", "max_detect_latency_us", campaign.max_detect_latency)
        bench_json("chaos", "mean_recovery_overhead", campaign.mean_recovery_overhead)
        bench_json("chaos", "max_recovery_overhead", campaign.max_recovery_overhead)
