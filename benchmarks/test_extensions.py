"""Benchmarks for the extension features beyond the paper's evaluation.

* vectorized batch mincut vs the reference DFS,
* mid-run fault recovery overhead,
* the SPMD message-level engine's scaling,
* host distribute/sort/collect segment split.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import find_min_cuts
from repro.core.partition_fast import mincut_batch
from repro.core.recovery import sort_with_midrun_fault
from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.faults.inject import random_faulty_processors
from repro.host import sort_session


def test_vectorized_mincut_10k(benchmark, rng):
    rows = np.array([random_faulty_processors(6, 5, rng) for _ in range(10_000)])
    result = benchmark(mincut_batch, 6, rows)
    assert result.shape == (10_000,)
    # cross-check a sample against the reference DFS
    for i in range(0, 10_000, 1000):
        assert result[i] == find_min_cuts(6, list(rows[i])).mincut


def test_midrun_recovery(benchmark, rng, ncube7):
    keys = rng.random(24 * 200)
    report = benchmark.pedantic(
        lambda: sort_with_midrun_fault(keys, 5, [3, 5], victim=10,
                                       strike_phase=6, params=ncube7),
        rounds=1, iterations=1,
    )
    print(f"\nrecovery: wasted {report.wasted_time:.0f}us, rescue "
          f"{report.rescue_time:.0f}us, redistribute "
          f"{report.redistribution_time:.0f}us, re-sort "
          f"{report.resort.elapsed:.0f}us -> {report.overhead_vs_oracle:.2f}x oracle")
    assert report.overhead_vs_oracle > 1.0
    assert np.array_equal(report.sorted_keys, np.sort(keys))


def test_spmd_engine_wallclock(benchmark, rng, ncube7):
    """Host-side wall-clock of the discrete-event engine (simulator speed)."""
    keys = rng.random(24 * 16)
    res = benchmark(spmd_fault_tolerant_sort, keys, 5, [3, 5, 16, 24], ncube7)
    assert res.finish_time > 0


def test_host_session_segments(benchmark, rng, ncube7):
    keys = rng.random(24 * 32)
    session = benchmark.pedantic(
        lambda: sort_session(keys, 5, [3, 5, 16, 24], params=ncube7),
        rounds=1, iterations=1,
    )
    total = session.total_time
    print(f"\nhost session: distribute {100 * session.distribution_time / total:.0f}%, "
          f"sort {100 * session.sort_time / total:.0f}%, "
          f"collect {100 * session.collection_time / total:.0f}%")
    assert np.array_equal(session.sorted_keys, np.sort(keys))
