"""Benchmark + regenerator for Figure 7(a)-(d) (execution time vs keys).

``pytest benchmarks/test_figure7.py --benchmark-only -s`` prints each
panel's series (reduced sweep; ``repro-figure7 --n 6`` runs the full one)
and asserts the paper's qualitative claims about who beats whom.  Each
panel's series also lands in ``BENCH_figure7.json`` at the repo root
(via the ``bench_json`` fixture) for machine consumption.
"""

from __future__ import annotations

import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.experiments.figure7 import compute_figure7, render_figure7


def _last(panel, label):
    return panel.series[label][-1]


@pytest.mark.parametrize(
    "n,claims",
    [
        # (panel dimension, [(ft label, baseline label), ...]) — each ft
        # curve must finish below its baseline at the largest M, exactly
        # the textual claims of Section 4.
        (6, [("ft r=1", "fault-free Q_5"), ("ft r=2", "fault-free Q_5"),
             ("ft r=3", "fault-free Q_4"), ("ft r=4", "fault-free Q_4"),
             ("ft r=5", "fault-free Q_4")]),
        (5, [("ft r=1", "fault-free Q_4"), ("ft r=2", "fault-free Q_4"),
             ("ft r=3", "fault-free Q_3"), ("ft r=4", "fault-free Q_3")]),
        (4, [("ft r=1", "fault-free Q_3"), ("ft r=2", "fault-free Q_3"),
             ("ft r=3", "fault-free Q_2")]),
        (3, [("ft r=1", "fault-free Q_2"), ("ft r=2", "fault-free Q_1")]),
    ],
    ids=["panel-a-Q6", "panel-b-Q5", "panel-d-Q4", "panel-c-Q3"],
)
def test_figure7_panel(benchmark, n, claims, ncube7, fast_mode, bench_json):
    per_proc = (50, 1000) if fast_mode else (50, 1000, 5000)
    m_values = tuple(p * (1 << n) for p in per_proc)
    panel = benchmark.pedantic(
        lambda: compute_figure7(
            n, m_values=m_values, placements=2 if fast_mode else 3,
            params=ncube7, seed=19920407
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure7(panel))
    bench_json("figure7", f"panel_n{n}", {
        "m_values": list(m_values),
        "series": {label: list(values) for label, values in panel.series.items()},
    })
    for ft_label, base_label in claims:
        assert _last(panel, ft_label) < _last(panel, base_label), (
            f"{ft_label} should beat {base_label} at M={m_values[-1]}"
        )


def test_ft_sort_q6_r5_large(benchmark, rng, ncube7, fast_mode, bench_json):
    """Wall-clock of one large simulated sort (harness overhead check)."""
    keys = rng.random(64 * (200 if fast_mode else 1000))
    faults = [7, 8, 31, 37, 49]
    result = benchmark(fault_tolerant_sort, keys, 6, faults, ncube7)
    assert result.elapsed > 0
    bench_json("figure7", "q6_r5_large", {
        "keys": int(keys.size),
        "simulated_elapsed_us": float(result.elapsed),
        "wall_mean_s": float(benchmark.stats.stats.mean),
    })
