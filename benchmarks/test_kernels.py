"""Micro-benchmarks of the core kernels and substrates."""

from __future__ import annotations

import numpy as np

from repro.core.partition import find_min_cuts
from repro.core.selection import select_cut_sequence
from repro.core.single_fault import fault_free_bitonic_sort
from repro.faults.diagnosis import diagnose_pmc, pmc_syndrome
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.router import Router
from repro.sorting.bitonic_seq import bitonic_sort
from repro.sorting.heapsort import heapsort
from repro.sorting.merge import compare_split


def test_compare_split_8k(benchmark, rng):
    a = np.sort(rng.random(8192))
    b = np.sort(rng.random(8192))
    res = benchmark(compare_split, a, b)
    assert res.low.size == 8192


def test_heapsort_4k(benchmark, rng):
    keys = rng.random(4096)
    out, comps = benchmark(heapsort, keys)
    assert comps > 0


def test_bitonic_seq_4k(benchmark, rng):
    keys = rng.random(4096)
    out, comps = benchmark(bitonic_sort, keys)
    assert out[0] <= out[-1]


def test_plain_block_bitonic_q6(benchmark, rng, ncube7):
    keys = rng.random(64 * 256)
    res = benchmark(fault_free_bitonic_sort, keys, 6, ncube7)
    assert res.elapsed > 0


def test_partition_plus_selection_q7(benchmark, rng):
    """Planning cost (partition DFS + Eq.-1 selection) on a bigger cube."""
    faults = tuple(int(f) for f in rng.choice(128, size=6, replace=False))

    def plan():
        part = find_min_cuts(7, faults)
        return select_cut_sequence(part)

    sel = benchmark(plan)
    assert sel.m <= 5


def test_pmc_diagnosis_q6(benchmark, rng):
    fs = FaultSet(6, tuple(int(f) for f in rng.choice(64, size=5, replace=False)))
    syndrome = pmc_syndrome(fs, rng=1)
    result = benchmark(diagnose_pmc, 6, syndrome)
    assert result.matches(fs)


def test_adaptive_routing_q8(benchmark, rng):
    faults = FaultSet(
        8, tuple(int(f) for f in rng.choice(256, size=7, replace=False)),
        kind=FaultKind.TOTAL,
    )
    router = Router(faults, strategy="adaptive")
    normal = faults.fault_free_processors()
    pairs = [(int(rng.choice(normal)), int(rng.choice(normal))) for _ in range(50)]

    def route_all():
        return sum(router.hops(s, d) for s, d in pairs)

    total = benchmark(route_all)
    assert total >= 0
