"""Kernel-backend speedup benchmark — writes ``BENCH_kernels.json``.

Three headline measurements from the PERFORMANCE.md contract:

* end-to-end :func:`fault_tolerant_sort` at ``n = 4``, ``M = 16000``,
  ``r = 3`` with the ``numpy`` backend versus the ``loop`` reference
  (same sorted bytes, same simulated cost — only wall-clock may differ);
* the memoized partition DFS versus its reference implementation at the
  hardest configuration the suite exercises (``n = 10``, ``r = 9``);
* a chaos campaign run serially versus fanned out over worker processes.

``--fast`` shrinks the workloads for CI smoke runs; the speedup *floors*
are only asserted where they are meaningful (full-size workload, enough
CPUs), but "numpy never slower than loop" holds in every mode.  The
multi-core campaign floor is its own test: it records ``cpu_count`` and
its verdict in the bench JSON and **skips visibly** (never silently
passes) on hosts that cannot exhibit a parallel speedup.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.chaos.campaign import run_campaign
from repro.core.ftsort import fault_tolerant_sort
from repro.core.partition import _find_min_cuts_reference, find_min_cuts
from repro.parallel import effective_cpu_count

SEED = 1992
N = 4
FAULTS_Q4 = [3, 9, 14]  # r = 3
CHAOS_JOBS = 4

#: Timings stashed by the campaign benchmark for the multicore floor gate
#: (a separate test so a host that cannot run the gate reports SKIPPED,
#: never a silent pass).
_campaign_timings: dict = {}


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestFtsortKernelSpeedup:
    def test_numpy_vs_loop_end_to_end(self, fast_mode, bench_json):
        m_keys = 4000 if fast_mode else 16000
        keys = np.random.default_rng(SEED).random(m_keys)

        results = {
            name: fault_tolerant_sort(keys, N, FAULTS_Q4, kernels=name)
            for name in ("numpy", "loop")
        }
        # Backend choice changes execution strategy only: identical bytes
        # out, identical simulated cost.
        np.testing.assert_array_equal(
            results["numpy"].sorted_keys, results["loop"].sorted_keys
        )
        np.testing.assert_array_equal(results["numpy"].sorted_keys, np.sort(keys))
        assert results["numpy"].elapsed == results["loop"].elapsed
        assert results["numpy"].output_order == results["loop"].output_order

        t_loop = _best_of(
            lambda: fault_tolerant_sort(keys, N, FAULTS_Q4, kernels="loop"),
            reps=1 if fast_mode else 2,
        )
        t_numpy = _best_of(
            lambda: fault_tolerant_sort(keys, N, FAULTS_Q4, kernels="numpy"),
            reps=3 if fast_mode else 5,
        )
        speedup = t_loop / t_numpy
        print(f"\nftsort n={N} M={m_keys} r={len(FAULTS_Q4)}: "
              f"loop {t_loop * 1e3:.1f}ms vs numpy {t_numpy * 1e3:.1f}ms "
              f"({speedup:.1f}x)")
        bench_json("kernels", "ftsort", {
            "n": N, "m_keys": m_keys, "faults": FAULTS_Q4,
            "loop_seconds": t_loop, "numpy_seconds": t_numpy,
            "speedup": speedup, "fast_mode": fast_mode,
        })
        assert t_numpy <= t_loop, (
            f"numpy backend slower than loop reference ({t_numpy:.4f}s vs "
            f"{t_loop:.4f}s)")
        if not fast_mode:
            assert speedup >= 5.0, f"expected >=5x at M={m_keys}, got {speedup:.2f}x"


class TestCompiledScheduleSpeedup:
    """The compiled flat-array tier versus the interpreted numpy backend.

    The compiled tier's win is eliminating the per-pair Python hot path
    (block dicts, charge calls, probe decisions), so the headline
    measurement runs where that path dominates: a big cube (many
    comparator pairs per substage) at ``M = 10^6`` keys.  Parity is
    asserted, not assumed — byte-identical sorted output and bit-identical
    simulated clock against ``numpy`` at full size, and exact per-phase
    counter equality against the pure-Python ``loop`` reference at a size
    the interpreter can afford — and recorded as the ``parity`` flag CI
    validates.
    """

    def test_compiled_vs_numpy_end_to_end(self, fast_mode, bench_json):
        n = 8 if fast_mode else 15
        m_keys = 100_000 if fast_mode else 1_000_000
        faults = [3, 9, 14, (1 << n) - 6]  # r = 4
        keys = np.random.default_rng(SEED).random(m_keys)

        results = {
            name: fault_tolerant_sort(keys, n, faults, kernels=name)
            for name in ("numpy", "compiled")
        }
        parity = (
            results["compiled"].sorted_keys.tobytes()
            == results["numpy"].sorted_keys.tobytes()
            and results["compiled"].elapsed == results["numpy"].elapsed
            and results["compiled"].output_order == results["numpy"].output_order
        )
        # Exact counter parity against the loop reference, at a size the
        # per-pair interpreter can run in bench time.
        small = np.random.default_rng(SEED).random(2000)
        ref = {
            name: fault_tolerant_sort(small, 5, [3, 5, 16, 24], kernels=name)
            for name in ("loop", "compiled")
        }
        records = lambda r: [
            (p.label, p.duration, p.comparisons, p.elements_sent,
             p.element_hops, p.messages)
            for p in r.machine.phases
        ]
        parity = (
            parity
            and ref["compiled"].sorted_keys.tobytes() == ref["loop"].sorted_keys.tobytes()
            and ref["compiled"].elapsed == ref["loop"].elapsed
            and records(ref["compiled"]) == records(ref["loop"])
        )

        t_numpy = _best_of(
            lambda: fault_tolerant_sort(keys, n, faults, kernels="numpy"),
            reps=1 if fast_mode else 2,
        )
        t_compiled = _best_of(
            lambda: fault_tolerant_sort(keys, n, faults, kernels="compiled"),
            reps=3 if fast_mode else 3,
        )
        speedup = t_numpy / t_compiled
        print(f"\nftsort n={n} M={m_keys} r={len(faults)}: "
              f"numpy {t_numpy * 1e3:.1f}ms vs compiled {t_compiled * 1e3:.1f}ms "
              f"({speedup:.1f}x)")
        bench_json("kernels", "compiled", {
            "n": n, "m_keys": m_keys, "faults": faults,
            "numpy_seconds": t_numpy, "compiled_seconds": t_compiled,
            "speedup": speedup, "parity": bool(parity),
            "fast_mode": fast_mode,
        })
        assert parity, "compiled tier diverged from the interpreted backends"
        assert t_compiled <= t_numpy, (
            f"compiled backend slower than numpy ({t_compiled:.4f}s vs "
            f"{t_numpy:.4f}s)")
        if not fast_mode:
            assert speedup >= 10.0, (
                f"expected >=10x at n={n} M={m_keys}, got {speedup:.2f}x")


class TestPartitionMemoSpeedup:
    def test_memoized_vs_reference_q10(self, fast_mode, bench_json):
        n, r = 10, 9
        faults = sorted(
            np.random.default_rng(SEED).choice(1 << n, size=r, replace=False).tolist()
        )
        new = find_min_cuts(n, faults)
        ref = _find_min_cuts_reference(n, faults)
        assert (new.mincut, new.cutting_set) == (ref.mincut, ref.cutting_set)

        reps = 3 if fast_mode else 5
        t_ref = _best_of(lambda: _find_min_cuts_reference(n, faults), reps)
        t_new = _best_of(lambda: find_min_cuts(n, faults), reps)
        speedup = t_ref / t_new
        print(f"\nfind_min_cuts n={n} r={r}: reference {t_ref * 1e3:.2f}ms vs "
              f"memoized {t_new * 1e3:.2f}ms ({speedup:.1f}x)")
        bench_json("kernels", "partition", {
            "n": n, "r": r, "faults": faults,
            "reference_seconds": t_ref, "memoized_seconds": t_new,
            "speedup": speedup, "fast_mode": fast_mode,
        })
        assert t_new <= t_ref, "memoized partition DFS slower than reference"


class TestParallelCampaignSpeedup:
    def test_serial_vs_workers(self, fast_mode, bench_json):
        count = 24 if fast_mode else 200
        cpus = effective_cpu_count()

        serial = run_campaign(count=count, seed=SEED, shrink_failures=False, jobs=1)
        fanned = run_campaign(count=count, seed=SEED, shrink_failures=False,
                              jobs=CHAOS_JOBS)
        # Best-of-2 timings: single-shot campaign runs carry ~10% wall-clock
        # noise on small hosts, which is the same order as the regression
        # threshold below.
        t_serial = _best_of(
            lambda: run_campaign(count=count, seed=SEED, shrink_failures=False,
                                 jobs=1), reps=2)
        t_jobs = _best_of(
            lambda: run_campaign(count=count, seed=SEED, shrink_failures=False,
                                 jobs=CHAOS_JOBS), reps=2)

        assert serial.all_passed and fanned.all_passed
        assert (serial.scenarios, serial.passed, serial.recoveries,
                serial.retries, serial.mean_detect_latency) == (
            fanned.scenarios, fanned.passed, fanned.recoveries,
            fanned.retries, fanned.mean_detect_latency)

        speedup = t_serial / t_jobs
        # ``regression`` is the headline guard: parallel must never lose to
        # serial.  On hosts where the pool cannot win (1 CPU, tiny batch)
        # run_tasks auto-degrades to the serial path, so the flag holds
        # there too (modulo 5% timing noise).
        regression = speedup < 0.95
        print(f"\nchaos campaign x{count}: serial {t_serial:.2f}s vs "
              f"jobs={CHAOS_JOBS} {t_jobs:.2f}s ({speedup:.2f}x, "
              f"{cpus} CPUs{', REGRESSION' if regression else ''})")
        bench_json("kernels", "chaos_campaign", {
            "scenarios": count, "jobs": CHAOS_JOBS,
            "cpu_count": os.cpu_count() or 1, "effective_cpu_count": cpus,
            "serial_seconds": t_serial, "parallel_seconds": t_jobs,
            "speedup": speedup, "regression": regression,
            "fast_mode": fast_mode,
        })
        assert not regression, (
            f"parallel campaign slower than serial ({speedup:.2f}x) — "
            "auto-serial degradation failed")
        _campaign_timings.update(speedup=speedup, fast_mode=fast_mode)

    def test_multicore_speedup_floor(self, fast_mode, bench_json):
        """The >=1.5x wall-clock floor, gated on actually having cores.

        A 1-CPU host *cannot* show a parallel speedup (run_tasks rightly
        auto-degrades to serial there), so asserting the floor would fail
        for reasons that have nothing to do with the code, and skipping it
        silently inside another test would hide that the floor was never
        checked.  This test records the *effective* CPU count — the
        affinity/cgroup-aware :func:`repro.parallel.effective_cpu_count`,
        since a many-core host pinned to one core cannot show a speedup
        either — and its own verdict in BENCH_kernels.json, then SKIPS —
        visibly — when the gate cannot run, and enforces the floor when it
        can.
        """
        cpus = effective_cpu_count()
        gate = {"cpu_count": os.cpu_count() or 1,
                "effective_cpu_count": cpus, "floor": 1.5,
                "asserted": False, "fast_mode": fast_mode}
        if "speedup" not in _campaign_timings:
            gate["skip_reason"] = "campaign benchmark was not run"
            bench_json("kernels", "multicore_floor", gate)
            pytest.skip(gate["skip_reason"])
        gate["speedup"] = _campaign_timings["speedup"]
        if cpus < 2:
            gate["skip_reason"] = f"requires >= 2 CPUs, host has {cpus}"
            bench_json("kernels", "multicore_floor", gate)
            pytest.skip(f"multicore speedup floor not checkable: "
                        f"{gate['skip_reason']}")
        if fast_mode:
            gate["skip_reason"] = "fast mode: smoke workload too small for " \
                                  "a stable wall-clock floor"
            bench_json("kernels", "multicore_floor", gate)
            pytest.skip(gate["skip_reason"])
        gate["asserted"] = True
        bench_json("kernels", "multicore_floor", gate)
        assert gate["speedup"] >= 1.5, (
            f"expected >=1.5x on {cpus} CPUs, got {gate['speedup']:.2f}x")


#: Executor-comparison workload: one task = one compiled-backend sort of a
#: parent-generated key block.  The keys array (``m * 8`` bytes) and the
#: sorted result both dwarf the pickling break-even, which is exactly the
#: regime the thread/shm tiers exist for.
EXEC_N = 6
EXEC_FAULTS = [3, 9]


def _exec_bench_task(task):
    idx, keys = task
    res = fault_tolerant_sort(keys, EXEC_N, EXEC_FAULTS, kernels="compiled")
    return (idx, res.sorted_keys)


#: Rolling window of executor-benchmark verdicts kept across runs.
TREND_KEEP = 30


def _executor_trend(speedup: float, fast_mode: bool, cpus: int) -> list:
    """Prior runs' trend points plus this run's, newest last, bounded."""
    import json
    import time
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    prior: list = []
    try:
        prior = json.loads(path.read_text())["executors"]["trend"]
        if not isinstance(prior, list):
            prior = []
    except (OSError, ValueError, KeyError):
        pass  # first run, unreadable file, or pre-trend schema
    point = {
        "speedup": round(speedup, 4),
        "target": 1.8,
        "target_met": speedup >= 1.8,
        "fast_mode": fast_mode,
        "effective_cpu_count": cpus,
        "epoch": int(time.time()),
    }
    return (prior + [point])[-TREND_KEEP:]


class TestExecutorComparison:
    """serial vs process vs thread vs shm on one compiled-kernel workload.

    Writes the ``executors`` section of ``BENCH_kernels.json``: per-tier
    wall clock, pickled-byte and arena-byte accounting from
    :func:`repro.parallel.last_run_stats`, and the peak RSS high-water
    mark, plus the headline ``best_speedup_vs_process``.  Byte-identity
    against the serial reference is asserted *always*; the >=1.5x floor
    over the process pool (target 1.8x) is asserted only where it is
    meaningful — full-size workload on >=4 effective CPUs — and recorded
    as ``asserted`` / ``floor_regression`` for CI to gate on.  On 1-CPU
    hosts every tier auto-degrades to serial (recorded in ``resolved``),
    so the benchmark still runs — and trivially stays byte-identical.
    """

    def test_executor_tiers(self, fast_mode, bench_json):
        import resource

        from repro import parallel
        from repro.parallel import run_tasks, shutdown_pool

        count = 8 if fast_mode else 24
        m_keys = 30_000 if fast_mode else 150_000
        jobs = 4
        cpus = effective_cpu_count()
        rng = np.random.default_rng(SEED)
        tasks = [(i, rng.random(m_keys)) for i in range(count)]

        def peak_rss_kb() -> int:
            return (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                    + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)

        tiers: dict[str, dict] = {}
        ref_blob = None
        try:
            for tier in ("serial", "process", "thread", "shm"):
                # Warm-up run: pays the fork/import tax outside the timed
                # window and yields the results for the byte-identity check.
                results = run_tasks(_exec_bench_task, tasks, jobs=jobs,
                                    executor=tier)
                stats = parallel.last_run_stats()
                seconds = _best_of(
                    lambda t=tier: run_tasks(_exec_bench_task, tasks,
                                             jobs=jobs, executor=t),
                    reps=1 if fast_mode else 2,
                )
                blob = b"".join(arr.tobytes() for _, arr in results)
                if ref_blob is None:
                    ref_blob = blob
                tiers[tier] = {
                    "requested": tier,
                    "resolved": stats["executor"],
                    "seconds": seconds,
                    "payload_bytes": stats["payload_bytes"],
                    "pickled_bytes": stats["pickled_bytes"],
                    "arena_bytes": stats["arena_bytes"],
                    "peak_rss_kb": peak_rss_kb(),
                    "byte_identical": blob == ref_blob,
                }
        finally:
            shutdown_pool()

        best = min(("thread", "shm"), key=lambda t: tiers[t]["seconds"])
        speedup = tiers["process"]["seconds"] / tiers[best]["seconds"]
        floor_vs_serial = tiers["serial"]["seconds"] / tiers[best]["seconds"]
        asserted = (not fast_mode) and cpus >= 4
        section = {
            "tasks": count, "m_keys": m_keys, "jobs": jobs,
            "n": EXEC_N, "faults": EXEC_FAULTS, "kernels": "compiled",
            "cpu_count": os.cpu_count() or 1, "effective_cpu_count": cpus,
            "fast_mode": fast_mode,
            "tiers": tiers,
            "byte_identical": all(t["byte_identical"] for t in tiers.values()),
            "best": best,
            "best_speedup_vs_process": speedup,
            "floor_vs_serial": floor_vs_serial,
            "target": 1.8, "target_met": speedup >= 1.8,
            "floor": 1.5, "asserted": asserted,
            "floor_regression": asserted and speedup < 1.5,
        }
        # Nightly trend toward the 1.8x target: append this run's verdict
        # to the rolling window carried in BENCH_kernels.json so the
        # nightly job can chart progress instead of only pass/fail.
        section["trend"] = _executor_trend(speedup, fast_mode, cpus)
        bench_json("kernels", "executors", section)
        pickled_saved = (tiers["process"]["pickled_bytes"]
                         - tiers[best]["pickled_bytes"])
        print(f"\nexecutors x{count} tasks M={m_keys} jobs={jobs}: " + ", ".join(
            f"{t} {rec['seconds'] * 1e3:.0f}ms" for t, rec in tiers.items())
            + f" -> best={best} ({speedup:.2f}x vs process, "
              f"{pickled_saved / 1e6:.1f}MB pickling saved)")
        assert section["byte_identical"], (
            "executor tiers diverged from the serial reference")
        if asserted:
            assert not section["floor_regression"], (
                f"zero-pickle tiers below the 1.5x floor over the process "
                f"pool on {cpus} CPUs ({speedup:.2f}x)")


def test_record_environment(bench_json, fast_mode):
    bench_json("kernels", "cpu_count", os.cpu_count() or 1)
    bench_json("kernels", "effective_cpu_count", effective_cpu_count())
    bench_json("kernels", "fast_mode", fast_mode)
    bench_json("kernels", "seed", SEED)
