"""Overhead guarantees of the observability subsystem.

Two properties are load-bearing enough to benchmark:

1. **Disabled tracing is (almost) free.**  Every instrumentation site
   guards with ``if obs.enabled:`` against the shared
   :data:`~repro.obs.NULL_TRACER`, so a sort run with tracing off must
   cost the same as before the subsystem existed — the structural tests
   below pin the fast path down, and the timing test bounds the
   null-vs-traced ratio instead of comparing against an unmeasurable
   "uninstrumented" build.
2. **Enabled tracing is cheap.**  A fully traced phase-engine sort may
   not cost more than a generous constant factor over the untraced run
   (the real ratio is a few percent; the bound leaves CI noise headroom).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.ftsort import fault_tolerant_sort
from repro.obs import NULL_TRACER, Tracer
from repro.obs.spans import _NULL_CTX


def test_null_tracer_fast_path_structure():
    """The disabled path must not allocate: shared singletons everywhere."""
    assert NULL_TRACER.enabled is False
    # span() hands back one reusable context manager, never a new object.
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b") is _NULL_CTX
    # The metrics registry is the shared no-op, and its instruments are
    # singletons too (create-on-use would allocate per call site).
    m = NULL_TRACER.metrics
    assert m.counter("x") is m.counter("y")
    assert m.histogram("x") is m.histogram("y")
    assert m.gauge("x") is m.gauge("y")
    assert m.to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


def _run_sort(keys, obs=None) -> float:
    t0 = time.perf_counter()
    res = fault_tolerant_sort(keys, 5, [3, 9, 17], obs=obs)
    assert res.elapsed > 0
    return time.perf_counter() - t0


def test_tracing_overhead_bounded(rng, fast_mode, benchmark, bench_json):
    """Traced runtime stays within 1.25x of the NullTracer runtime.

    Interleaved repetitions, best-of-N per mode: the minimum is the
    standard robust estimator for "how fast can this go", which makes the
    ratio stable enough to assert against in CI (the observed ratio is
    ~1.0-1.05; 1.25 is headroom, not an expectation).
    """
    keys = rng.random((1 << 5) * (100 if fast_mode else 500))
    rounds = 3 if fast_mode else 5
    _run_sort(keys)  # warm caches/JIT-free but import- and allocator-warm
    null_times, traced_times = [], []
    for _ in range(rounds):
        null_times.append(_run_sort(keys))
        traced_times.append(_run_sort(keys, obs=Tracer()))
    best_null = min(null_times)
    best_traced = min(traced_times)
    ratio = best_traced / best_null
    bench_json("obs", "tracing_overhead", {
        "keys": int(keys.size),
        "best_null_s": best_null,
        "best_traced_s": best_traced,
        "ratio": ratio,
    })
    assert ratio < 1.25, (
        f"traced sort took {ratio:.3f}x the untraced run (limit 1.25x)"
    )
    # One benchmarked pass with tracing disabled, so pytest-benchmark's
    # tables track the NullTracer (default) configuration over time.
    benchmark.pedantic(lambda: _run_sort(keys), rounds=1, iterations=1)


def test_null_guard_cost(benchmark):
    """The per-site cost when disabled is one attribute check."""
    obs = NULL_TRACER

    def guard_loop():
        hits = 0
        for _ in range(10_000):
            if obs.enabled:
                hits += 1
        return hits

    assert benchmark(guard_loop) == 0


def test_traced_run_records_everything(rng):
    """Sanity: the traced run in this module actually produced data."""
    keys = rng.random((1 << 5) * 20)
    obs = Tracer()
    fault_tolerant_sort(keys, 5, [3, 9, 17], obs=obs)
    assert len(obs.spans) > 10
    counters = obs.metrics.to_dict()["counters"]
    assert counters["sort.cx.executed"] > 0
    assert counters["sort.messages"] == counters["phase.messages"]
    expected = np.sort(np.asarray(keys))
    assert expected.size == keys.size
