"""Plan-cache speedup benchmark — writes ``BENCH_plancache.json``.

Headline measurement: the seeded chaos campaign (phase engine, numpy
kernels) run three ways over the *same* scenario stream —

* **nocache** — :data:`repro.plancache.PLAN_CACHE` disabled, the
  pre-cache baseline;
* **cold** — cache enabled but empty; with lazy canonicalization the
  ``Aut(Q_n)`` search is deferred until an orbit signature recurs, so
  this run must stay within 5% of the no-cache baseline;
* **warm** — the identical campaign re-run against the populated cache.

The campaign is planning-heavy on purpose (``n in (7, 8)`` so the
per-machine BFS route tables and Ψ/selection work dominate) because that
is the workload the cache exists for.  The contract asserted here is the
one PERFORMANCE.md documents: caching is *invisible* in the results —
the JSONL reports of all three runs are byte-identical and every
simulated cost matches — and the warm run beats the no-cache baseline
(>= 3x at full scale, >= 1x always).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.chaos.campaign import run_campaign
from repro.core.ftsort import fault_tolerant_sort
from repro.plancache import PLAN_CACHE

SEED = 0  # the campaign default — acceptance runs are reproducible
N_CHOICES = (7, 8)
BACKENDS = ("phase",)
#: Route tables for 200 Q7/Q8 scenarios overflow the 64k default LRU and
#: would churn; the benchmark sizes the cache to hold its working set.
CAPACITY = 1 << 18
DEFAULT_CAPACITY = 65536


@pytest.fixture(autouse=True)
def _restore_cache():
    """Leave the process-global cache in its default state afterwards."""
    yield
    PLAN_CACHE.configure(enabled=True, capacity=DEFAULT_CAPACITY)
    PLAN_CACHE.clear(reset_counters=True)


class TestPlanCacheCampaignSpeedup:
    def test_nocache_vs_cold_vs_warm(self, fast_mode, bench_json, tmp_path):
        count = 24 if fast_mode else 200
        cfg = dict(count=count, seed=SEED, n_choices=N_CHOICES,
                   backends=BACKENDS, shrink_failures=False, jobs=1)

        PLAN_CACHE.configure(enabled=False)
        PLAN_CACHE.clear(reset_counters=True)
        t0 = time.perf_counter()
        off = run_campaign(out=str(tmp_path / "off.jsonl"), **cfg)
        t_off = time.perf_counter() - t0

        PLAN_CACHE.configure(enabled=True, capacity=CAPACITY)
        PLAN_CACHE.clear(reset_counters=True)
        t0 = time.perf_counter()
        cold = run_campaign(out=str(tmp_path / "cold.jsonl"), **cfg)
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = run_campaign(out=str(tmp_path / "warm.jsonl"), **cfg)
        t_warm = time.perf_counter() - t0

        # Caching must be invisible in the outcomes: same verdicts, same
        # simulated costs, byte for byte, across all three runs.
        off_bytes = (tmp_path / "off.jsonl").read_bytes()
        assert (tmp_path / "cold.jsonl").read_bytes() == off_bytes
        assert (tmp_path / "warm.jsonl").read_bytes() == off_bytes
        assert off.to_dict() == cold.to_dict() == warm.to_dict()
        assert off.all_passed

        stats = PLAN_CACHE.stats()
        warm_speedup = t_off / t_warm
        warm_vs_cold = t_cold / t_warm
        cold_vs_nocache = t_off / t_cold
        print(f"\nplan-cache campaign x{count} n={N_CHOICES}: "
              f"nocache {t_off:.2f}s, cold {t_cold:.2f}s, warm {t_warm:.2f}s "
              f"({warm_speedup:.2f}x warm vs nocache, "
              f"{cold_vs_nocache:.2f}x cold vs nocache)")
        bench_json("plancache", "chaos_campaign", {
            "scenarios": count, "seed": SEED, "n_choices": list(N_CHOICES),
            "backends": list(BACKENDS),
            "nocache_seconds": t_off, "cold_seconds": t_cold,
            "warm_seconds": t_warm,
            "warm_speedup": warm_speedup, "warm_vs_cold": warm_vs_cold,
            "cold_vs_nocache": cold_vs_nocache,
            "reports_identical": True,
            "cache": stats,
        })
        assert warm_speedup >= 1.0, (
            f"warm cache slower than no cache ({warm_speedup:.2f}x)")
        if not fast_mode:
            assert warm_speedup >= 3.0, (
                f"expected >=3x warm-vs-nocache at {count} scenarios, "
                f"got {warm_speedup:.2f}x")
            # Lazy canonicalization keeps the cold (first-sighting) run
            # within noise of cache-off: the Aut(Q_n) search is deferred
            # until an orbit signature recurs, so one-shot workloads pay
            # only the signature hash and a few dict probes.
            assert cold_vs_nocache >= 0.95, (
                f"cold cache run more than 5% slower than cache-off "
                f"({cold_vs_nocache:.3f}x) — lazy canonicalization regressed")


class TestCacheTransparency:
    def test_sorted_bytes_and_costs_identical(self, bench_json):
        """Cache off / cold / warm produce identical sorts on both kernels."""
        keys = np.random.default_rng(SEED).random(2048)
        cases = [(4, [3, 9, 14]), (5, [3, 5, 16, 24])]
        for kernels in ("numpy", "loop"):
            for n, faults in cases:
                PLAN_CACHE.configure(enabled=False)
                PLAN_CACHE.clear(reset_counters=True)
                off = fault_tolerant_sort(keys, n, faults, kernels=kernels)
                PLAN_CACHE.configure(enabled=True, capacity=DEFAULT_CAPACITY)
                PLAN_CACHE.clear(reset_counters=True)
                cold = fault_tolerant_sort(keys, n, faults, kernels=kernels)
                warm = fault_tolerant_sort(keys, n, faults, kernels=kernels)
                for run in (cold, warm):
                    assert run.sorted_keys.tobytes() == off.sorted_keys.tobytes()
                    assert run.elapsed == off.elapsed
                    assert run.output_order == off.output_order
        bench_json("plancache", "transparency", {
            "kernels": ["numpy", "loop"],
            "cases": [{"n": n, "faults": faults} for n, faults in cases],
            "identical": True,
        })


def test_record_environment(bench_json, fast_mode):
    bench_json("plancache", "cpu_count", os.cpu_count() or 1)
    bench_json("plancache", "fast_mode", fast_mode)
    bench_json("plancache", "seed", SEED)
