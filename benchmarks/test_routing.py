"""Benchmark E11: the partial-vs-total fault routing penalty (Section 4).

The paper notes that its NCUBE/7 runs simulate *partial* faults (VERTEX
routes straight through faulty nodes) and that rewriting the router for
*total* faults would cost more.  These benches quantify that penalty on
the phase engine, on the discrete-event SPMD machine, and at the raw
routing level (adaptive detours vs e-cube distance).
"""

from __future__ import annotations

import numpy as np

from repro.core.ftsort import fault_tolerant_sort
from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.cube.address import hamming_distance
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.router import Router

FAULTS_Q5 = [3, 5, 16, 24]


def test_routing_penalty_phase_engine(benchmark, rng, ncube7):
    keys = rng.random(24 * 500)
    partial = benchmark.pedantic(
        lambda: fault_tolerant_sort(
            keys, 5, FAULTS_Q5, params=ncube7, fault_kind=FaultKind.PARTIAL
        ),
        rounds=1, iterations=1,
    )
    total = fault_tolerant_sort(
        keys, 5, FAULTS_Q5, params=ncube7, fault_kind=FaultKind.TOTAL
    )
    print(f"\nphase engine: partial {partial.elapsed:.0f}us vs "
          f"total {total.elapsed:.0f}us ({total.elapsed / partial.elapsed:.3f}x)")
    assert total.elapsed >= partial.elapsed


def test_routing_penalty_event_engine(benchmark, rng, ncube7):
    keys = rng.random(24 * 8)
    partial = benchmark.pedantic(
        lambda: spmd_fault_tolerant_sort(
            keys, 5, FAULTS_Q5, params=ncube7, fault_kind=FaultKind.PARTIAL
        ),
        rounds=1, iterations=1,
    )
    total = spmd_fault_tolerant_sort(
        keys, 5, FAULTS_Q5, params=ncube7, fault_kind=FaultKind.TOTAL
    )
    print(f"\nevent engine: partial {partial.finish_time:.0f}us vs "
          f"total {total.finish_time:.0f}us "
          f"({total.finish_time / partial.finish_time:.3f}x)")
    assert total.finish_time >= partial.finish_time
    np.testing.assert_array_equal(partial.sorted_keys, total.sorted_keys)


def test_adaptive_router_stretch(benchmark, rng):
    """Average extra hops the adaptive router pays over e-cube distance."""
    n = 6
    faults = FaultSet(
        n, tuple(int(f) for f in rng.choice(64, size=5, replace=False)),
        kind=FaultKind.TOTAL,
    )
    router = Router(faults, strategy="adaptive")
    normal = faults.fault_free_processors()
    pairs = [
        (int(rng.choice(normal)), int(rng.choice(normal))) for _ in range(200)
    ]

    def measure():
        extra = 0
        for s, d in pairs:
            extra += router.hops(s, d) - hamming_distance(s, d)
        return extra / len(pairs)

    avg_extra = benchmark(measure)
    print(f"\nadaptive stretch: {avg_extra:.3f} extra hops/message over e-cube")
    assert avg_extra >= 0
    assert avg_extra < 2.0  # detours stay short with r <= n-1 faults
