"""Service load benchmark — writes ``BENCH_service.json``.

A load generator drives an in-process :class:`SortingService` over real
TCP loopback with two tenants whose workloads are **orbit-overlapping**:
tenant ``zen``'s fault sets are automorphic images (under ``Aut(Q_n)``)
of tenant ``acme``'s, so the two tenants pose the same planning problems
in disguise.  Three questions, one JSON record:

* **Throughput/latency** — p50/p99 end-to-end latency and jobs/sec at
  full queue depth (>= 1k jobs across the 2 tenants in full mode).
* **Cross-tenant cache sharing** — the combined plan-cache hit rate with
  both tenants on the shared process-wide cache must *exceed* the
  combined rate when each tenant runs against its own isolated (cleared)
  cache.  With lazy canonicalization the win appears from the third
  distinct orbit member onward (the canonical orbit entry is paid once,
  then every further member replays), so each tenant's catalog carries
  several distinct members per orbit.
* **Drain integrity** — a drain issued while the queue is deep loses zero
  accepted jobs: every ack'd job delivers a result before ``drained``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.parallel import effective_cpu_count
from repro.plancache import PLAN_CACHE, orbit_signature
from repro.service import ServiceClient, ShardManager, SortingService
from repro.service.router import ShardRouter

SEED = 1992
N = 5
R_FAULTS = 3
KEYS = 256
TENANTS = ("acme", "zen")

# Aut(Q_5) elements used to spin orbit members: (dimension permutation,
# XOR translation).  Applied in order until enough distinct images exist.
_PERMS = ((0, 1, 2, 3, 4), (1, 0, 2, 4, 3), (4, 3, 2, 1, 0), (2, 0, 1, 4, 3))
_TRANSLATIONS = (0, 9, 21, 30)


def _image(procs: tuple[int, ...], perm, t: int) -> tuple[int, ...]:
    return tuple(sorted(
        sum(((p >> i) & 1) << perm[i] for i in range(N)) ^ t for p in procs))


def _orbit_members(rep: tuple[int, ...], count: int) -> list[tuple[int, ...]]:
    """``count`` distinct automorphic images of ``rep`` (incl. itself)."""
    members: list[tuple[int, ...]] = []
    for t in _TRANSLATIONS:
        for perm in _PERMS:
            img = _image(rep, perm, t)
            if img not in members:
                members.append(img)
            if len(members) == count:
                return members
    raise AssertionError(f"orbit of {rep} has fewer than {count} members")


def _catalogs(orbits: int, members_per_tenant: int, rng) -> dict[str, list]:
    """Per-tenant fault-set catalogs over shared orbits, disjoint members."""
    reps: list[tuple[int, ...]] = []
    sigs = set()
    while len(reps) < orbits:
        rep = tuple(sorted(rng.choice(1 << N, size=R_FAULTS, replace=False).tolist()))
        sig = orbit_signature(N, rep)
        if sig not in sigs:
            sigs.add(sig)
            reps.append(rep)
    catalogs: dict[str, list] = {t: [] for t in TENANTS}
    for rep in reps:
        members = _orbit_members(rep, 2 * members_per_tenant)
        catalogs["acme"].extend(members[:members_per_tenant])
        catalogs["zen"].extend(members[members_per_tenant:])
    return catalogs


def _stream(catalog: list, repeats: int) -> list[tuple[int, ...]]:
    """The tenant's job stream: the catalog cycled ``repeats`` times."""
    return [faults for _ in range(repeats) for faults in catalog]


def _job(faults: tuple[int, ...], seed: int) -> dict:
    return {"kind": "sort", "n": N, "faults": list(faults), "keys": KEYS,
            "seed": seed, "backend": "phase"}


def _pctl(values: list, q: float) -> float:
    return values[round(q * (len(values) - 1))]


def _rate(counters: dict) -> float:
    total = counters["hits"] + counters["misses"]
    return counters["hits"] / total if total else 0.0


async def _run_streams(streams: dict[str, list], sample_depth=None) -> dict:
    """Run interleaved tenant streams against a fresh service; return stats."""
    PLAN_CACHE.configure(enabled=True)
    PLAN_CACHE.clear(reset_counters=True)
    svc = SortingService(max_queued=4096, max_queued_per_tenant=4096)
    server = await svc.start_tcp()
    port = server.sockets[0].getsockname()[1]
    clients = {t: await ServiceClient.connect(port=port) for t in streams}
    ops = await ServiceClient.connect(port=port)

    interleaved = []
    for i in range(max(len(s) for s in streams.values())):
        for tenant, stream in streams.items():
            if i < len(stream):
                interleaved.append((tenant, stream[i], i))

    peak_depth = 0
    t0 = time.perf_counter()
    acks = []
    for k, (tenant, faults, i) in enumerate(interleaved):
        ack = await clients[tenant].submit(
            _job(faults, seed=SEED + i), tenant=tenant, retry=True)
        assert ack["ok"], ack
        acks.append((tenant, ack["job_id"]))
        if sample_depth is not None and k % sample_depth == 0:
            peak_depth = max(peak_depth, svc.queue.depth)
    depth_at_drain = svc.queue.depth
    in_flight_at_drain = svc.in_flight
    drain_task = asyncio.create_task(ops.drain())
    results = [await clients[t].result(jid) for t, jid in acks]
    drained = await drain_task
    wall = time.perf_counter() - t0

    assert all(r["ok"] and r["result"]["verified"] for r in results)
    stats = svc.stats()
    for c in (*clients.values(), ops):
        await c.close()
    server.close()
    await server.wait_closed()
    await svc.aclose()
    return {
        "results": results,
        "stats": stats,
        "drained": drained,
        "wall": wall,
        "peak_depth": max(peak_depth, depth_at_drain),
        "depth_at_drain": depth_at_drain,
        "in_flight_at_drain": in_flight_at_drain,
    }


class TestServiceLoad:
    def test_load_latency_cache_sharing_and_drain(self, fast_mode, bench_json):
        orbits, members, repeats = (4, 3, 2) if fast_mode else (10, 3, 17)
        import numpy as np

        catalogs = _catalogs(orbits, members, np.random.default_rng(SEED))
        streams = {t: _stream(catalogs[t], repeats) for t in TENANTS}
        total_jobs = sum(len(s) for s in streams.values())

        # -- phase 1: both tenants on the shared cache -----------------------
        shared = asyncio.run(_run_streams(streams, sample_depth=25))
        lat = sorted(r["latency_ms"] for r in shared["results"])
        stats = shared["stats"]
        load = {
            "jobs_total": total_jobs,
            "tenants": list(TENANTS),
            "p50_ms": round(_pctl(lat, 0.50), 3),
            "p99_ms": round(_pctl(lat, 0.99), 3),
            "max_ms": round(lat[-1], 3),
            "jobs_per_sec": round(total_jobs / shared["wall"], 1),
            "wall_seconds": round(shared["wall"], 3),
            "peak_queue_depth": shared["peak_depth"],
            "batches": stats["batches"],
            "batched_jobs": stats["batched_jobs"],
            "rejected": stats["rejected"],
        }
        drain = {
            "queue_depth_at_request": shared["depth_at_drain"],
            "in_flight_at_request": shared["in_flight_at_drain"],
            "accepted": total_jobs,
            "delivered": len(shared["results"]),
            "lost": total_jobs - len(shared["results"]),
            "drained_completed": shared["drained"]["completed"],
        }
        shared_tenants = {
            t: stats["tenants"][t]["plancache"] for t in TENANTS
        }
        shared_hits = sum(c["hits"] for c in shared_tenants.values())
        shared_total = shared_hits + sum(c["misses"] for c in shared_tenants.values())
        shared_rate = shared_hits / shared_total

        # -- phase 2: each tenant against its own isolated cache -------------
        isolated_tenants = {}
        for t in TENANTS:
            solo = asyncio.run(_run_streams({t: streams[t]}))
            isolated_tenants[t] = solo["stats"]["tenants"][t]["plancache"]
        iso_hits = sum(c["hits"] for c in isolated_tenants.values())
        iso_total = iso_hits + sum(c["misses"] for c in isolated_tenants.values())
        iso_rate = iso_hits / iso_total

        plancache = {
            "shared": {"per_tenant": shared_tenants,
                       "combined_hit_rate": round(shared_rate, 4)},
            "isolated": {"per_tenant": isolated_tenants,
                         "combined_hit_rate": round(iso_rate, 4)},
            "cross_tenant_gain": round(shared_rate - iso_rate, 4),
        }

        # -- phase 3 (full mode): low-repeat focused comparison --------------
        # The structural cross-tenant win is a fixed +2 cache hits per
        # shared orbit (equal misses), so the heavily-repeated 1k-job
        # stream dilutes it toward zero.  A low-repeat stream over the
        # same orbit structure shows the effect at full strength.
        if not fast_mode:
            f_catalogs = _catalogs(10, 3, np.random.default_rng(SEED))
            f_streams = {t: _stream(f_catalogs[t], 2) for t in TENANTS}
            f_shared = asyncio.run(_run_streams(f_streams))
            fs = {t: f_shared["stats"]["tenants"][t]["plancache"]
                  for t in TENANTS}
            fs_rate = _rate({
                "hits": sum(c["hits"] for c in fs.values()),
                "misses": sum(c["misses"] for c in fs.values())})
            fi = {}
            for t in TENANTS:
                solo = asyncio.run(_run_streams({t: f_streams[t]}))
                fi[t] = solo["stats"]["tenants"][t]["plancache"]
            fi_rate = _rate({
                "hits": sum(c["hits"] for c in fi.values()),
                "misses": sum(c["misses"] for c in fi.values())})
            plancache["focused_low_repeat"] = {
                "jobs": sum(len(s) for s in f_streams.values()),
                "repeats": 2,
                "shared_hit_rate": round(fs_rate, 4),
                "isolated_hit_rate": round(fi_rate, 4),
                "cross_tenant_gain": round(fs_rate - fi_rate, 4),
            }
            assert fs_rate > fi_rate
        print(f"\nservice load: {total_jobs} jobs / {len(TENANTS)} tenants: "
              f"p50 {load['p50_ms']}ms p99 {load['p99_ms']}ms "
              f"{load['jobs_per_sec']} jobs/s, peak depth "
              f"{load['peak_queue_depth']}, drain lost {drain['lost']}")
        print(f"plan-cache hit rate: shared {shared_rate:.3f} vs "
              f"isolated {iso_rate:.3f} "
              f"(cross-tenant gain {shared_rate - iso_rate:+.3f})")

        bench_json("service", "workload", {
            "kind": "sort", "n": N, "r": R_FAULTS, "keys": KEYS,
            "orbits": orbits, "members_per_tenant_per_orbit": members,
            "repeats": repeats, "seed": SEED,
        })
        bench_json("service", "load", load)
        bench_json("service", "drain", drain)
        bench_json("service", "plancache", plancache)
        bench_json("service", "fast_mode", fast_mode)
        bench_json("service", "cpu_count", os.cpu_count() or 1)

        # Graceful drain loses zero accepted jobs — the hard guarantee.
        assert drain["lost"] == 0
        assert drain["drained_completed"] == total_jobs
        # Sharing the cache across tenants beats per-tenant isolation on
        # orbit-overlapping workloads.
        assert shared_rate > iso_rate, (
            f"cross-tenant hit rate {shared_rate:.4f} does not beat "
            f"isolated {iso_rate:.4f}")
        if not fast_mode:
            assert total_jobs >= 1000
            assert len(TENANTS) >= 2


# -- sharded deployment ------------------------------------------------------

STREAM_KEYS = 8192   # byte-identity probe job
STREAM_SEED = 77


def _expected_sha(keys: int, seed: int) -> str:
    import numpy as np

    rng = np.random.default_rng(seed)
    data = np.sort(rng.integers(0, 10**6, size=keys).astype(float))
    return hashlib.sha256(data.tobytes()).hexdigest()


async def _run_sharded_load(shards: int, jobs_per_tenant: int,
                            tenants: int, keys: int) -> dict:
    """Drive a real N-shard deployment at full depth; return the record."""
    manager = ShardManager(shards)
    await manager.start()
    router = ShardRouter(manager.shards, gossip_interval=0.0)
    await router.start()
    server = await router.start_tcp()
    port = server.sockets[0].getsockname()[1]
    names = [f"tenant-{i}" for i in range(tenants)]
    clients = {t: await ServiceClient.connect(port=port) for t in names}
    ops = await ServiceClient.connect(port=port)
    try:
        t0 = time.perf_counter()
        acks = []
        for j in range(jobs_per_tenant):
            for t in names:
                ack = await clients[t].submit(
                    {"kind": "sort", "n": N, "keys": keys, "seed": j},
                    tenant=t, retry=True)
                assert ack["ok"], ack
                acks.append((t, ack["job_id"]))
        results = [await clients[t].result(jid) for t, jid in acks]
        wall = time.perf_counter() - t0
        assert all(r["ok"] and r["result"]["verified"] for r in results)
        # Byte-identity probe: one streamed sort, hashed frame by frame.
        probe = await ops.submit(
            {"kind": "sort", "n": N, "keys": STREAM_KEYS,
             "seed": STREAM_SEED, "stream": True}, tenant="probe")
        assert probe["ok"], probe
        sha = hashlib.sha256()
        async for chunk in ops.iter_result(probe["job_id"]):
            sha.update(chunk.tobytes())
        drained = await ops.drain()
        return {
            "jobs": len(acks),
            "wall": wall,
            "jobs_per_sec": len(acks) / wall,
            "drained": drained,
            "stream_sha256": sha.hexdigest(),
        }
    finally:
        for c in (*clients.values(), ops):
            await c.close()
        server.close()
        await server.wait_closed()
        await router.aclose()
        await manager.stop()


class TestShardedThroughput:
    """N-shard scaling, zero-loss drain, byte identity across shard counts.

    Writes the ``sharding`` section of ``BENCH_service.json``.  The 2.5x
    jobs/sec floor at 4 shards needs 4 CPUs to mean anything, so the
    assertion is gated — and the gate's verdict (``asserted`` /
    ``skip_reason``) is recorded, never silent.  The functional
    guarantees (drain loses nothing, streamed bytes identical at every
    shard count) are asserted in every mode.
    """

    def test_shard_scaling_drain_and_identity(self, fast_mode, bench_json):
        cpus = effective_cpu_count()
        many = 4 if cpus >= 4 else 2
        jobs_per_tenant, tenants = (3, 2) if fast_mode else (12, 4)
        keys = 2048 if fast_mode else 8192
        asserted = (not fast_mode) and cpus >= 4
        skip_reason = None
        if fast_mode:
            skip_reason = "fast mode: smoke workload too small for a " \
                          "stable throughput floor"
        elif cpus < 4:
            skip_reason = f"requires >= 4 CPUs, host has {cpus}"

        single = asyncio.run(_run_sharded_load(1, jobs_per_tenant,
                                               tenants, keys))
        multi = asyncio.run(_run_sharded_load(many, jobs_per_tenant,
                                              tenants, keys))
        speedup = multi["jobs_per_sec"] / single["jobs_per_sec"]
        expected = _expected_sha(STREAM_KEYS, STREAM_SEED)
        identical = (single["stream_sha256"] == expected
                     and multi["stream_sha256"] == expected)
        section = {
            "shard_counts": [1, many],
            "jobs_total": single["jobs"] + multi["jobs"],
            "tenants": tenants,
            "keys": keys,
            "jobs_per_sec": {"1": round(single["jobs_per_sec"], 1),
                             str(many): round(multi["jobs_per_sec"], 1)},
            "speedup": round(speedup, 3),
            "target": 2.5,
            "target_met": speedup >= 2.5,
            "asserted": asserted,
            "skip_reason": skip_reason,
            "cpu_count": os.cpu_count() or 1,
            "effective_cpu_count": cpus,
            "fast_mode": fast_mode,
            "drain": {
                "shards": many,
                "completed": multi["drained"]["completed"],
                "failed": multi["drained"]["failed"],
                "lost": (single["jobs"] + 1) - single["drained"]["completed"]
                        + (multi["jobs"] + 1) - multi["drained"]["completed"],
            },
            "byte_identical_across_shard_counts": identical,
        }
        bench_json("service", "sharding", section)
        print(f"\nsharding: {single['jobs_per_sec']:.1f} jobs/s at 1 shard "
              f"vs {multi['jobs_per_sec']:.1f} at {many} ({speedup:.2f}x, "
              f"{cpus} CPUs)"
              + (f" [floor not asserted: {skip_reason}]" if skip_reason
                 else ""))
        # The hard guarantees hold in every mode.
        assert section["drain"]["lost"] == 0
        assert multi["drained"]["shards"] == many
        assert identical, "streamed bytes diverged across shard counts"
        if asserted:
            assert speedup >= 2.5, (
                f"expected >=2.5x jobs/sec at {many} shards on {cpus} "
                f"CPUs, got {speedup:.2f}x")
        elif skip_reason and not fast_mode:
            pytest.skip(f"shard throughput floor not checkable: "
                        f"{skip_reason}")


# -- streamed result memory profile ------------------------------------------

_CLIENT_SCRIPT = """\
import asyncio, base64, hashlib, json, resource, sys, tracemalloc

src, port, mode, keys, seed = (sys.argv[1], int(sys.argv[2]), sys.argv[3],
                               int(sys.argv[4]), int(sys.argv[5]))
sys.path.insert(0, src)

from repro.service import ServiceClient


async def main():
    client = await ServiceClient.connect(port=port)
    job = {"kind": "sort", "n": 4, "keys": keys, "seed": seed}
    sha = hashlib.sha256()
    # Allocation high-water of the consumption path alone: ru_maxrss is
    # blind here because the interpreter+numpy import peak already maps
    # more than a small transfer ever touches again.
    tracemalloc.start()
    if mode == "inline":
        r = await client.submit_and_wait({**job, "return_keys": True})
        assert r["ok"], r
        sha.update(base64.b64decode(r["result"]["keys_b64"]))
    else:
        ack = await client.submit({**job, "stream": True},
                                  transport="binary")
        assert ack["ok"], ack
        async for chunk in client.iter_result(ack["job_id"]):
            sha.update(chunk.tobytes())
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    await client.close()
    print(json.dumps({"alloc_peak_kb": peak // 1024, "rss_peak_kb": rss_kb,
                      "sha256": sha.hexdigest()}))


asyncio.run(main())
"""


class TestStreamingMemory:
    """Streamed delivery bounds client memory; inline scales with M.

    Writes the ``streaming`` section of ``BENCH_service.json``.  Each
    consumption path runs in its own subprocess so ``ru_maxrss`` isolates
    that path's high-water mark; the benchmark compares the *delta* over
    the post-connect baseline.  At full size (M = 2^20 float64 keys) the
    streamed client's delta must stay within 25% of the inline client's;
    fast mode only requires it to be smaller.  Byte identity across both
    paths (and against ``np.sort``) is asserted in every mode.
    """

    def test_streamed_client_rss_bounded(self, fast_mode, bench_json,
                                         tmp_path):
        keys = (1 << 18) if fast_mode else (1 << 20)
        seed = 4242
        script = tmp_path / "stream_client.py"
        script.write_text(_CLIENT_SCRIPT, encoding="utf-8")
        src = str(Path(__file__).resolve().parent.parent / "src")

        async def serve_and_measure():
            svc = SortingService(max_queued=16)
            server = await svc.start_tcp()
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()

            def run_child(mode: str) -> dict:
                out = subprocess.run(
                    [sys.executable, str(script), src, str(port), mode,
                     str(keys), str(seed)],
                    capture_output=True, text=True, timeout=300)
                assert out.returncode == 0, out.stderr
                return json.loads(out.stdout.strip().splitlines()[-1])

            inline = await loop.run_in_executor(None, run_child, "inline")
            streamed = await loop.run_in_executor(None, run_child, "stream")
            ops = await ServiceClient.connect(port=port)
            await ops.drain()
            await ops.close()
            server.close()
            await server.wait_closed()
            await svc.aclose()
            return inline, streamed

        inline, streamed = asyncio.run(serve_and_measure())
        p_inline = max(1, inline["alloc_peak_kb"])
        p_stream = max(1, streamed["alloc_peak_kb"])
        ratio = p_stream / p_inline
        expected = _expected_sha(keys, seed)
        identical = (inline["sha256"] == expected
                     and streamed["sha256"] == expected)
        asserted = not fast_mode
        section = {
            "keys": keys,
            "bytes": keys * 8,
            "seed": seed,
            "inline": inline,
            "streamed": streamed,
            "peak_ratio": round(ratio, 4),
            "target_ratio": 0.25,
            "target_met": ratio <= 0.25,
            "asserted": asserted,
            "byte_identical": identical,
            "fast_mode": fast_mode,
        }
        bench_json("service", "streaming", section)
        print(f"\nstreaming M={keys}: inline peak {p_inline}kB vs "
              f"streamed {p_stream}kB (ratio {ratio:.3f})")
        assert identical, "streamed bytes diverged from the inline path"
        assert ratio < 1.0, (
            f"streamed client allocated as much as inline ({ratio:.2f})")
        if asserted:
            assert ratio <= 0.25, (
                f"streamed peak {p_stream}kB exceeds 25% of inline "
                f"{p_inline}kB at M={keys}")
