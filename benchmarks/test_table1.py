"""Benchmark + regenerator for Table 1 (mincut distribution).

``pytest benchmarks/test_table1.py --benchmark-only -s`` prints the
paper-style table (reduced trial count; the CLI regenerator
``repro-table1`` runs the full 10000 trials per cell) and records the
distribution in ``BENCH_table1.json`` at the repo root.
"""

from __future__ import annotations

from repro.core.partition import find_min_cuts
from repro.experiments.table1 import compute_table1, render_table1
from repro.faults.inject import random_faulty_processors


def test_partition_algorithm_q6_r5(benchmark, rng, bench_json):
    """Cost of one partition-algorithm run at the paper's largest cell."""
    faults = random_faulty_processors(6, 5, rng)
    result = benchmark(find_min_cuts, 6, faults)
    assert result.mincut <= 4
    bench_json("table1", "partition_q6_r5", {
        "wall_mean_s": float(benchmark.stats.stats.mean),
    })


def test_table1_monte_carlo_cell(benchmark, rng, fast_mode):
    """Cost of one (n=6, r=5) Monte-Carlo cell at 100 trials."""
    trials = 30 if fast_mode else 100

    def cell():
        counts: dict[int, int] = {}
        for _ in range(trials):
            faults = random_faulty_processors(6, 5, rng)
            m = find_min_cuts(6, faults).mincut
            counts[m] = counts.get(m, 0) + 1
        return counts

    counts = benchmark.pedantic(cell, rounds=1, iterations=1)
    assert sum(counts.values()) == trials


def test_table1_rows(benchmark, fast_mode, bench_json):
    """Regenerate Table 1 (reduced trials) and print the rows."""
    trials = 100 if fast_mode else 300
    cells = benchmark.pedantic(
        lambda: compute_table1(trials=trials, seed=19920401), rounds=1, iterations=1
    )
    print()
    print(render_table1(cells))
    bench_json("table1", "rows", {
        "trials": trials,
        "cells": [
            {"n": c.n, "r": c.r,
             "percent_by_mincut": {str(m): p for m, p in sorted(c.percent_by_mincut.items())}}
            for c in cells
        ],
    })
    # Paper shape assertions: n=6, r=5 concentrates on m=3.
    cell = next(c for c in cells if (c.n, c.r) == (6, 5))
    assert cell.percent(3) > 85.0
    assert cell.percent(3) + cell.percent(4) == 100.0
