"""Benchmark + regenerator for Table 2 (processor utilization).

``pytest benchmarks/test_table2.py --benchmark-only -s`` prints the
paper-style utilization table (reduced trials; ``repro-table2`` runs the
full sweep).
"""

from __future__ import annotations

from repro.baselines.maxsubcube import max_fault_free_dim
from repro.experiments.table2 import compute_table2, render_table2
from repro.faults.inject import random_faulty_processors


def test_max_subcube_search_q6(benchmark, rng):
    """Cost of one maximal fault-free subcube search (the baseline's step)."""
    faults = random_faulty_processors(6, 5, rng)
    dim = benchmark(max_fault_free_dim, 6, faults)
    assert 1 <= dim <= 5


def test_table2_rows(benchmark):
    """Regenerate Table 2 (reduced trials), print rows, check paper values."""
    cells = benchmark.pedantic(
        lambda: compute_table2(trials=400, seed=19920402), rounds=1, iterations=1
    )
    print()
    print(render_table2(cells))
    # Paper's worked cell: n = 6, r = 4 -> proposed 100 / 93.3,
    # baseline 53.3 / 26.6.
    cell = next(c for c in cells if (c.n, c.r) == (6, 4))
    assert cell.proposed_best == 100.0
    assert abs(cell.proposed_worst - 93.3) < 0.5
    assert abs(cell.baseline_best - 53.3) < 0.5
    assert abs(cell.baseline_worst - 26.6) < 0.5
    # Global headline: the proposed scheme dominates the baseline.
    for c in cells:
        assert c.proposed_worst >= c.baseline_worst
        assert c.proposed_best >= c.baseline_best
