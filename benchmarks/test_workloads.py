"""Benchmarks for the workload-sensitivity and record-size studies."""

from __future__ import annotations

from repro.analysis.records import record_size_sensitivity
from repro.experiments.workloads import (
    compute_data_sensitivity,
    render_data_sensitivity,
)


def test_data_sensitivity_table(benchmark, ncube7):
    rows = benchmark.pedantic(
        lambda: compute_data_sensitivity(m_keys=24 * 500, params=ncube7, seed=8),
        rounds=1, iterations=1,
    )
    print()
    print(render_data_sensitivity(rows))
    by_name = {r.workload: r for r in rows}
    assert by_name["sorted"].elapsed < by_name["uniform"].elapsed
    # obliviousness bounds the spread
    assert max(r.relative_to_uniform for r in rows) < 2.0


def test_record_size_table(benchmark, ncube7):
    rows = benchmark.pedantic(
        lambda: record_size_sensitivity(
            5, [3, 5, 16, 24], 24 * 1000, record_sizes=(4, 16, 64), params=ncube7
        ),
        rounds=1, iterations=1,
    )
    print("\nrecord-size sensitivity (Q_5, Example-1 faults):")
    for r in rows:
        print(f"  {r.record_bytes:>4}B records: proposed/baseline speedup "
              f"{r.speedup:.2f}x")
    # margin erodes with record size
    assert rows[0].speedup > rows[-1].speedup
