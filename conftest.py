"""Repository-level pytest configuration.

Lives at the rootdir so its options cover both ``tests/`` and
``benchmarks/``.  The ``--fast`` flag is the CI smoke mode: benchmarks
shrink their workloads to finish in seconds while still exercising every
code path and writing their ``BENCH_*.json`` result files.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--fast",
        action="store_true",
        default=False,
        help="shrink benchmark workloads to CI smoke size",
    )


@pytest.fixture(scope="session")
def fast_mode(request: pytest.FixtureRequest) -> bool:
    """True when the run was invoked with ``--fast``."""
    return bool(request.config.getoption("--fast"))
