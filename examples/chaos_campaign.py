#!/usr/bin/env python
"""Faults striking mid-run, end to end: detect, recover, then prove it.

Three acts:

1. One supervised run, narrated — a processor dies mid-sort on the
   discrete-event backend; the recv watchdog suspects it, neighbor tests
   confirm it, the victim's block is rescued, the plan enlarges, the sort
   re-runs.
2. A link dies instead — reliable messaging retries, the adaptive router
   detours, the dead link is confirmed by route probe and absorbed.
3. A seeded mini chaos campaign — dozens of randomized scenarios, mixed
   processor/link faults at every stage of the run, both backends, every
   outcome differentially checked against numpy.sort.

    python examples/chaos_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro.chaos import run_campaign
from repro.core.ftsort import fault_tolerant_sort
from repro.host import FaultEvent, supervised_sort
from repro.obs import Tracer


def act_one_processor_death() -> None:
    print("=== act 1: a processor dies mid-sort (SPMD backend) ===")
    rng = np.random.default_rng(7)
    n, victim = 3, 5
    keys = rng.integers(0, 10**6, size=64).astype(float)
    strike = 0.4 * fault_tolerant_sort(keys, n, []).elapsed

    obs = Tracer()
    res = supervised_sort(keys, n,
                          events=[FaultEvent("processor", victim, at=strike)],
                          backend="spmd", rng=0, obs=obs)
    assert np.array_equal(res.sorted_keys, np.sort(keys))
    print(f"  victim {victim} struck at {strike / 1e3:.1f} ms")
    for rec in res.detections:
        verdict = "confirmed" if rec.faulty else "cleared"
        lat = f", latency {rec.latency / 1e3:.1f} ms" if rec.latency else ""
        print(f"  suspect {rec.subject}: {verdict} via {rec.method}{lat}")
    print(f"  attempts {len(res.attempts)}, recoveries {res.recoveries}, "
          f"overhead {res.recovery_overhead:.2f}x "
          f"(wasted {res.wasted_time / 1e3:.1f} ms, "
          f"rescue {res.rescue_time / 1e3:.1f} ms, "
          f"redistribution {res.redistribution_time / 1e3:.1f} ms)")
    print(f"  sorted correctly: True\n")


def act_two_link_death() -> None:
    print("=== act 2: a link dies; reliable messaging absorbs it ===")
    rng = np.random.default_rng(8)
    n, link = 3, (2, 6)
    keys = rng.integers(0, 10**6, size=64).astype(float)
    strike = 0.25 * fault_tolerant_sort(keys, n, []).elapsed

    obs = Tracer()
    res = supervised_sort(keys, n,
                          events=[FaultEvent("link", link, at=strike)],
                          backend="spmd", rng=0, obs=obs)
    assert np.array_equal(res.sorted_keys, np.sort(keys))
    m = obs.metrics
    print(f"  link {link[0]}<->{link[1]} died at {strike / 1e3:.1f} ms")
    print(f"  drops {m.value('robust.drops')}, "
          f"timeouts {m.value('robust.timeouts')}, "
          f"retries {m.value('robust.retries')}, "
          f"acks {m.value('robust.acks')}")
    print(f"  recoveries {res.recoveries}, sorted correctly: True\n")


def act_three_campaign() -> None:
    print("=== act 3: seeded chaos campaign (36 scenarios) ===")

    def progress(idx, outcome):
        if not outcome.passed:
            print(f"  scenario {idx}: FAILED — {outcome.error}")

    summary = run_campaign(count=36, seed=1992, shrink_failures=False,
                           progress=progress)
    per_backend = ", ".join(
        "{}: {}/{}".format(b, p["passed"], p["scenarios"])
        for b, p in sorted(summary.backends.items())
    )
    print(f"  passed {summary.passed}/{summary.scenarios} ({per_backend})")
    print(f"  recoveries {summary.recoveries} across "
          f"{summary.with_recovery} scenarios; retries {summary.retries}; "
          f"false suspicions {summary.false_suspicions} (all cleared)")
    print(f"  detect latency mean {summary.mean_detect_latency / 1e3:.1f} ms, "
          f"max {summary.max_detect_latency / 1e3:.1f} ms")
    print(f"  recovery overhead mean {summary.mean_recovery_overhead:.2f}x, "
          f"max {summary.max_recovery_overhead:.2f}x")


def main() -> None:
    act_one_processor_death()
    act_two_link_death()
    act_three_campaign()


if __name__ == "__main__":
    main()
