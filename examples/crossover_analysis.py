#!/usr/bin/env python
"""Where does the proposed algorithm start beating reconfiguration?

For each fault count on a chosen hypercube, finds the smallest number of
keys at which the fault-tolerant sort overtakes the maximal fault-free
subcube method, prints per-stage cost breakdowns, and checks the paper's
closed-form worst case against the simulation.

    python examples/crossover_analysis.py        # Q_5
    python examples/crossover_analysis.py 6      # Q_6
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import crossover_keys, model_accuracy, phase_breakdown, speedup_vs_baseline
from repro.core.ftsort import fault_tolerant_sort
from repro.faults.inject import random_faulty_processors
from repro.simulator.params import MachineParams


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    rng = np.random.default_rng(13)
    params = MachineParams.ncube7()

    print(f"Q_{n}: crossover key counts (proposed vs max fault-free subcube)\n")
    print(f"{'r':>2} {'faults':<22} {'crossover M':>12} {'speedup@64k/proc':>17}")
    big_m = (1 << n) * 5000
    for r in range(1, n):
        faults = list(random_faulty_processors(n, r, rng))
        m_star = crossover_keys(n, faults, params=params, lo=1 << n, hi=big_m)
        s = speedup_vs_baseline(big_m, n, faults, params=params)
        shown = str(m_star) if m_star is not None else f"> {big_m}"
        print(f"{r:>2} {str(faults):<22} {shown:>12} {s:>16.2f}x")

    print("\nStage breakdown for the paper's Example-1 scenario "
          f"(Q_5, faults [3, 5, 16, 24], M = 160000):")
    keys = np.random.default_rng(0).random(160_000)
    res = fault_tolerant_sort(keys, 5, [3, 5, 16, 24], params=params)
    for stage in phase_breakdown(res.machine).values():
        share = 100 * stage.duration / res.elapsed
        print(f"  {stage.stage:<34} {stage.duration / 1e3:10.1f} ms ({share:4.1f}%) "
              f"over {stage.phases} phases")

    acc = model_accuracy(160_000, 5, [3, 5, 16, 24], params=params)
    print(f"\npaper's worst-case T : {acc.model_bound / 1e3:10.1f} ms")
    print(f"simulated time       : {acc.measured / 1e3:10.1f} ms "
          f"({100 * acc.ratio:.0f}% of the bound — the bound is sound and "
          "the probe/merge implementation sits well under it)")


if __name__ == "__main__":
    main()
