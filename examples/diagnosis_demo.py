#!/usr/bin/env python
"""End-to-end: diagnose the faults, then sort around them.

The paper assumes fault locations are known before sorting (off-line
diagnosis, Banerjee).  This demo runs the whole pipeline the assumption
stands in for: inject hidden faults, run PMC mutual tests on the
hypercube's own links, decode the syndrome, and hand the identified fault
set to the fault-tolerant sort.

    python examples/diagnosis_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import FaultSet, fault_tolerant_sort
from repro.faults.diagnosis import diagnose_pmc, pmc_syndrome
from repro.faults.inject import random_faulty_processors


def main() -> None:
    rng = np.random.default_rng(3)
    n = 6
    hidden = FaultSet(n, random_faulty_processors(n, n - 1, rng))
    print(f"ground truth (hidden from the algorithm): faults {list(hidden.processors)}")

    # Every processor tests its n neighbors; faulty testers lie randomly.
    syndrome = pmc_syndrome(hidden, rng=rng)
    accusations = sum(syndrome.values())
    print(f"PMC syndrome collected: {len(syndrome)} directed tests, "
          f"{accusations} 'fail' reports")

    diagnosis = diagnose_pmc(n, syndrome)
    print(f"decoded fault set: {list(diagnosis.identified)} "
          f"(consistent: {diagnosis.consistent})")
    assert diagnosis.matches(hidden), "diagnosis failed!"

    keys = rng.integers(0, 10**6, size=10_000).astype(float)
    result = fault_tolerant_sort(keys, n, list(diagnosis.identified))
    assert np.array_equal(result.sorted_keys, np.sort(keys))
    print(f"\nsorted {keys.size} keys around the diagnosed faults "
          f"in {result.elapsed / 1e3:.1f} simulated ms "
          f"({result.working_processors} working processors, "
          f"D_beta = {result.selection.cut_dims})")


if __name__ == "__main__":
    main()
