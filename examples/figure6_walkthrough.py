#!/usr/bin/env python
"""Regenerate the paper's Figure 6 walkthrough, state by state.

Figure 6 traces the fault-tolerant sort on a Q_5 with the Example-1 faults
and 47 unsorted keys: the initial distribution (a), the per-subcube sorts
(b), and the state after every step-7 exchange and step-8 re-sort until
everything is sorted (i).  This example runs exactly that scenario and
prints the per-subcube block states after every phase group — our
machine-generated Figure 6.

    python examples/figure6_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core.ftsort import fault_tolerant_sort, plan_partition


def main() -> None:
    rng = np.random.default_rng(1992)
    keys = rng.integers(10, 99, size=47).astype(float)  # 2-digit keys print nicely
    n, faults = 5, [3, 5, 16, 24]
    _, sel = plan_partition(n, faults)
    split = sel.split
    dead_w = [split.w_of(d) for d in sel.dead_of_subcube]

    def render_state(machine) -> str:
        rows = []
        for v in range(1 << sel.m):
            cells = []
            for rho in range(1, 1 << sel.s):
                phys = split.combine(v, rho ^ dead_w[v])
                block = machine.get_block(phys)
                body = " ".join(f"{x:2.0f}" if np.isfinite(x) else " ∞" for x in block)
                cells.append(f"P{phys:<2}[{body}]")
            rows.append(f"    v={v:03b}: " + "  ".join(cells))
        return "\n".join(rows)

    # Print once per phase *group* (all substages of one logical step),
    # mirroring Figure 6's granularity: snapshot every phase, emit the
    # previous group's final state when the group label changes.
    pending: dict[str, object] = {"group": None, "label": None, "state": None,
                                  "phase": 0, "t": 0.0}

    def group_of(label: str) -> str:
        head = label.split("[")[0]
        if head in ("inter", "intra"):
            return label.rsplit("[", 1)[0]  # e.g. inter[i=0,j=0], intra[i=0,j=0]a
        return head  # local-heapsort, intra-init

    def flush() -> None:
        if pending["group"] is not None:
            print(f"\n  after {pending['label']} "
                  f"(phase {pending['phase']}, t = {pending['t']:.1f} ms):")
            print(pending["state"])

    def observer(machine, record) -> None:
        group = group_of(record.label)
        if group != pending["group"]:
            flush()
        pending.update(
            group=group,
            label=record.label,
            state=render_state(machine),
            phase=len(machine.phases),
            t=machine.elapsed / 1e3,
        )

    print(f"Figure 6 walkthrough — Q_5, faults {faults}, 47 keys")
    print(f"D_beta = {sel.cut_dims}, dangling w = {sel.dangling_w:02b}, "
          f"dead processors = {list(sel.dead_of_subcube)}")
    print("(one dummy ∞ key pads 47 keys to 2 per working processor)")

    result = fault_tolerant_sort(keys, n, faults, observer=observer)
    flush()  # the last group's final state = Figure 6(i)
    assert np.array_equal(result.sorted_keys, np.sort(keys))
    print(f"\nfinal: globally sorted across subcube addresses "
          f"(verified), {result.elapsed / 1e3:.1f} simulated ms")


if __name__ == "__main__":
    main()
