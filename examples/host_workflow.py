#!/usr/bin/env python
"""The full host workflow: distribute, sort, collect — with segment timing.

The paper's measurements (like most of that era) time the sort alone;
Step 2's host distribution and the final collection are free.  This
example runs the complete session on the discrete-event machine — the host
scatters key blocks down a fault-avoiding spanning tree, the sort runs,
blocks are gathered back — and shows how much the excluded segments
actually cost at several scales.

    python examples/host_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro.host import sort_session
from repro.simulator.params import MachineParams


def main() -> None:
    rng = np.random.default_rng(9)
    n, faults = 5, [3, 5, 16, 24]  # the paper's Example 1
    params = MachineParams.ncube7()

    print(f"Q_{n} with faults {faults}; host = lowest working processor\n")
    print(f"{'keys':>7} {'distribute':>12} {'sort':>12} {'collect':>12} "
          f"{'total':>12} {'sort share':>11}")
    for per_proc in (4, 16, 64, 256):
        m = 24 * per_proc
        keys = rng.integers(0, 10**6, size=m).astype(float)
        s = sort_session(keys, n, faults, params=params)
        assert np.array_equal(s.sorted_keys, np.sort(keys))
        print(f"{m:>7} {s.distribution_time / 1e3:>10.1f}ms "
              f"{s.sort_time / 1e3:>10.1f}ms {s.collection_time / 1e3:>10.1f}ms "
              f"{s.total_time / 1e3:>10.1f}ms {100 * s.sort_time / s.total_time:>10.1f}%")

    print("\nNote the trend: distribution grows linearly in M (all keys funnel")
    print("through one host link) while the sort grows only as (M/N')·polylog —")
    print("so at scale the single host becomes the bottleneck.  That is exactly")
    print("why NCUBE-class machines shipped parallel I/O subsystems, and why the")
    print("paper (fairly, for its era) times the sort alone.")


if __name__ == "__main__":
    main()
