#!/usr/bin/env python
"""What happens when a processor dies in the middle of the sort?

The paper assumes faults are diagnosed up front.  This example exercises
the repository's recovery extension: a processor dies mid-run (partial
fault — its memory and links survive), its block is rescued by a
neighbor, the partition is re-planned for the enlarged fault set, and the
sort re-runs.  Shows how the recovery bill divides between wasted work,
rescue, redistribution, and the re-sort, as the crash strikes later and
later.

    python examples/midrun_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro.core.recovery import sort_with_midrun_fault
from repro.simulator.params import MachineParams


def main() -> None:
    rng = np.random.default_rng(17)
    n, initial_faults, victim = 5, [3, 5], 10
    keys = rng.integers(0, 10**6, size=24 * 500).astype(float)
    params = MachineParams.ncube7()

    # How many phases does the undisturbed run have?
    from repro.core.ftsort import fault_tolerant_sort

    baseline = fault_tolerant_sort(keys, n, initial_faults, params=params)
    n_phases = len(baseline.machine.phases)
    print(f"Q_{n}, initial faults {initial_faults}, victim {victim}; "
          f"undisturbed run: {n_phases} phases, "
          f"{baseline.elapsed / 1e3:.1f} ms\n")

    print(f"{'strike':>7} {'wasted':>9} {'rescue':>8} {'redist':>8} "
          f"{'re-sort':>9} {'total':>9} {'vs oracle':>10}")
    for strike in (0, n_phases // 4, n_phases // 2, n_phases - 2):
        rep = sort_with_midrun_fault(
            keys, n, initial_faults, victim=victim, strike_phase=strike, params=params
        )
        assert np.array_equal(rep.sorted_keys, np.sort(keys))
        print(f"{strike:>7} {rep.wasted_time / 1e3:>7.1f}ms "
              f"{rep.rescue_time / 1e3:>6.1f}ms "
              f"{rep.redistribution_time / 1e3:>6.1f}ms "
              f"{rep.resort.elapsed / 1e3:>7.1f}ms "
              f"{rep.total_time / 1e3:>7.1f}ms "
              f"{rep.overhead_vs_oracle:>9.2f}x")

    print("\n'vs oracle' compares against knowing the fault before starting;")
    print("a crash near the end costs nearly a full extra sort, as expected")
    print("for a recovery scheme with no checkpointing of partial order.")


if __name__ == "__main__":
    main()
