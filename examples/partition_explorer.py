#!/usr/bin/env python
"""Walk through the paper's Examples 1 and 2 interactively.

Reproduces, step by step, the partition algorithm (Section 2.2) and the
selection heuristic (Section 3) on the paper's running scenario — a Q_5
with faulty processors {3, 5, 16, 24} — then does the same for any fault
set you pass on the command line:

    python examples/partition_explorer.py            # the paper's scenario
    python examples/partition_explorer.py 6 0 9 33 60  # Q_6, your faults
"""

from __future__ import annotations

import sys

from repro import find_min_cuts, select_cut_sequence
from repro.core.partition import CheckingTree
from repro.core.selection import extra_comm_cost
from repro.cube.subcube import AddressSplit


def explore(n: int, faults: list[int]) -> None:
    print(f"Q_{n} with {len(faults)} faulty processors: "
          f"{[f'{f:0{n}b}' for f in faults]}")

    partition = find_min_cuts(n, faults)
    print(f"\nPartition algorithm (Section 2.2):")
    print(f"  mincut m = {partition.mincut}")
    print(f"  cutting set Psi ({len(partition.cutting_set)} sequences):")
    for dims in partition.cutting_set:
        cost = extra_comm_cost(n, dims, faults) if partition.mincut else 0
        print(f"    D = {dims}   Eq.-(1) cost = {cost}")

    if partition.mincut == 0:
        print("  (at most one fault: Section 2.1's single-fault sort applies directly)")
        return

    selection = select_cut_sequence(partition)
    split = AddressSplit(n, selection.cut_dims)
    print(f"\nSelection heuristic (Section 3):")
    print(f"  D_beta = {selection.cut_dims} with cost {selection.cost}")
    print(f"  address split: v bits from dims {selection.cut_dims}, "
          f"w bits from dims {split.rest_dims}")
    print(f"  dangling local address w = {selection.dangling_w:0{selection.s}b}")
    print(f"  dead processor per subcube:")
    for v, dead in enumerate(selection.dead_of_subcube):
        role = "fault" if dead in faults else "dangling"
        print(f"    subcube v={v:0{selection.m}b}: processor {dead:>3} ({role})")

    print(f"\nCutting-dimension tree DFS (paper Fig. 2 style):")
    from repro.core.partition_trace import render_cutting_tree

    print("  " + render_cutting_tree(n, faults).replace("\n", "\n  "))

    print(f"\nChecking tree for D_beta (paper Fig. 4 style):")
    tree = CheckingTree(n, selection.cut_dims, faults)
    for depth, level in enumerate(tree.levels):
        label = "root" if depth == 0 else f"after cutting dim {selection.cut_dims[depth - 1]}"
        parts = ", ".join(f"{path:0{max(depth, 1)}b}:{sorted(fl)}" for path, fl in sorted(level.items()))
        print(f"  depth {depth} ({label}): {parts}")

    working = selection.working_processors
    print(f"\nWorkload: {working} working processors "
          f"({(1 << n) - len(faults) - working} dangling), "
          f"utilization {100 * working / ((1 << n) - len(faults)):.1f}%")


def main() -> None:
    if len(sys.argv) > 1:
        n = int(sys.argv[1])
        faults = [int(a) for a in sys.argv[2:]]
        if not faults:
            raise SystemExit("usage: partition_explorer.py [n fault fault ...]")
    else:
        n, faults = 5, [0b00011, 0b00101, 0b10000, 0b11000]  # paper Example 1
        print("(no arguments: using the paper's Example 1)\n")
    explore(n, faults)


if __name__ == "__main__":
    main()
