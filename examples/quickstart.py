#!/usr/bin/env python
"""Quickstart: sort on a faulty hypercube in five lines.

Runs the fault-tolerant sort on a simulated 64-processor NCUBE/7-style
hypercube with three faulty processors, verifies the result, and prints
what the partition/selection machinery decided along the way.

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import fault_tolerant_sort, max_subcube_sort

def main() -> None:
    rng = np.random.default_rng(42)
    keys = rng.integers(0, 10**6, size=20_000).astype(float)
    faults = [7, 25, 52]  # three dead processors on the 64-node cube

    result = fault_tolerant_sort(keys, n=6, faults=faults)

    assert np.array_equal(result.sorted_keys, np.sort(keys)), "sort is broken!"
    sel = result.selection
    print(f"sorted {keys.size} keys on Q_6 with faults {faults}")
    print(f"  cutting sequence D_beta : {sel.cut_dims} (Eq.-1 cost {sel.cost})")
    print(f"  subcubes                : {1 << sel.m} of dimension {sel.s}")
    print(f"  dangling processors     : {list(sel.dangling_processors)}")
    print(f"  working processors      : {result.working_processors} of 64")
    print(f"  simulated time          : {result.elapsed / 1e3:.1f} ms")

    # Compare with the classical reconfiguration baseline: keep only the
    # largest fault-free subcube and idle everything else.
    base = max_subcube_sort(keys, n=6, faults=faults)
    print(f"\nmax fault-free subcube baseline: Q_{base.subcube.dim} "
          f"({base.dangling} normal processors idle)")
    print(f"  simulated time          : {base.elapsed / 1e3:.1f} ms")
    print(f"  proposed speedup        : {base.elapsed / result.elapsed:.2f}x")


if __name__ == "__main__":
    main()
