#!/usr/bin/env python
"""Three fault-tolerance families, one expected-capacity table.

The paper's introduction argues that hardware spares cost silicon and that
subcube reconfiguration wastes processors, motivating the algorithm-based
approach.  This example quantifies the whole argument: expected usable
capacity of each scheme as the per-processor failure probability grows.

    python examples/reliability_comparison.py
"""

from __future__ import annotations

from repro.analysis.reliability import expected_capacity
from repro.baselines.spares import SpareScheme


def main() -> None:
    n = 6
    scheme = SpareScheme(n, module_dim=4, spares_per_module=1)
    print(f"Q_{n} (64 processors); spare design: {scheme.num_modules} modules x "
          f"{scheme.spares_per_module} spare "
          f"(+{100 * scheme.hardware_overhead:.0f}% hardware)\n")
    print(f"{'p(fail)':>8} {'proposed':>10} {'max-subcube':>12} {'hw spares':>10}")
    for p in (0.001, 0.005, 0.01, 0.02, 0.05, 0.10):
        c = expected_capacity(n, p, spare_scheme=scheme, placements_per_r=200, rng=4)
        print(f"{p:>8.3f} {c.proposed:>9.1%} {c.max_subcube:>11.1%} {c.spares:>9.1%}")

    print("\nexact repair coverage of the spare design by fault count:")
    for r in range(1, 7):
        print(f"  r={r}: {scheme.coverage(r):6.1%}")

    print("\nReading: the algorithm-based scheme keeps nearly all surviving")
    print("capacity at every failure rate with zero extra hardware; spares")
    print("hold full speed only while every module's fault count stays within")
    print("its spare budget, then fall off a cliff; subcube reconfiguration")
    print("throws away half the machine per halving.  This is the paper's")
    print("introduction, measured.")


if __name__ == "__main__":
    main()
