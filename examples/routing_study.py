#!/usr/bin/env python
"""Partial versus total faults: the Section-4 routing penalty.

The paper's NCUBE/7 experiments simulate *partial* faults (the VERTEX OS
happily routes messages through a processor whose compute portion died).
*Total* faults destroy the node and its links, so messages must detour —
the paper predicts higher execution time.  This study measures that
penalty three ways:

1. raw routing: adaptive detour hops versus e-cube distance,
2. the phase-level engine: simulated sort time under both fault kinds,
3. the discrete-event SPMD machine: same comparison with real routed
   messages and link contention.

    python examples/routing_study.py
"""

from __future__ import annotations

import numpy as np

from repro import FaultKind, FaultSet, fault_tolerant_sort, spmd_fault_tolerant_sort
from repro.cube.address import hamming_distance
from repro.faults.inject import random_faulty_processors
from repro.simulator.params import MachineParams
from repro.simulator.router import Router


def routing_stretch(n: int, r: int, trials: int, rng) -> float:
    """Average extra hops of adaptive routing over e-cube distance."""
    extra_total = 0
    count = 0
    for _ in range(trials):
        faults = FaultSet(n, random_faulty_processors(n, r, rng), kind=FaultKind.TOTAL)
        router = Router(faults, strategy="adaptive")
        normal = faults.fault_free_processors()
        for _ in range(20):
            s, d = int(rng.choice(normal)), int(rng.choice(normal))
            extra_total += router.hops(s, d) - hamming_distance(s, d)
            count += 1
    return extra_total / count


def main() -> None:
    rng = np.random.default_rng(7)
    params = MachineParams.ncube7()
    n = 5
    faults = [3, 5, 16, 24]  # the paper's Example 1

    print("1) Raw routing stretch (adaptive vs e-cube), Q_6, total faults:")
    for r in range(1, 6):
        stretch = routing_stretch(6, r, trials=20, rng=rng)
        print(f"   r={r}: +{stretch:.3f} hops per message on average")

    print("\n2) Phase-level engine, Q_5 with the paper's faults:")
    keys = rng.random(24 * 2000)
    t_partial = fault_tolerant_sort(
        keys, n, faults, params=params, fault_kind=FaultKind.PARTIAL
    ).elapsed
    t_total = fault_tolerant_sort(
        keys, n, faults, params=params, fault_kind=FaultKind.TOTAL
    ).elapsed
    print(f"   partial faults: {t_partial / 1e3:9.1f} ms (VERTEX pass-through)")
    print(f"   total faults  : {t_total / 1e3:9.1f} ms "
          f"(+{100 * (t_total / t_partial - 1):.1f}%)")

    print("\n3) Discrete-event SPMD machine (routed messages, contention):")
    small_keys = rng.random(24 * 16)
    s_partial = spmd_fault_tolerant_sort(
        small_keys, n, faults, params=params, fault_kind=FaultKind.PARTIAL
    )
    s_total = spmd_fault_tolerant_sort(
        small_keys, n, faults, params=params, fault_kind=FaultKind.TOTAL
    )
    print(f"   partial faults: {s_partial.finish_time / 1e3:9.1f} ms")
    print(f"   total faults  : {s_total.finish_time / 1e3:9.1f} ms "
          f"(+{100 * (s_total.finish_time / s_partial.finish_time - 1):.1f}%)")
    busiest = s_total.machine.engine.max_link_busy()
    print(f"   hottest link busy time under total faults: {busiest / 1e3:.1f} ms")
    assert np.array_equal(s_partial.sorted_keys, s_total.sorted_keys)
    print("\nBoth fault kinds produce identical sorted output; only time differs.")


if __name__ == "__main__":
    main()
