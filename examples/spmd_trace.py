#!/usr/bin/env python
"""Message-level execution trace of the fault-tolerant sort.

Runs the full algorithm on the discrete-event SPMD machine — every
compare-split is real routed messages with store-and-forward hops and link
contention — and prints per-processor communication statistics plus a
comparison against the fast phase-level engine.

    python examples/spmd_trace.py
"""

from __future__ import annotations

import numpy as np

from repro import fault_tolerant_sort, spmd_fault_tolerant_sort
from repro.simulator.params import MachineParams


def main() -> None:
    rng = np.random.default_rng(5)
    n, faults = 4, [1, 6, 12]
    keys = rng.integers(0, 1000, size=96).astype(float)
    params = MachineParams.ncube7()

    spmd = spmd_fault_tolerant_sort(keys, n, faults, params=params)
    phase = fault_tolerant_sort(keys, n, faults, params=params)
    assert np.array_equal(spmd.sorted_keys, phase.sorted_keys)

    print(f"Q_{n} with faults {faults}: {keys.size} keys, "
          f"{spmd.schedule.workers} working processors, "
          f"{len(spmd.schedule.substages)} substages, "
          f"{spmd.schedule.comparator_count()} comparators\n")

    print(f"{'rank':>4} {'sent':>5} {'recv':>5} {'clock (ms)':>11}   final block")
    for rank in spmd.schedule.output_order:
        proc = spmd.machine.proc(rank)
        block = spmd.blocks[rank]
        shown = ", ".join(f"{v:.0f}" for v in block[:4])
        suffix = ", ..." if block.size > 4 else ""
        print(f"{rank:>4} {proc.sent_messages:>5} {proc.received_messages:>5} "
              f"{proc.clock / 1e3:>11.2f}   [{shown}{suffix}]")

    engine = spmd.machine.engine
    print(f"\nmessages delivered : {len(engine.delivered)}")
    print(f"total link busy    : {engine.total_link_busy() / 1e3:.1f} ms")
    print(f"hottest link busy  : {engine.max_link_busy() / 1e3:.1f} ms")
    print(f"\nevent-engine finish time : {spmd.finish_time / 1e3:.2f} ms")
    print(f"phase-engine estimate    : {phase.elapsed / 1e3:.2f} ms")
    print("(the phase engine is the fast model used for the Figure-7 sweeps;")
    print(" the event engine validates it with real message passing)")


if __name__ == "__main__":
    main()
