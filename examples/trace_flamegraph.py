#!/usr/bin/env python
"""Trace the fault-tolerant sort and render flame-style hotspot reports.

Runs the same sort on both execution backends with a
:class:`repro.obs.Tracer` attached, writes one Perfetto-loadable
``trace_event`` JSON per backend (open them at https://ui.perfetto.dev or
``chrome://tracing``), prints the per-paper-step duration table, the
flame-style self-time report, and the cross-backend counter parity that
the observability subsystem guarantees.

    python examples/trace_flamegraph.py
"""

from __future__ import annotations

import numpy as np

from repro import fault_tolerant_sort, spmd_fault_tolerant_sort
from repro.obs import Tracer, flame_report, step_report, write_chrome_trace
from repro.simulator.params import MachineParams


def main() -> None:
    rng = np.random.default_rng(7)
    n, faults = 5, [3, 9, 17]
    keys = rng.integers(0, 10**6, size=4 * (1 << n)).astype(float)
    params = MachineParams.ncube7()

    phase_obs, spmd_obs = Tracer(), Tracer()
    phase = fault_tolerant_sort(keys, n, faults, params=params, obs=phase_obs)
    spmd = spmd_fault_tolerant_sort(keys, n, faults, params=params, obs=spmd_obs)
    assert np.array_equal(phase.sorted_keys, spmd.sorted_keys)

    n_phase = write_chrome_trace("trace_phase.json", phase_obs)
    n_spmd = write_chrome_trace("trace_spmd.json", spmd_obs)
    print(f"Q_{n} with faults {faults}: {keys.size} keys")
    print(f"  trace_phase.json : {n_phase} events (phase engine)")
    print(f"  trace_spmd.json  : {n_spmd} events (message-level engine)")
    print("  (drag either file into https://ui.perfetto.dev)\n")

    print(step_report(phase_obs))
    print()
    print(flame_report(phase_obs, top=8))
    print()

    # The logical sort.* counters are backend-independent: both engines
    # execute the same oblivious schedule over the same evolving blocks.
    print(f"{'counter':<22} {'phase':>10} {'spmd':>10}")
    for name in ("sort.cx.executed", "sort.cx.skipped",
                 "sort.mirror.pairs", "sort.messages"):
        a = phase_obs.metrics.value(name)
        b = spmd_obs.metrics.value(name)
        flag = "" if a == b else "   <-- MISMATCH"
        print(f"{name:<22} {a:>10} {b:>10}{flag}")
        assert a == b, name
    print(f"\nphase-engine elapsed : {phase.elapsed / 1e3:.2f} simulated ms")
    print(f"event-engine finish  : {spmd.finish_time / 1e3:.2f} simulated ms")


if __name__ == "__main__":
    main()
