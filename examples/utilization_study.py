#!/usr/bin/env python
"""Processor utilization: the proposed partition versus reconfiguration.

Sweeps fault counts on a chosen hypercube, showing for each random fault
placement how many processors each method keeps busy — the paper's Table-2
story, with the per-placement detail the table aggregates away.

    python examples/utilization_study.py          # Q_6
    python examples/utilization_study.py 5        # Q_5
"""

from __future__ import annotations

import sys

import numpy as np

from repro import find_min_cuts, select_cut_sequence
from repro.baselines.maxsubcube import max_fault_free_dim
from repro.faults.inject import random_faulty_processors


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    total = 1 << n
    rng = np.random.default_rng(11)
    print(f"Q_{n} ({total} processors) — 5 random placements per fault count\n")
    header = (f"{'r':>2} {'faults':<24} {'mincut':>6} {'working':>8} "
              f"{'dangling':>8} {'proposed%':>10} {'baseline':>9} {'baseline%':>10}")
    print(header)
    print("-" * len(header))
    for r in range(1, n):
        for _ in range(5):
            faults = random_faulty_processors(n, r, rng)
            partition = find_min_cuts(n, faults)
            if partition.mincut:
                selection = select_cut_sequence(partition)
                working = selection.working_processors
            else:
                working = total - r
            normal = total - r
            dangling = normal - working
            sub_dim = max_fault_free_dim(n, faults)
            base_working = 1 << sub_dim
            print(f"{r:>2} {str(list(faults)):<24} {partition.mincut:>6} "
                  f"{working:>8} {dangling:>8} {100 * working / normal:>9.1f}% "
                  f"{'Q_' + str(sub_dim):>9} {100 * base_working / normal:>9.1f}%")
        print()
    print("proposed% = working / normal processors (paper Table 2's metric);")
    print("the baseline idles every normal processor outside its subcube.")


if __name__ == "__main__":
    main()
