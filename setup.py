"""Legacy setup shim so ``pip install -e .`` works without build isolation
(offline environments with no ``wheel`` package).  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
