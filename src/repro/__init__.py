"""repro — Fault-Tolerant Sorting on Hypercube Multicomputers.

A full reproduction of Sheu, Chen & Chang (ICPP 1992): an algorithm-based
fault-tolerant parallel sort that tolerates up to ``n - 1`` faulty
processors on an ``n``-dimensional hypercube, together with every substrate
it needs — hypercube topology, fault model and diagnosis, an NCUBE/7-style
simulated multicomputer (phase-level and discrete-event), hypercube
collectives, bitonic sorting kernels — and the maximal fault-free subcube
baseline it is evaluated against.

Quickstart::

    import numpy as np
    from repro import fault_tolerant_sort

    keys = np.random.default_rng(0).integers(0, 10**6, size=4096)
    result = fault_tolerant_sort(keys, n=6, faults=[3, 5, 16, 24])
    assert (result.sorted_keys == np.sort(keys)).all()
    print(result.elapsed, result.selection.cut_dims)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from repro.core import (
    FtSortResult,
    PartitionResult,
    SelectionResult,
    SortSchedule,
    SpmdSortResult,
    build_ft_schedule,
    build_plain_schedule,
    fault_free_bitonic_sort,
    fault_tolerant_sort,
    find_min_cuts,
    paper_worst_case_time,
    plan_partition,
    select_cut_sequence,
    single_fault_bitonic_sort,
    spmd_fault_tolerant_sort,
)
from repro.baselines import max_fault_free_subcube, max_subcube_sort
from repro.cube import Hypercube, Subcube, AddressSplit
from repro.faults import FaultKind, FaultSet, random_fault_set
from repro.simulator import MachineParams, PhaseMachine, SpmdMachine

__version__ = "1.0.0"

__all__ = [
    "AddressSplit",
    "FaultKind",
    "FaultSet",
    "FtSortResult",
    "Hypercube",
    "MachineParams",
    "PartitionResult",
    "PhaseMachine",
    "SelectionResult",
    "SortSchedule",
    "SpmdMachine",
    "SpmdSortResult",
    "Subcube",
    "__version__",
    "build_ft_schedule",
    "build_plain_schedule",
    "fault_free_bitonic_sort",
    "fault_tolerant_sort",
    "find_min_cuts",
    "max_fault_free_subcube",
    "max_subcube_sort",
    "paper_worst_case_time",
    "plan_partition",
    "random_fault_set",
    "select_cut_sequence",
    "single_fault_bitonic_sort",
    "spmd_fault_tolerant_sort",
]
