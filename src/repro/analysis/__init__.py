"""Analysis utilities over simulation results.

* :mod:`repro.analysis.metrics` — speedup/efficiency metrics, the
  crossover key-count finder (smallest ``M`` where the proposed algorithm
  beats the reconfiguration baseline), and worst-case-model versus
  measured-time comparison.
* :mod:`repro.analysis.breakdown` — per-stage cost breakdowns of a phase
  machine run (where did the microseconds go: local sort, intra-subcube
  bitonic, inter-subcube exchange, mirrors).
* :mod:`repro.analysis.reliability` — expected usable capacity of the
  three fault-tolerance families (algorithm-based, subcube
  reconfiguration, hardware spares) as per-processor failure probability
  grows.
"""

from repro.analysis.breakdown import StageBreakdown, phase_breakdown
from repro.analysis.metrics import (
    crossover_keys,
    efficiency,
    model_accuracy,
    speedup_vs_baseline,
)
from repro.analysis.reliability import CapacityCurve, expected_capacity
from repro.analysis.records import RecordSizeRow, record_size_sensitivity

__all__ = [
    "CapacityCurve",
    "RecordSizeRow",
    "record_size_sensitivity",
    "StageBreakdown",
    "crossover_keys",
    "efficiency",
    "expected_capacity",
    "model_accuracy",
    "phase_breakdown",
    "speedup_vs_baseline",
]
