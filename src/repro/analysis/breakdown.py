"""Per-stage cost breakdowns of a phase-machine run.

The phase machine records every barrier-separated step with its duration
and traffic; this module folds those records into the algorithm's
conceptual stages (the paper's steps), which is how EXPERIMENTS.md's
"where does the time go" numbers are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.phases import PhaseMachine

__all__ = ["StageBreakdown", "phase_breakdown"]

#: Phase-label prefix -> conceptual stage name.
_STAGES = (
    ("local-heapsort", "local sort (step 3a)"),
    ("intra-init", "initial subcube bitonic (step 3b)"),
    ("inter", "inter-subcube exchange (step 7)"),
    ("intra[", "subcube re-sort (step 8)"),
    ("bitonic", "full-cube bitonic"),
    ("subcube-bitonic", "baseline subcube bitonic"),
)


@dataclass
class StageBreakdown:
    """Aggregated costs of one conceptual stage.

    Attributes:
        stage: stage name.
        duration: summed phase durations (simulated time).
        comparisons: summed key comparisons.
        elements_sent: summed element transfers.
        element_hops: summed element*hop products.
        phases: number of phases folded in.
    """

    stage: str
    duration: float = 0.0
    comparisons: int = 0
    elements_sent: int = 0
    element_hops: int = 0
    phases: int = 0

    def add(self, rec) -> None:
        self.duration += rec.duration
        self.comparisons += rec.comparisons
        self.elements_sent += rec.elements_sent
        self.element_hops += rec.element_hops
        self.phases += 1


def _stage_of(label: str) -> str:
    for prefix, name in _STAGES:
        if label.startswith(prefix):
            return name
    return "other"


def phase_breakdown(machine: PhaseMachine) -> dict[str, StageBreakdown]:
    """Fold a machine's phase records into conceptual stages.

    Returns a dict keyed by stage name, ordered by descending duration.
    """
    stages: dict[str, StageBreakdown] = {}
    for rec in machine.phases:
        name = _stage_of(rec.label)
        if name not in stages:
            stages[name] = StageBreakdown(stage=name)
        stages[name].add(rec)
    return dict(sorted(stages.items(), key=lambda kv: -kv[1].duration))
