"""Speedup, efficiency, crossover, and model-accuracy metrics.

These are the quantities the paper's evaluation reasons about informally;
we expose them as first-class functions so experiments and tests can make
the claims precise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.subcube_sort import max_subcube_sort
from repro.core.cost import paper_worst_case_time
from repro.core.ftsort import fault_tolerant_sort
from repro.simulator.params import MachineParams

__all__ = ["crossover_keys", "efficiency", "model_accuracy", "speedup_vs_baseline"]


def speedup_vs_baseline(
    m_keys: int,
    n: int,
    faults: list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    seed: int = 0,
) -> float:
    """Baseline time / proposed time for one workload (both simulated).

    Values above 1 mean the proposed algorithm wins.
    """
    rng = np.random.default_rng(seed)
    keys = rng.random(m_keys)
    ft = fault_tolerant_sort(keys, n, list(faults), params=params)
    base = max_subcube_sort(keys, n, list(faults), params=params)
    return base.elapsed / ft.elapsed


def efficiency(
    m_keys: int,
    n: int,
    faults: list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    seed: int = 0,
) -> float:
    """Parallel efficiency of the proposed sort against fault-free ``Q_n``.

    ``(fault-free time * fault-free workers) / (faulty time * working
    processors)``: 1.0 means the faulty machine extracts the same work per
    processor as the pristine one.
    """
    rng = np.random.default_rng(seed)
    keys = rng.random(m_keys)
    free = fault_tolerant_sort(keys, n, [], params=params)
    faulty = fault_tolerant_sort(keys, n, list(faults), params=params)
    return (free.elapsed * free.working_processors) / (
        faulty.elapsed * faulty.working_processors
    )


def crossover_keys(
    n: int,
    faults: list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    lo: int = 1,
    hi: int = 1 << 22,
    seed: int = 0,
) -> int | None:
    """Smallest ``M`` in ``[lo, hi]`` where the proposed algorithm wins.

    Binary search assuming the speedup is eventually monotone in ``M``
    (true here: startup overheads favor the smaller baseline machine at
    small ``M``, asymptotics favor the more-processors proposed scheme).
    Returns ``None`` if the proposed algorithm never wins by ``hi``.
    """
    if speedup_vs_baseline(hi, n, faults, params, seed) <= 1.0:
        return None
    if speedup_vs_baseline(lo, n, faults, params, seed) > 1.0:
        return lo
    lo_m, hi_m = lo, hi
    while lo_m + 1 < hi_m:
        mid = (lo_m + hi_m) // 2
        if speedup_vs_baseline(mid, n, faults, params, seed) > 1.0:
            hi_m = mid
        else:
            lo_m = mid
    return hi_m


@dataclass(frozen=True)
class ModelAccuracy:
    """Worst-case model versus measured time for one run."""

    measured: float
    model_bound: float

    @property
    def ratio(self) -> float:
        """measured / bound; must be <= 1 for a sound worst case."""
        return self.measured / self.model_bound if self.model_bound else float("inf")


def model_accuracy(
    m_keys: int,
    n: int,
    faults: list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    seed: int = 0,
) -> ModelAccuracy:
    """Compare the paper's closed-form worst case against a simulated run.

    Startup costs are excluded from the comparison (the paper's ``T`` has
    no startup term), so a zero-startup copy of ``params`` drives the
    simulation.
    """
    p = params if params is not None else MachineParams.ncube7()
    p_nostartup = MachineParams(
        t_compare=p.t_compare, t_element=p.t_element, t_startup=0.0, switching=p.switching
    )
    rng = np.random.default_rng(seed)
    keys = rng.random(m_keys)
    res = fault_tolerant_sort(keys, n, list(faults), params=p_nostartup)
    mincut = res.selection.m if res.selection is not None else 0
    bound = paper_worst_case_time(m_keys, n, mincut, p_nostartup)
    return ModelAccuracy(measured=res.elapsed, model_bound=bound)
