"""Record-size sensitivity: how satellite data shifts the comparison.

The paper sorts bare 4-byte keys.  Real records carry payloads, which
scale every transfer while comparisons still touch only the key — pushing
all algorithms toward communication-bound behavior.  The proposed scheme
is *more* communication-intensive per key than the plain bitonic baseline
(multi-hop inter-subcube exchanges), so growing records erode its margin;
this module measures by how much, and finds the record size at which the
reconfiguration baseline catches up (if it ever does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.subcube_sort import max_subcube_sort
from repro.core.ftsort import fault_tolerant_sort
from repro.simulator.params import MachineParams

__all__ = ["RecordSizeRow", "record_size_sensitivity"]


@dataclass(frozen=True)
class RecordSizeRow:
    """Speedup of the proposed scheme for one record size."""

    record_bytes: int
    proposed_time: float
    baseline_time: float

    @property
    def speedup(self) -> float:
        """baseline / proposed (> 1 means the proposed scheme wins)."""
        return self.baseline_time / self.proposed_time


def record_size_sensitivity(
    n: int,
    faults: list[int] | tuple[int, ...],
    m_keys: int,
    record_sizes: tuple[int, ...] = (4, 16, 64, 256),
    params: MachineParams | None = None,
    seed: int = 0,
) -> list[RecordSizeRow]:
    """Proposed-vs-baseline times across record sizes (same keys throughout)."""
    base_params = params if params is not None else MachineParams.ncube7()
    rng = np.random.default_rng(seed)
    keys = rng.random(m_keys)
    rows = []
    for rb in record_sizes:
        p = base_params.with_record_bytes(rb)
        ft = fault_tolerant_sort(keys, n, list(faults), params=p)
        base = max_subcube_sort(keys, n, list(faults), params=p)
        rows.append(
            RecordSizeRow(record_bytes=rb, proposed_time=ft.elapsed,
                          baseline_time=base.elapsed)
        )
    return rows
