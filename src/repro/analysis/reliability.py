"""Reliability comparison of the three fault-tolerance families.

Given a per-processor failure probability ``p`` (faults independent), this
module compares the *expected usable computing capacity* of:

1. **the proposed algorithm-based scheme** — survives any ``r <= n-1``
   faults at utilization ``(2**n - 2**mincut) / 2**n`` (and ``r >= n``
   placements without an isolated processor also survive);
2. **maximal fault-free subcube reconfiguration** — survives whenever any
   fault-free processor remains, at capacity ``2**dim / 2**n``;
3. **modular hardware spares** — full capacity 1.0 when repairable, zero
   otherwise (the classical all-or-nothing availability model), at the
   cost of ``hardware_overhead`` extra processors.

Capacities are averaged over the fault-count distribution (binomial) and
over placements (vectorized Monte-Carlo via
:mod:`repro.core.partition_fast`), giving the expected-capacity curves the
paper's qualitative utilization argument implies but never plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.baselines.maxsubcube import max_fault_free_dim
from repro.baselines.spares import SpareScheme
from repro.core.partition_fast import mincut_batch
from repro.cube.address import validate_dimension

__all__ = ["CapacityCurve", "expected_capacity"]


@dataclass(frozen=True)
class CapacityCurve:
    """Expected usable capacity (fraction of ``2**n``) per scheme."""

    n: int
    p_fail: float
    proposed: float
    max_subcube: float
    spares: float
    spare_overhead: float


def _fault_count_distribution(n: int, p: float, r_max: int) -> np.ndarray:
    """P(exactly r of 2**n processors fail) for r = 0..r_max."""
    total = 1 << n
    return np.array(
        [comb(total, r) * p**r * (1 - p) ** (total - r) for r in range(r_max + 1)]
    )


def expected_capacity(
    n: int,
    p_fail: float,
    spare_scheme: SpareScheme | None = None,
    placements_per_r: int = 300,
    rng: np.random.Generator | int | None = 0,
) -> CapacityCurve:
    """Expected usable capacity of the three schemes at failure prob ``p``.

    Fault counts beyond what each scheme survives contribute zero capacity
    (system down).  The proposed scheme is evaluated for ``r <= n - 1``
    (the paper's guarantee); the subcube scheme for any ``r`` with a
    survivor; the spare scheme per its exact coverage.
    """
    validate_dimension(n)
    if not 0.0 <= p_fail < 1.0:
        raise ValueError(f"p_fail must be in [0, 1), got {p_fail}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    total = 1 << n
    if spare_scheme is None:
        spare_scheme = SpareScheme(n=n, module_dim=max(n - 2, 0), spares_per_module=1)
    r_max = min(total, max(3 * n, 8))  # distribution tail beyond this is negligible
    pr = _fault_count_distribution(n, p_fail, r_max)

    proposed_acc = pr[0] * 1.0
    subcube_acc = pr[0] * 1.0
    spares_acc = pr[0] * 1.0
    for r in range(1, r_max + 1):
        # Proposed: guaranteed only through n-1 faults.
        if r <= n - 1:
            if r == 1:
                mean_util = (total - 1) / total
            else:
                rows = np.stack(
                    [
                        gen.choice(total, size=r, replace=False)
                        for _ in range(placements_per_r)
                    ]
                )
                mincuts = mincut_batch(n, rows)
                mean_util = float(np.mean((total - (1 << mincuts)) / total))
            proposed_acc += pr[r] * mean_util

        # Max subcube: sample placements, take the surviving subcube size.
        caps = []
        for _ in range(min(placements_per_r, 120)):
            faults = gen.choice(total, size=min(r, total), replace=False)
            if len(faults) == total:
                caps.append(0.0)
                continue
            dim = max_fault_free_dim(n, [int(f) for f in faults])
            caps.append((1 << dim) / total)
        subcube_acc += pr[r] * float(np.mean(caps))

        # Spares: exact coverage, full capacity when repairable.
        spares_acc += pr[r] * spare_scheme.coverage(r)

    return CapacityCurve(
        n=n,
        p_fail=p_fail,
        proposed=float(proposed_acc),
        max_subcube=float(subcube_acc),
        spares=float(spares_acc),
        spare_overhead=spare_scheme.hardware_overhead,
    )
