"""Baselines the paper compares against.

* :mod:`repro.baselines.maxsubcube` — the *maximum dimensional fault-free
  subcube* reconfiguration method (Özgüner & Aykanat, IPL 1988): after
  faults are identified, keep only a largest fault-free subcube and idle
  everything else.
* :mod:`repro.baselines.subcube_sort` — parallel bitonic sort confined to
  that subcube: the thick-line baseline of the paper's Figure 7.
* :mod:`repro.baselines.spares` — the related-work hardware family
  (Rennels / Chau & Liestman / Alam & Melhem style modular spares with
  decoupling switches), modeled for the reliability comparison.
"""

from repro.baselines.maxsubcube import (
    max_fault_free_dim,
    max_fault_free_subcube,
    all_max_fault_free_subcubes,
)
from repro.baselines.subcube_sort import max_subcube_sort
from repro.baselines.spares import RepairResult, SpareScheme

__all__ = [
    "RepairResult",
    "SpareScheme",
    "all_max_fault_free_subcubes",
    "max_fault_free_dim",
    "max_fault_free_subcube",
    "max_subcube_sort",
]
