"""Finding maximum dimensional fault-free subcubes (Özgüner's method).

The reconfiguration baseline discards the faulty machine and keeps a
largest subcube containing no faulty processor.  A ``k``-dimensional
subcube is determined by choosing ``n - k`` *fixed* dimensions and a value
for each; it is fault-free iff no fault projects onto that value.  So for a
given fixed-dimension set ``S`` a fault-free subcube exists iff the faults'
projections onto ``S`` do not cover all ``2**|S|`` values — an ``O(r)``
test per candidate set, giving ``O(sum_k C(n, k) * r)`` overall, far below
brute-force enumeration of all ``C(n, k) * 2**(n-k)`` subcubes.

With ``r`` faults, fixing ``ceil(log2(r + 1))`` dimensions always leaves a
free value, so the maximal dimension is at least
``n - ceil(log2(r + 1))``; it is at most ``n - 1`` whenever ``r >= 1``.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Sequence

from repro.cube.address import validate_address, validate_dimension
from repro.cube.subcube import Subcube
from repro.faults.model import FaultSet

__all__ = ["max_fault_free_dim", "max_fault_free_subcube", "all_max_fault_free_subcubes"]


def _fault_addresses(n: int, faults: FaultSet | Sequence[int]) -> tuple[int, ...]:
    if isinstance(faults, FaultSet):
        if faults.n != n:
            raise ValueError(f"fault set is for Q_{faults.n}, expected Q_{n}")
        return faults.processors
    return tuple(sorted({validate_address(int(f), n) for f in faults}))


def _project(addr: int, dims: tuple[int, ...]) -> int:
    key = 0
    for k, d in enumerate(dims):
        key |= ((addr >> d) & 1) << k
    return key


def _free_value(n: int, fixed_dims: tuple[int, ...], faults: tuple[int, ...]) -> int | None:
    """A fixed-dims value hit by no fault, or ``None`` if all are covered.

    Prefers the smallest free value (deterministic tie-break).
    """
    covered = {_project(f, fixed_dims) for f in faults}
    total = 1 << len(fixed_dims)
    if len(covered) >= total:
        return None
    for value in range(total):
        if value not in covered:
            return value
    return None  # pragma: no cover - unreachable


def _subcube_from(n: int, fixed_dims: tuple[int, ...], value: int) -> Subcube:
    mask = 0
    val = 0
    for k, d in enumerate(fixed_dims):
        mask |= 1 << d
        if (value >> k) & 1:
            val |= 1 << d
    return Subcube(n, mask, val)


def max_fault_free_dim(n: int, faults: FaultSet | Sequence[int]) -> int:
    """Dimension of the largest fault-free subcube of ``Q_n``.

    Returns ``n`` when there are no faults.  Raises if every processor is
    faulty (no fault-free subcube of any dimension exists).
    """
    validate_dimension(n)
    addrs = _fault_addresses(n, faults)
    if not addrs:
        return n
    if len(addrs) == 1 << n:
        raise ValueError(f"all {1 << n} processors of Q_{n} are faulty")
    for k in range(n - 1, -1, -1):
        for fixed in combinations(range(n), n - k):
            if _free_value(n, fixed, addrs) is not None:
                return k
    return 0  # pragma: no cover - the Q_0 loop above always finds one


def max_fault_free_subcube(n: int, faults: FaultSet | Sequence[int]) -> Subcube:
    """One maximum dimensional fault-free subcube (deterministic choice).

    Among maximal subcubes, prefers the lexicographically smallest fixed
    dimension set, then the smallest fixed value.
    """
    validate_dimension(n)
    addrs = _fault_addresses(n, faults)
    if not addrs:
        return Subcube(n, 0, 0)
    if len(addrs) == 1 << n:
        raise ValueError(f"all {1 << n} processors of Q_{n} are faulty")
    for k in range(n - 1, -1, -1):
        for fixed in combinations(range(n), n - k):
            value = _free_value(n, fixed, addrs)
            if value is not None:
                return _subcube_from(n, fixed, value)
    raise AssertionError("unreachable: a fault-free processor is a Q_0 subcube")


def all_max_fault_free_subcubes(n: int, faults: FaultSet | Sequence[int]) -> list[Subcube]:
    """Every maximum dimensional fault-free subcube.

    Used by tests (cross-checking the fast projection test against direct
    enumeration) and by the utilization experiment to report how rare the
    baseline's best case is.
    """
    validate_dimension(n)
    addrs = _fault_addresses(n, faults)
    if not addrs:
        return [Subcube(n, 0, 0)]
    best_dim = max_fault_free_dim(n, addrs)
    out: list[Subcube] = []
    fault_set = set(addrs)
    for fixed in combinations(range(n), n - best_dim):
        covered = {_project(f, fixed) for f in addrs}
        for value in range(1 << len(fixed)):
            if value not in covered:
                sub = _subcube_from(n, fixed, value)
                assert not any(sub.contains(f) for f in fault_set)
                out.append(sub)
    return out
