"""Hardware spare-allocation reconfiguration (the related-work baseline).

The paper's introduction surveys hardware fault tolerance for hypercubes —
Rennels' spares-with-switches, Chau & Liestman's decoupling-switch scheme,
Alam & Melhem's modular spare allocation — and dismisses the family for
"high hardware complexity and low processor utilization".  This module
models the family quantitatively so that dismissal can be examined:

The machine is divided into ``2**(n - module_dim)`` modules of
``2**module_dim`` processors; each module carries ``spares_per_module``
spare processors behind decoupling switches.  A fault configuration is
*repairable* — the full ``Q_n`` is restored at full speed — iff no module
has more faults than spares.  (Spares themselves are assumed fault-free,
the usual simplification in these papers' first-order analyses.)

:func:`SpareScheme.coverage` computes the exact probability that ``r``
uniformly random faults are repairable, by polynomial convolution over
modules (the coefficient-counting argument): the number of placements with
at most ``s`` faults per module is the ``x**r`` coefficient of
``(sum_{k<=s} C(2**g, k) x**k) ** num_modules``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.cube.address import validate_dimension
from repro.faults.model import FaultSet

__all__ = ["RepairResult", "SpareScheme"]


@dataclass(frozen=True)
class RepairResult:
    """Outcome of attempting a spare-based repair.

    Attributes:
        success: whether every module could absorb its faults.
        replaced: mapping faulty processor -> spare id ``(module, slot)``.
        overloaded_modules: modules with more faults than spares.
    """

    success: bool
    replaced: dict[int, tuple[int, int]]
    overloaded_modules: tuple[int, ...]


@dataclass(frozen=True)
class SpareScheme:
    """A modular spare-allocation design for ``Q_n``.

    Attributes:
        n: hypercube dimension.
        module_dim: each module covers ``2**module_dim`` processors
            (modules are address blocks, the usual physical packaging).
        spares_per_module: spare processors per module.
    """

    n: int
    module_dim: int
    spares_per_module: int

    def __post_init__(self) -> None:
        validate_dimension(self.n)
        if not 0 <= self.module_dim <= self.n:
            raise ValueError(f"module_dim {self.module_dim} out of range for Q_{self.n}")
        if self.spares_per_module < 0:
            raise ValueError("spares_per_module must be non-negative")

    @property
    def num_modules(self) -> int:
        return 1 << (self.n - self.module_dim)

    @property
    def module_size(self) -> int:
        return 1 << self.module_dim

    @property
    def total_spares(self) -> int:
        return self.num_modules * self.spares_per_module

    @property
    def hardware_overhead(self) -> float:
        """Extra processors as a fraction of the base machine."""
        return self.total_spares / (1 << self.n)

    def module_of(self, addr: int) -> int:
        """Module index of processor ``addr`` (high address bits)."""
        if not 0 <= addr < (1 << self.n):
            raise ValueError(f"address {addr} out of range for Q_{self.n}")
        return addr >> self.module_dim

    def repair(self, faults: FaultSet | list[int] | tuple[int, ...]) -> RepairResult:
        """Attempt the repair: assign each fault a spare in its module."""
        addrs = faults.processors if isinstance(faults, FaultSet) else tuple(sorted(set(faults)))
        used: dict[int, int] = {}
        replaced: dict[int, tuple[int, int]] = {}
        overloaded: set[int] = set()
        for f in addrs:
            mod = self.module_of(f)
            slot = used.get(mod, 0)
            if slot >= self.spares_per_module:
                overloaded.add(mod)
                continue
            used[mod] = slot + 1
            replaced[f] = (mod, slot)
        success = not overloaded
        return RepairResult(
            success=success,
            replaced=replaced if success else {},
            overloaded_modules=tuple(sorted(overloaded)),
        )

    def coverage(self, r: int) -> float:
        """Exact P(``r`` uniform faults are repairable)."""
        total = 1 << self.n
        if not 0 <= r <= total:
            raise ValueError(f"cannot place {r} faults in Q_{self.n}")
        if r == 0:
            return 1.0
        s = self.spares_per_module
        g = self.module_size
        # Per-module generating polynomial: sum_{k<=min(s,g)} C(g, k) x^k.
        poly = np.array([comb(g, k) for k in range(min(s, g) + 1)], dtype=float)
        acc = np.array([1.0])
        for _ in range(self.num_modules):
            acc = np.convolve(acc, poly)
            if acc.size > r + 1:
                acc = acc[: r + 1]  # higher coefficients never matter
        good = acc[r] if r < acc.size else 0.0
        return float(good / comb(total, r))
