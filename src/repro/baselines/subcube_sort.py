"""Sorting on the maximal fault-free subcube (the Figure-7 baseline).

The reconfiguration approach sorts all ``M`` keys using only the processors
of a maximum dimensional fault-free subcube ``Q_{n-t}``: each of its
``2**(n-t)`` processors receives ``ceil(M / 2**(n-t))`` keys and a plain
parallel bitonic sort runs entirely inside the subcube (all links used are
internal, so faults elsewhere never interfere and every exchange is one
hop).  Everything outside the subcube — ``2**n - 2**(n-t) - r`` normal
processors — dangles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.maxsubcube import max_fault_free_subcube
from repro.core.blocks import pad_and_chunk, strip_padding
from repro.core.single_fault import local_sort_blocks
from repro.cube.subcube import Subcube
from repro.cube.address import validate_dimension
from repro.faults.model import FaultSet
from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine
from repro.sorting.bitonic_cube import block_bitonic_sort

__all__ = ["MaxSubcubeSortResult", "max_subcube_sort"]


@dataclass(frozen=True)
class MaxSubcubeSortResult:
    """Outcome of the maximal fault-free subcube baseline sort.

    Attributes:
        sorted_keys: the input keys in ascending order.
        elapsed: simulated execution time.
        subcube: the fault-free subcube used.
        output_order: physical addresses (inside the subcube) in output
            order.
        machine: the phase machine with blocks and per-phase costs.
        dangling: count of normal processors left idle.
        block_size: keys per subcube processor after padding.
    """

    sorted_keys: np.ndarray
    elapsed: float
    subcube: Subcube
    output_order: tuple[int, ...]
    machine: PhaseMachine
    dangling: int
    block_size: int


def max_subcube_sort(
    keys: np.ndarray | list,
    n: int,
    faults: FaultSet | list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    exact_counts: bool = False,
    subcube: Subcube | None = None,
) -> MaxSubcubeSortResult:
    """Sort ``keys`` on ``Q_n`` with the maximal fault-free subcube method.

    Args:
        keys: finite keys, any order.
        n: hypercube dimension.
        faults: faulty processors.
        params: machine cost constants (default NCUBE/7).
        exact_counts: exact heapsort comparison counting for local sorts.
        subcube: optionally force a specific fault-free subcube (it must
            contain no fault); by default the deterministic maximal one is
            used.
    """
    validate_dimension(n)
    fault_set = faults if isinstance(faults, FaultSet) else FaultSet(n, faults)
    if fault_set.n != n:
        raise ValueError(f"fault set is for Q_{fault_set.n}, expected Q_{n}")
    if subcube is None:
        subcube = max_fault_free_subcube(n, fault_set)
    else:
        if subcube.n != n:
            raise ValueError(f"subcube is in Q_{subcube.n}, expected Q_{n}")
        bad = [f for f in fault_set if subcube.contains(f)]
        if bad:
            raise ValueError(f"forced subcube contains faulty processors {bad}")
    machine = PhaseMachine(n, params=params, faults=fault_set)
    members = list(subcube.members())
    keys_arr = np.asarray(keys, dtype=float)
    chunks, block_size = pad_and_chunk(keys_arr, len(members))
    assignments = {addr: chunk for addr, chunk in zip(members, chunks)}
    local_sort_blocks(machine, assignments, exact_counts=exact_counts)
    # All subcube-internal exchanges are single physical hops regardless of
    # the ambient fault configuration.
    block_bitonic_sort(machine, members, label="subcube-bitonic", uniform_hops=1)
    gathered = np.concatenate([machine.get_block(a) for a in members])
    sorted_keys = strip_padding(gathered, int(keys_arr.size))
    dangling = (1 << n) - fault_set.r - subcube.size
    return MaxSubcubeSortResult(
        sorted_keys=sorted_keys,
        elapsed=machine.elapsed,
        subcube=subcube,
        output_order=tuple(members),
        machine=machine,
        dangling=dangling,
        block_size=block_size,
    )
