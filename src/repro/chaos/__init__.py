"""repro.chaos — randomized fault-injection campaigns (chaos harness).

The robustness layer's proof obligation: for *any* fault schedule the
paper's model admits — mixed processor and link faults, arriving at any
point of the run, on either execution backend — the supervised sort must
finish with exactly ``np.sort(keys)``.  This package turns that claim into
a seeded, reproducible campaign:

* :mod:`repro.chaos.schedule` — scenario model and seeded generator
  (victim, kind, arrival time drawn per scenario; arrival stratified over
  the whole run so every step 1-8 plus distribution/collection gets hit);
* :mod:`repro.chaos.campaign` — runs scenarios through
  :func:`repro.host.supervised_sort`, differentially checks every outcome
  against ``np.sort``, and writes a JSONL report with per-scenario
  detection latency, retries, and recovery overhead;
* :mod:`repro.chaos.shrink` — delta-debugging reduction of any failing
  scenario to a minimal reproducer (fewer events, fewer static faults,
  fewer keys).

CLI: ``repro chaos --scenarios 200 --seed 0 --out chaos_report.jsonl``
(``--fast`` for the CI smoke campaign).  See docs/ROBUSTNESS.md for the
report schema.
"""

from repro.chaos.campaign import CampaignSummary, ChaosOutcome, run_campaign, run_scenario
from repro.chaos.schedule import ChaosScenario, ScenarioEvent, random_scenario
from repro.chaos.shrink import shrink_scenario

__all__ = [
    "CampaignSummary",
    "ChaosOutcome",
    "ChaosScenario",
    "ScenarioEvent",
    "random_scenario",
    "run_campaign",
    "run_scenario",
    "shrink_scenario",
]
