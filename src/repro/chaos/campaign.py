"""Campaign runner: execute scenarios, differentially check, report.

Every scenario runs through the fault class it names (see
:mod:`repro.faults.universe`).  The ``baseline`` class is the original
harness — :func:`repro.host.supervised_sort` with a fresh
:class:`repro.obs.Tracer` attached, checked against the exact ``np.sort``
oracle; the pluggable classes (``comparison``, ``memory``, ``hybrid``,
``abft``) inject their own fault models and judge survival with
tolerance-aware oracles.  The campaign emits one JSON line per scenario
(schema in docs/ROBUSTNESS.md) carrying the scenario itself (so any line
replays standalone), the verdict, the per-class oracle metrics, and the
robustness telemetry: detection latencies, retry/timeout counts, and
recovery overhead.  Any failure is shrunk to a minimal reproducer before
the summary is built, and the summary reports a per-fault-class survival
curve over each class's severity parameter.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.chaos.schedule import ChaosScenario, random_scenario
from repro.faults.model import FaultKind, FaultSet
from repro.faults.universe import get_fault_class
from repro.host.session import FaultEvent, supervised_sort
from repro.core.ftsort import fault_tolerant_sort
from repro.obs import Tracer
from repro.parallel import run_tasks
from repro.plancache.cache import PLAN_CACHE
from repro.simulator.params import MachineParams
from repro.simulator.spmd import ReliabilityPolicy

__all__ = [
    "CampaignSummary",
    "ChaosOutcome",
    "run_baseline_scenario",
    "run_campaign",
    "run_scenario",
]


@dataclass(frozen=True)
class ChaosOutcome:
    """Verdict and telemetry of one executed scenario.

    Attributes:
        scenario: the scenario that ran.
        sorted_correct: final keys equal ``np.sort(keys)`` exactly.
        recovered: the supervisor completed without raising.
        error: exception repr when ``recovered`` is False.
        recoveries: detection-triggered re-plans.
        detect_latencies: fault arrival -> confirmation, per confirmed fault.
        retries: reliable-messaging retransmissions across the run.
        timeouts: ACK timeouts across the run.
        false_suspicions: suspicions cleared by neighbor tests.
        recovery_overhead: supervised total / completing run (>= 1).
        wasted_time: written-off attempt time.
        total_time: supervised end-to-end simulated time.
        oracle: per-fault-class oracle metrics (``kind`` names the oracle;
            the rest is class-specific — dislocation and tolerances for
            ``comparison``, corruption/detection for ``memory``/``abft``,
            the identified set for ``hybrid``).
    """

    scenario: ChaosScenario
    sorted_correct: bool
    recovered: bool
    error: str | None = None
    recoveries: int = 0
    detect_latencies: tuple[float, ...] = ()
    retries: int = 0
    timeouts: int = 0
    false_suspicions: int = 0
    recovery_overhead: float = 1.0
    wasted_time: float = 0.0
    total_time: float = 0.0
    oracle: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.recovered and self.sorted_correct

    def to_dict(self) -> dict:
        d = asdict(self)
        d["scenario"] = self.scenario.to_dict()
        d["detect_latencies"] = list(self.detect_latencies)
        d["passed"] = self.passed
        return d


def scenario_events(
    scenario: ChaosScenario, params: MachineParams | None = None
) -> list[FaultEvent]:
    """Materialize a scenario's arrival fractions into absolute times.

    The nominal duration is the phase-engine run time over the static
    faults alone — the denominator both backends share.  It is a pure
    function of the scenario statics (the keys are regenerated from the
    seed), so it is memoized in the plan cache: the supervisor, the
    shrinker's ddmin iterations, and repeated campaign runs all re-ask for
    the same denominators.
    """
    static = FaultSet(
        scenario.n, scenario.static_processors,
        kind=FaultKind.PARTIAL, links=scenario.static_links,
    )

    def compute() -> float:
        rng = np.random.default_rng(scenario.seed)
        keys = rng.integers(0, 10**6, scenario.keys).astype(float)
        return fault_tolerant_sort(keys, scenario.n, static, params=params).elapsed

    nominal = PLAN_CACHE.memo(
        "nominal",
        (scenario.n, scenario.keys, scenario.seed, static, params,
         scenario.fault_class),
        compute,
    )
    return [
        FaultEvent(ev.kind, ev.subject, at=ev.frac * nominal)
        for ev in scenario.events
    ]


def run_scenario(
    scenario: ChaosScenario,
    params: MachineParams | None = None,
    reliability: ReliabilityPolicy | None = None,
) -> ChaosOutcome:
    """Execute one scenario under the fault class it names.

    Dispatches through the :mod:`repro.faults.universe` registry — the
    ``baseline`` class routes to :func:`run_baseline_scenario`; the
    pluggable classes inject their fault model around the planned sort and
    judge survival with their own tolerance-aware oracle.
    """
    return get_fault_class(scenario.fault_class).run(
        scenario, params=params, reliability=reliability
    )


def run_baseline_scenario(
    scenario: ChaosScenario,
    params: MachineParams | None = None,
    reliability: ReliabilityPolicy | None = None,
) -> ChaosOutcome:
    """Execute one baseline scenario; differentially check against ``np.sort``."""
    rng = np.random.default_rng(scenario.seed)
    keys = rng.integers(0, 10**6, scenario.keys).astype(float)
    static = FaultSet(
        scenario.n, scenario.static_processors,
        kind=FaultKind.PARTIAL, links=scenario.static_links,
    )
    if reliability is None:
        # Snappier than the interactive default: campaign runs are many.
        reliability = ReliabilityPolicy(timeout=8_000.0)
    tracer = Tracer()
    cache_baseline = PLAN_CACHE.stats()
    try:
        events = scenario_events(scenario, params=params)
        result = supervised_sort(
            keys, scenario.n,
            faults=static,
            events=events,
            backend=scenario.backend,
            params=params,
            obs=tracer,
            rng=scenario.seed + 1,
            reliability=reliability,
        )
    except Exception as exc:  # the campaign reports, the shrinker reproduces
        return ChaosOutcome(
            scenario=scenario, sorted_correct=False, recovered=False,
            error=f"{type(exc).__name__}: {exc}",
            oracle={"kind": "exact-np.sort"},
        )
    correct = bool(np.array_equal(result.sorted_keys, np.sort(keys)))
    metrics = tracer.metrics
    # Attribute this scenario's plan-cache traffic to its tracer.
    PLAN_CACHE.export_metrics(metrics, baseline=cache_baseline)
    latencies = tuple(
        rec.latency for rec in result.detections if rec.latency is not None
    )
    false_susp = sum(1 for rec in result.detections if not rec.faulty)
    return ChaosOutcome(
        scenario=scenario,
        sorted_correct=correct,
        recovered=True,
        recoveries=result.recoveries,
        detect_latencies=latencies,
        retries=int(metrics.value("robust.retries")),
        timeouts=int(metrics.value("robust.timeouts")),
        false_suspicions=false_susp,
        recovery_overhead=float(result.recovery_overhead),
        wasted_time=float(result.wasted_time),
        total_time=float(result.total_time),
        oracle={"kind": "exact-np.sort", "exact": correct},
    )


@dataclass
class CampaignSummary:
    """Aggregate verdict of a campaign.

    ``failures`` carries, per failing scenario, the original scenario dict,
    the error, and the shrunk minimal reproducer (when shrinking ran).
    """

    scenarios: int = 0
    passed: int = 0
    with_recovery: int = 0
    recoveries: int = 0
    retries: int = 0
    false_suspicions: int = 0
    mean_detect_latency: float = 0.0
    max_detect_latency: float = 0.0
    mean_recovery_overhead: float = 1.0
    max_recovery_overhead: float = 1.0
    backends: dict = field(default_factory=dict)
    fault_classes: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.scenarios

    def to_dict(self) -> dict:
        d = asdict(self)
        d["all_passed"] = self.all_passed
        return d


def _aggregate_fault_classes(outcomes: list[ChaosOutcome]) -> dict:
    """Per-fault-class survival curves for :class:`CampaignSummary`.

    For every class that ran: scenarios/passed/pass_rate, the per-backend
    split, and a ``curve`` keyed by the class's severity parameter value
    (``"default"`` for the parameterless baseline) carrying pass rate,
    dislocation statistics (when the class's oracle reports them), mean
    detection latency, and mean recovery overhead at that severity.
    """
    per_class: dict[str, dict] = {}
    buckets: dict[tuple[str, str], list[ChaosOutcome]] = {}
    for outcome in outcomes:
        name = outcome.scenario.fault_class
        entry = per_class.setdefault(name, {
            "scenarios": 0, "passed": 0, "pass_rate": 0.0,
            "oracle": outcome.oracle.get("kind", "exact-np.sort"),
            "curve_param": get_fault_class(name).curve_param,
            "backends": {}, "curve": {},
        })
        entry["scenarios"] += 1
        entry["passed"] += int(outcome.passed)
        per = entry["backends"].setdefault(
            outcome.scenario.backend, {"scenarios": 0, "passed": 0}
        )
        per["scenarios"] += 1
        per["passed"] += int(outcome.passed)
        opts = dict(outcome.scenario.fault_params)
        param = entry["curve_param"]
        key = str(opts[param]) if param is not None and param in opts else "default"
        buckets.setdefault((name, key), []).append(outcome)
    for (name, key), group in buckets.items():
        passed = sum(1 for o in group if o.passed)
        point = {
            "scenarios": len(group),
            "passed": passed,
            "pass_rate": passed / len(group),
        }
        dislocations = [
            o.oracle["max_dislocation"] for o in group
            if "max_dislocation" in o.oracle
        ]
        if dislocations:
            point["mean_max_dislocation"] = float(np.mean(dislocations))
            point["max_max_dislocation"] = int(np.max(dislocations))
        latencies = [lat for o in group for lat in o.detect_latencies]
        if latencies:
            point["mean_detect_latency"] = float(np.mean(latencies))
        overheads = [o.recovery_overhead for o in group if o.recovered]
        if overheads:
            point["mean_recovery_overhead"] = float(np.mean(overheads))
        per_class[name]["curve"][key] = point
    for entry in per_class.values():
        if entry["scenarios"]:
            entry["pass_rate"] = entry["passed"] / entry["scenarios"]
    return per_class


def _scenario_task(task: tuple) -> tuple[int, ChaosOutcome]:
    """One worker unit: build scenario ``idx`` from the campaign seed, run it.

    Module-level (picklable) so :func:`repro.parallel.run_tasks` can ship it
    to a process pool.  The scenario is derived deterministically from
    ``(idx, seed)`` — identical whether it runs in the parent or a worker —
    and :func:`run_scenario` opens a *fresh* tracer inside the task, so
    every worker's observability state is fully isolated; the parent merges
    the returned outcomes by scenario index.
    """
    idx, seed, n_choices, backends, max_keys, fault_classes, params = task
    scenario = random_scenario(
        idx, seed, n_choices=n_choices, backends=backends, max_keys=max_keys,
        fault_classes=fault_classes,
    )
    return idx, run_scenario(scenario, params=params)


def run_campaign(
    count: int = 200,
    seed: int = 0,
    out: str | None = None,
    params: MachineParams | None = None,
    n_choices: tuple[int, ...] = (3, 4),
    backends: tuple[str, ...] = ("phase", "spmd"),
    max_keys: int = 96,
    shrink_failures: bool = True,
    progress=None,
    jobs: int = 1,
    fault_classes: tuple[str, ...] = ("baseline",),
    executor: str | None = None,
) -> CampaignSummary:
    """Run ``count`` seeded scenarios; write a JSONL report to ``out``.

    Each report line is one :meth:`ChaosOutcome.to_dict`.  ``progress``
    (optional callable ``f(index, outcome)``) fires per scenario — in
    completion order when parallel.  Failing scenarios are shrunk to
    minimal reproducers unless ``shrink_failures`` is off.

    ``jobs > 1`` distributes scenarios over workers; ``executor`` picks
    the tier (:data:`repro.parallel.EXECUTORS`, ``"auto"``, or ``None``
    to consult ``REPRO_EXECUTOR``).  Scenario derivation is per-index
    deterministic, tracers are per-task, and injector activation is
    thread-local, so the outcomes, the JSONL report (always in scenario
    order), and the summary are byte-identical to a serial run under
    every tier; only shrinking stays in the parent.  The ``auto`` payload
    hint is the key volume a scenario regenerates in its worker
    (``max_keys`` float64 cells) — tasks themselves ship only scalars.

    ``fault_classes`` selects the registered fault universes the stratified
    generator cycles; names are validated up front (a typo fails fast, not
    after ``count`` scenarios).
    """
    from repro.chaos.shrink import shrink_scenario

    for name in fault_classes:
        get_fault_class(name)  # validate before spending any work
    tasks = [
        (idx, seed, n_choices, backends, max_keys, tuple(fault_classes), params)
        for idx in range(count)
    ]
    wrapped = None
    if progress is not None:
        wrapped = lambda done, total, result: progress(result[0], result[1])  # noqa: E731
    indexed = run_tasks(
        _scenario_task, tasks, jobs=jobs, progress=wrapped,
        executor=executor, payload_hint=max_keys * 8,
    )
    outcomes = [outcome for _, outcome in sorted(indexed, key=lambda pair: pair[0])]
    lines = [json.dumps(outcome.to_dict(), sort_keys=True) for outcome in outcomes]

    summary = CampaignSummary(scenarios=len(outcomes))
    latencies: list[float] = []
    overheads: list[float] = []
    for outcome in outcomes:
        backend = outcome.scenario.backend
        per = summary.backends.setdefault(backend, {"scenarios": 0, "passed": 0})
        per["scenarios"] += 1
        if outcome.passed:
            summary.passed += 1
            per["passed"] += 1
        if outcome.recoveries:
            summary.with_recovery += 1
        summary.recoveries += outcome.recoveries
        summary.retries += outcome.retries
        summary.false_suspicions += outcome.false_suspicions
        latencies.extend(outcome.detect_latencies)
        if outcome.recovered:
            overheads.append(outcome.recovery_overhead)
        if not outcome.passed:
            entry = {
                "scenario": outcome.scenario.to_dict(),
                "error": outcome.error,
                "sorted_correct": outcome.sorted_correct,
            }
            if shrink_failures:
                reduced = shrink_scenario(outcome.scenario, params=params)
                entry["minimal_reproducer"] = reduced.to_dict()
            summary.failures.append(entry)
    if latencies:
        summary.mean_detect_latency = float(np.mean(latencies))
        summary.max_detect_latency = float(np.max(latencies))
    if overheads:
        summary.mean_recovery_overhead = float(np.mean(overheads))
        summary.max_recovery_overhead = float(np.max(overheads))
    summary.fault_classes = _aggregate_fault_classes(outcomes)

    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
            fh.write(json.dumps({"summary": summary.to_dict()}, sort_keys=True) + "\n")
    return summary
