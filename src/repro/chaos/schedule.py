"""Chaos scenario model and seeded generation.

A scenario is a complete, JSON-serializable description of one randomized
run: cube size, key count, backend, statically known faults, and mid-run
fault events.  Event arrival is stored as a *fraction* of the nominal
(fault-free-of-surprises) run time rather than an absolute instant, so the
same scenario is meaningful on both backends and arrival coverage can be
stratified: fraction 0 strikes during distribution/planning, fractions in
(0, 1) land inside sort steps 3-8, and fractions above 1 strike during
collection or after completion.

Generation keeps the total fault budget inside the paper's model
(``r <= n - 1`` after link absorption) by drawing all victims — static
processors, event processors, and both endpoints of event links — from
disjoint processors.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

__all__ = ["ChaosScenario", "ScenarioEvent", "random_scenario"]

#: Arrival-fraction strata: early (distribution/planning), a dense interior
#: sweep of the sort proper, and late (collection / post-completion).
ARRIVAL_STRATA = (0.0, 0.08, 0.17, 0.25, 0.33, 0.42, 0.5, 0.58,
                  0.67, 0.75, 0.83, 0.92, 1.0, 1.1)


@dataclass(frozen=True)
class ScenarioEvent:
    """One scheduled mid-run fault.

    Attributes:
        kind: ``"processor"`` or ``"link"``.
        subject: processor address, or ``[a, b]`` link endpoints.
        frac: arrival time as a fraction of the nominal run duration.
    """

    kind: str
    subject: int | tuple[int, int]
    frac: float


@dataclass(frozen=True)
class ChaosScenario:
    """One randomized fault-injection scenario (fully seeded/reproducible).

    Attributes:
        scenario_id: index within the campaign.
        seed: drives the keys, the diagnoser's test model, everything.
        n: hypercube dimension.
        keys: number of keys to sort.
        backend: ``"phase"`` or ``"spmd"``.
        static_processors: faults known before the run (off-line diagnosed).
        static_links: dead links known before the run.
        events: mid-run arrivals.
        fault_class: registered fault universe this scenario exercises
            (``"baseline"`` is the original crash/recovery chaos model).
        fault_params: class-specific parameters as ``(name, value)`` pairs
            (e.g. ``(("p", 0.002),)`` for comparison faults).
    """

    scenario_id: int
    seed: int
    n: int
    keys: int
    backend: str
    static_processors: tuple[int, ...]
    static_links: tuple[tuple[int, int], ...]
    events: tuple[ScenarioEvent, ...]
    fault_class: str = "baseline"
    fault_params: tuple[tuple[str, float], ...] = ()

    def to_dict(self) -> dict:
        d = asdict(self)
        d["events"] = [
            {"kind": e.kind,
             "subject": list(e.subject) if isinstance(e.subject, tuple) else e.subject,
             "frac": e.frac}
            for e in self.events
        ]
        d["static_links"] = [list(l) for l in self.static_links]
        d["static_processors"] = list(self.static_processors)
        d["fault_params"] = {name: value for name, value in self.fault_params}
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosScenario":
        events = tuple(
            ScenarioEvent(
                kind=e["kind"],
                subject=tuple(e["subject"]) if isinstance(e["subject"], list) else int(e["subject"]),
                frac=float(e["frac"]),
            )
            for e in d["events"]
        )
        return cls(
            scenario_id=int(d["scenario_id"]),
            seed=int(d["seed"]),
            n=int(d["n"]),
            keys=int(d["keys"]),
            backend=str(d["backend"]),
            static_processors=tuple(int(p) for p in d["static_processors"]),
            static_links=tuple(tuple(l) for l in d["static_links"]),
            events=events,
            fault_class=str(d.get("fault_class", "baseline")),
            fault_params=tuple(
                sorted((str(k), float(v))
                       for k, v in d.get("fault_params", {}).items())
            ),
        )


def random_scenario(
    scenario_id: int,
    seed: int,
    n_choices: tuple[int, ...] = (3, 4),
    backends: tuple[str, ...] = ("phase", "spmd"),
    max_keys: int = 96,
    fault_classes: tuple[str, ...] = ("baseline",),
) -> ChaosScenario:
    """Draw one scenario, deterministically from ``(scenario_id, seed)``.

    The primary event's arrival fraction is stratified by ``scenario_id``
    over :data:`ARRIVAL_STRATA` (with a small jitter), so even short
    campaigns hit every stage of the run; additional events draw their
    fraction uniformly.  Backends alternate with ``scenario_id`` so both
    engines get equal coverage.

    ``fault_classes`` selects the registered fault universes to draw from;
    classes cycle *after* the backend alternation, so every class is
    exercised on every backend.  Each non-baseline class stratifies its own
    curve parameter (injection rate, byzantine fraction, …) over the
    variant index ``scenario_id // (len(backends) * len(fault_classes))``.
    The default single-``baseline`` campaign is draw-for-draw identical to
    the historical generator.
    """
    rng = np.random.default_rng((seed, scenario_id))
    n = int(rng.choice(n_choices))
    backend = backends[scenario_id % len(backends)]
    keys = int(rng.integers(max(24, max_keys // 2), max_keys + 1))

    class_name = fault_classes[(scenario_id // len(backends)) % len(fault_classes)]
    if class_name != "baseline":
        from repro.faults.universe import get_fault_class

        cls = get_fault_class(class_name)
        budget = n - 1
        floor = 1 if cls.needs_static else 0
        n_static = int(rng.integers(floor, budget + 1)) if budget >= floor else 0
        free = list(rng.permutation(1 << n))
        static_processors = tuple(sorted(int(free.pop()) for _ in range(n_static)))
        variant = scenario_id // (len(backends) * len(fault_classes))
        params = cls.draw_params(rng, variant)
        return ChaosScenario(
            scenario_id=scenario_id,
            seed=seed,
            n=n,
            keys=keys,
            backend=backend,
            static_processors=static_processors,
            static_links=(),
            events=(),
            fault_class=class_name,
            fault_params=params,
        )

    budget = n - 1  # paper model: r <= n - 1 after link absorption
    n_events = int(rng.integers(1, budget + 1))
    n_static = int(rng.integers(0, budget - n_events + 1))

    # Disjoint victims: static processors, event processors, and both
    # endpoints of event links all come from distinct processors, so the
    # absorbed fault count never exceeds the budget and no link ever
    # connects two faulty endpoints.
    free = list(rng.permutation(1 << n))
    static_processors = tuple(sorted(int(free.pop()) for _ in range(n_static)))

    events = []
    for k in range(n_events):
        if k == 0:
            stratum = ARRIVAL_STRATA[scenario_id % len(ARRIVAL_STRATA)]
            frac = float(max(0.0, stratum + rng.uniform(-0.03, 0.03)))
        else:
            frac = float(rng.uniform(0.0, 1.1))
        if rng.random() < 0.35:
            # Link event: pick a victim with a free neighbor.
            a = None
            for cand in list(free):
                nbs = [cand ^ (1 << d) for d in range(n)]
                free_nbs = [b for b in nbs if b in free]
                if free_nbs:
                    a = int(cand)
                    b = int(free_nbs[int(rng.integers(0, len(free_nbs)))])
                    break
            if a is not None:
                free.remove(a)
                free.remove(b)
                events.append(ScenarioEvent("link", (min(a, b), max(a, b)), frac))
                continue
        victim = int(free.pop())
        events.append(ScenarioEvent("processor", victim, frac))

    return ChaosScenario(
        scenario_id=scenario_id,
        seed=seed,
        n=n,
        keys=keys,
        backend=backend,
        static_processors=static_processors,
        static_links=(),
        events=tuple(events),
    )
