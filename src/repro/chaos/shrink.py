"""Delta-debugging reduction of failing chaos scenarios.

A campaign failure is only as useful as its reproducer is small.  The
shrinker greedily removes whatever it can while the scenario *still
fails*: mid-run events one at a time, statically known faults one at a
time, then the key count by halving.  Each candidate is re-executed
through the same :func:`repro.chaos.campaign.run_scenario` path, so the
reduced scenario is guaranteed to reproduce the failure verbatim when
replayed (e.g. via ``ChaosScenario.from_dict`` on the report line).
"""

from __future__ import annotations

from dataclasses import replace

from repro.chaos.schedule import ChaosScenario

__all__ = ["shrink_scenario"]

#: Never shrink the key count below this: degenerate inputs (fewer keys
#: than working processors) exercise a different code path than the
#: original failure.
_MIN_KEYS = 8


def _default_still_fails(params):
    from repro.chaos.campaign import run_scenario

    def predicate(scenario: ChaosScenario) -> bool:
        return not run_scenario(scenario, params=params).passed

    return predicate


def shrink_scenario(
    scenario: ChaosScenario,
    params=None,
    still_fails=None,
    max_rounds: int = 10,
) -> ChaosScenario:
    """Reduce ``scenario`` to a (locally) minimal scenario that still fails.

    ``still_fails(candidate) -> bool`` defaults to re-running the candidate
    through the campaign path.  If the input scenario does not fail under
    the predicate (flaky environment), it is returned unchanged.

    Scenario execution is deterministic, so each distinct candidate is
    evaluated once per shrink: ddmin rounds revisit the same candidates
    (every round replays the drop positions that previously survived), and
    the memo turns those replays into dict lookups.
    """
    if still_fails is None:
        still_fails = _default_still_fails(params)
    evaluated: dict[ChaosScenario, bool] = {}
    inner = still_fails

    def still_fails(candidate: ChaosScenario) -> bool:
        verdict = evaluated.get(candidate)
        if verdict is None:
            verdict = evaluated[candidate] = bool(inner(candidate))
        return verdict

    if not still_fails(scenario):
        return scenario

    current = scenario
    for _ in range(max_rounds):
        progressed = False

        # Drop mid-run events, one at a time (keep at least the failure).
        i = 0
        while i < len(current.events):
            events = current.events[:i] + current.events[i + 1:]
            candidate = replace(current, events=events)
            if still_fails(candidate):
                current = candidate
                progressed = True
            else:
                i += 1

        # Drop statically known faults, one at a time.
        i = 0
        while i < len(current.static_processors):
            procs = current.static_processors[:i] + current.static_processors[i + 1:]
            candidate = replace(current, static_processors=procs)
            if still_fails(candidate):
                current = candidate
                progressed = True
            else:
                i += 1
        i = 0
        while i < len(current.static_links):
            links = current.static_links[:i] + current.static_links[i + 1:]
            candidate = replace(current, static_links=links)
            if still_fails(candidate):
                current = candidate
                progressed = True
            else:
                i += 1

        # Halve the key count while the failure survives.
        while current.keys > _MIN_KEYS:
            candidate = replace(current, keys=max(_MIN_KEYS, current.keys // 2))
            if still_fails(candidate):
                current = candidate
                progressed = True
            else:
                break

        if not progressed:
            break
    return current
