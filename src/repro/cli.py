"""Unified command-line interface.

Subcommands::

    repro sort    --n 6 --faults 3,5,16 --keys 10000 [--kind total] [--spmd]
                  [--kernels numpy|loop|compiled]
    repro trace   --n 6 --faults 7,25,52 --out trace.json [--spmd]
    repro plan    --n 5 --faults 3,5,16,24
    repro diagnose --n 6 --faults 3,5,16 [--seed 7]
    repro chaos   --scenarios 200 --seed 0 --out chaos_report.jsonl [--fast]
                  [--jobs J|auto] [--executor serial|process|thread|shm|auto]
    repro table1  [--trials N]        (same as repro-table1)
    repro table2  [--trials N]
    repro figure7 --n 6 [--points P]
    repro serve   [--port 0] [--jobs J] [--batch-max B] [--stdio]
                  [--shards N] [--tenant-rate R] [--tenant-max-inflight M]
                  [--max-queued N] [--obs-out obs.json] [--port-file P]
    repro submit  --port P [--kind sort] --n 5 --faults 3,5 --count 20
                  [--tenants a,b] [--stream [--stream-transport shm]]
                  [--drain] [--stats]

``sort`` runs the fault-tolerant sort on random keys, verifies the output
against numpy, and prints the plan plus a stage-level cost breakdown.
``trace`` runs the sort with the observability tracer attached and writes a
Chrome/Perfetto ``trace_event`` JSON file (load it at ui.perfetto.dev or
chrome://tracing), then prints per-step durations, a flame-style self-time
report, and the metrics registry.
``plan`` prints the partition/selection artifacts without sorting.
``diagnose`` runs the PMC pipeline against hidden faults.
``chaos`` runs the randomized fault-injection campaign (see
docs/ROBUSTNESS.md): seeded scenarios, differential check against numpy,
JSONL report, failures shrunk to minimal reproducers; ``--jobs`` fans
scenarios out over workers with identical results and ``--executor``
picks the tier (process pool, GIL-releasing threads, shared-memory
arenas, or auto by payload volume — see docs/PERFORMANCE.md).
``--kernels`` on ``sort``/``trace`` selects the execution backend for the
sorting inner loops (``numpy`` vectorized default, ``loop`` pure-Python
reference, ``compiled`` flat-array schedule programs; see
docs/PERFORMANCE.md) — outputs and counts are identical.
``serve`` runs the sorting-as-a-service job server (JSONL over TCP, or
stdin/stdout with ``--stdio``) until drained by SIGTERM/SIGINT or a client
``drain``; ``--shards N`` runs N backend server processes behind a
consistent-hash tenant router with plan-cache gossip (docs/SERVICE.md,
"Sharding & streaming").  ``submit`` is the matching client — it submits
``--count`` jobs round-robin across ``--tenants``, waits for every result
(``--stream`` consumes sorted arrays as checksummed frames instead of
inline results), and prints a latency/throughput summary.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.breakdown import phase_breakdown
from repro.core.ftsort import fault_tolerant_sort, plan_partition
from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.faults.diagnosis import diagnose_pmc, pmc_syndrome
from repro.faults.model import FaultKind, FaultSet
from repro.obs import Tracer, flame_report, step_report, write_chrome_trace

__all__ = ["main"]


def _parse_faults(text: str) -> list[int]:
    if not text:
        return []
    return [int(tok) for tok in text.replace(" ", "").split(",") if tok]


def _fault_list(text: str, n: int, max_faults: int | None = None) -> list[int]:
    """Parse and validate ``--faults`` for a Q_n run.

    Exits with a one-line message (no traceback) on malformed input:
    non-integer tokens, negative or out-of-range addresses, duplicates,
    or more faults than the paper's model tolerates.
    """
    if n < 1:
        raise SystemExit(f"repro: invalid --n: {n} (need a cube dimension >= 1)")
    tokens = [tok for tok in text.replace(" ", "").split(",") if tok]
    faults: list[int] = []
    for tok in tokens:
        try:
            addr = int(tok)
        except ValueError:
            raise SystemExit(
                f"repro: invalid --faults: {tok!r} is not an integer "
                f"(expected a comma-separated list like 3,5,16)"
            )
        if addr < 0:
            raise SystemExit(
                f"repro: invalid --faults: address {addr} is negative"
            )
        if addr >= (1 << n):
            raise SystemExit(
                f"repro: invalid --faults: address {addr} is out of range "
                f"for Q_{n} (valid addresses are 0..{(1 << n) - 1})"
            )
        if addr in faults:
            raise SystemExit(
                f"repro: invalid --faults: address {addr} listed twice"
            )
        faults.append(addr)
    if max_faults is not None and len(faults) > max_faults:
        raise SystemExit(
            f"repro: invalid --faults: {len(faults)} faults on Q_{n}, but the "
            f"paper's algorithm tolerates at most r = n - 1 = {max_faults} "
            f"(use a larger --n or fewer faults)"
        )
    return faults


def _cmd_sort(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    keys = rng.integers(0, 10**6, size=args.keys).astype(float)
    faults = _fault_list(args.faults, args.n, max_faults=args.n - 1)
    kind = FaultKind.TOTAL if args.kind == "total" else FaultKind.PARTIAL
    if args.spmd:
        res = spmd_fault_tolerant_sort(keys, args.n, faults, fault_kind=kind,
                                       kernels=args.kernels)
        ok = bool(np.array_equal(res.sorted_keys, np.sort(keys)))
        print(f"sorted {args.keys} keys on Q_{args.n} with faults {faults} "
              f"({kind.value}, message-level engine)")
        print(f"  verified : {ok}")
        print(f"  finish   : {res.finish_time / 1e3:.2f} simulated ms")
        print(f"  messages : {len(res.machine.engine.delivered)}")
        return 0 if ok else 1
    res = fault_tolerant_sort(keys, args.n, faults, fault_kind=kind,
                              kernels=args.kernels)
    ok = bool(np.array_equal(res.sorted_keys, np.sort(keys)))
    print(f"sorted {args.keys} keys on Q_{args.n} with faults {faults} ({kind.value})")
    print(f"  verified : {ok}")
    if res.selection is not None:
        print(f"  D_beta   : {res.selection.cut_dims} (Eq.-1 cost {res.selection.cost})")
        print(f"  dangling : {list(res.selection.dangling_processors)}")
    print(f"  workers  : {res.working_processors}")
    print(f"  elapsed  : {res.elapsed / 1e3:.2f} simulated ms")
    print("  breakdown:")
    for stage in phase_breakdown(res.machine).values():
        share = 100 * stage.duration / res.elapsed if res.elapsed else 0.0
        print(f"    {stage.stage:<34} {stage.duration / 1e3:10.2f} ms  ({share:4.1f}%)")
    return 0 if ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    keys = rng.integers(0, 10**6, size=args.keys).astype(float)
    faults = _fault_list(args.faults, args.n, max_faults=args.n - 1)
    kind = FaultKind.TOTAL if args.kind == "total" else FaultKind.PARTIAL
    obs = Tracer()
    if args.spmd:
        res = spmd_fault_tolerant_sort(keys, args.n, faults, fault_kind=kind, obs=obs,
                                       kernels=args.kernels)
        elapsed = res.finish_time
    else:
        res = fault_tolerant_sort(keys, args.n, faults, fault_kind=kind, obs=obs,
                                  kernels=args.kernels)
        elapsed = res.elapsed
    ok = bool(np.array_equal(res.sorted_keys, np.sort(keys)))
    events = write_chrome_trace(args.out, obs)
    engine = "message-level" if args.spmd else "phase"
    print(f"traced {args.keys} keys on Q_{args.n} with faults {faults} "
          f"({kind.value}, {engine} engine)")
    print(f"  verified : {ok}")
    print(f"  elapsed  : {elapsed / 1e3:.2f} simulated ms")
    print(f"  trace    : {events} events -> {args.out} "
          "(open at ui.perfetto.dev or chrome://tracing)")
    print()
    print(step_report(obs))
    print()
    print(flame_report(obs, top=args.top))
    print()
    print(obs.metrics.summary())
    return 0 if ok else 1


def _cmd_plan(args: argparse.Namespace) -> int:
    faults = _fault_list(args.faults, args.n, max_faults=args.n - 1)
    partition, selection = plan_partition(args.n, faults)
    if args.svg:
        from repro.experiments.cubeviz import partition_diagram
        from repro.experiments.svgplot import save_chart

        target = selection if partition.mincut else faults
        save_chart(args.svg, partition_diagram(
            args.n, target, title=f"Q_{args.n} partition, faults {faults}"
        ))
        print(f"diagram written to {args.svg}")
    print(f"Q_{args.n}, faults {faults}:")
    print(f"  mincut m = {partition.mincut}")
    print(f"  Psi      = {[list(d) for d in partition.cutting_set]}")
    if partition.mincut:
        print(f"  D_beta   = {selection.cut_dims} (cost {selection.cost})")
        print(f"  dangling w = {selection.dangling_w}")
        print(f"  dead per subcube = {list(selection.dead_of_subcube)}")
        print(f"  working processors = {selection.working_processors}")
    else:
        print("  (single-fault or fault-free: no partition needed)")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    faults = _fault_list(args.faults, args.n)
    hidden = FaultSet(args.n, faults)
    syndrome = pmc_syndrome(hidden, rng=args.seed)
    result = diagnose_pmc(args.n, syndrome)
    print(f"hidden faults    : {faults}")
    print(f"identified       : {list(result.identified)}")
    print(f"consistent       : {result.consistent}")
    print(f"diagnosis correct: {result.matches(hidden)}")
    return 0 if result.matches(hidden) else 1


def _fault_class_list(text: str) -> tuple[str, ...]:
    """Parse and validate ``--fault-class`` (comma list, or ``all``).

    Exits with a friendly message naming every registered class when a
    name is unknown — same contract as :func:`_fault_list`.
    """
    from repro.faults.universe import fault_class_names

    registered = fault_class_names()
    if text.strip() == "all":
        return registered
    names: list[str] = []
    for tok in text.replace(" ", "").split(","):
        if not tok:
            continue
        if tok not in registered:
            raise SystemExit(
                f"repro: invalid --fault-class: {tok!r} is not a registered "
                f"fault class (registered: {', '.join(registered)}, or 'all')"
            )
        if tok in names:
            raise SystemExit(
                f"repro: invalid --fault-class: {tok!r} listed twice"
            )
        names.append(tok)
    if not names:
        raise SystemExit(
            "repro: invalid --fault-class: need at least one class "
            f"(registered: {', '.join(registered)}, or 'all')"
        )
    return tuple(names)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_campaign
    from repro.plancache import PLAN_CACHE

    if args.plan_cache == "off":
        PLAN_CACHE.configure(enabled=False)
    backends = ("phase", "spmd") if args.backend == "both" else (args.backend,)
    fault_classes = _fault_class_list(args.fault_class)
    count = args.scenarios
    if count is None:
        count = 24 if args.fast else 200

    def progress(idx: int, outcome) -> None:
        if not outcome.passed:
            print(f"  scenario {idx}: FAIL ({outcome.error or 'mis-sorted'})")
        elif (idx + 1) % 50 == 0:
            print(f"  ... {idx + 1}/{count} scenarios")

    from repro.parallel import jobs_from_env, resolve_jobs

    jobs = resolve_jobs(args.jobs) if args.jobs is not None else jobs_from_env(1)
    print(f"chaos campaign: {count} scenarios, seed {args.seed}, "
          f"backends {'/'.join(backends)}, classes {'/'.join(fault_classes)}, "
          f"jobs {jobs}, executor {args.executor or 'auto'}")
    summary = run_campaign(
        count=count,
        seed=args.seed,
        out=args.out,
        backends=backends,
        shrink_failures=not args.no_shrink,
        progress=progress,
        jobs=jobs,
        fault_classes=fault_classes,
        executor=args.executor,
    )
    print(f"  passed            : {summary.passed}/{summary.scenarios}")
    for backend, per in sorted(summary.backends.items()):
        print(f"    {backend:<6}          : {per['passed']}/{per['scenarios']}")
    if len(fault_classes) > 1 or fault_classes != ("baseline",):
        for name, entry in summary.fault_classes.items():
            print(f"  class {name:<11} : {entry['passed']}/{entry['scenarios']} "
                  f"(oracle {entry['oracle']})")
            for key, point in sorted(entry["curve"].items()):
                param = entry["curve_param"] or "severity"
                extra = ""
                if "max_max_dislocation" in point:
                    extra = (f", dislocation mean "
                             f"{point['mean_max_dislocation']:.1f} "
                             f"max {point['max_max_dislocation']}")
                print(f"    {param}={key:<8}: "
                      f"{point['passed']}/{point['scenarios']}{extra}")
    print(f"  recoveries        : {summary.recoveries} "
          f"(in {summary.with_recovery} scenarios)")
    print(f"  retries           : {summary.retries}")
    print(f"  false suspicions  : {summary.false_suspicions} (all cleared)")
    print(f"  detect latency    : mean {summary.mean_detect_latency / 1e3:.2f} ms, "
          f"max {summary.max_detect_latency / 1e3:.2f} ms")
    print(f"  recovery overhead : mean {summary.mean_recovery_overhead:.2f}x, "
          f"max {summary.max_recovery_overhead:.2f}x")
    if args.out:
        print(f"  report            : {args.out}")
    if args.plan_cache == "stats":
        print(PLAN_CACHE.summary())
        if jobs > 1:
            print("  (counters are per-process; workers' caches are not shown)")
    if summary.failures:
        print(f"  FAILURES: {len(summary.failures)} "
              "(minimal reproducers in the report)")
    return 0 if summary.all_passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    def ready(service, port) -> None:
        if port is None:
            print("repro service: speaking JSONL on stdio", file=sys.stderr,
                  flush=True)
            return
        print(f"repro service: listening on {args.host}:{port}",
              file=sys.stderr, flush=True)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{port}\n")

    if args.shards < 1:
        raise SystemExit("repro: --shards must be >= 1")
    if args.shards > 1:
        if args.stdio:
            raise SystemExit("repro: --shards requires TCP (drop --stdio)")
        from repro.service import serve_sharded

        router = asyncio.run(serve_sharded(
            shards=args.shards,
            host=args.host,
            port=args.port,
            ready=ready,
            shards_file=args.shards_file,
            jobs=args.jobs,
            executor=args.executor,
            batch_max=args.batch_max,
            max_queued=args.max_queued,
            max_queued_per_tenant=args.max_queued_per_tenant,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            tenant_max_inflight=args.tenant_max_inflight,
        ))
        m = router.metrics
        print(f"repro service: drained {args.shards} shard(s) "
              f"(routed={int(m.value('router.submitted'))} "
              f"completed={int(m.value('router.completed'))} "
              f"failovers={int(m.value('router.failovers'))})",
              file=sys.stderr, flush=True)
        return 0

    from repro.parallel import jobs_from_env, resolve_jobs
    from repro.service import serve as serve_service

    jobs = resolve_jobs(args.jobs) if args.jobs is not None else jobs_from_env(1)
    service = asyncio.run(serve_service(
        host=args.host,
        port=args.port,
        stdio=args.stdio,
        ready=ready,
        jobs=jobs,
        executor=args.executor,
        max_queued=args.max_queued,
        max_queued_per_tenant=args.max_queued_per_tenant,
        batch_max=args.batch_max,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        max_inflight_per_tenant=args.tenant_max_inflight,
        obs_out=args.obs_out,
    ))
    stats = service.stats()
    print(f"repro service: drained (completed={stats['completed']} "
          f"failed={stats['failed']} rejected={stats['rejected']})",
          file=sys.stderr, flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service import ServiceClient

    tenants = [t for t in args.tenants.replace(" ", "").split(",") if t]
    if not tenants:
        raise SystemExit("repro: invalid --tenants: need at least one name")
    job: dict = {"kind": args.kind}
    if args.kind in ("sort", "plan"):
        job["n"] = args.n
        job["faults"] = _fault_list(args.faults, args.n, max_faults=args.n - 1)
    if args.kind == "sort":
        job["keys"] = args.keys
        job["backend"] = args.backend
        if args.kernels:
            job["kernels"] = args.kernels
    if args.kind == "chaos" and args.fault_class != "baseline":
        classes = _fault_class_list(args.fault_class)
        if len(classes) != 1:
            raise SystemExit(
                "repro: invalid --fault-class: submit takes exactly one class "
                "per job stream (run one submit per class)")
        job["fault_class"] = classes[0]
    if args.stream:
        if args.kind != "sort":
            raise SystemExit("repro: --stream applies to sort jobs only")
        job["stream"] = True

    async def consume_stream(client, job_id: str) -> dict:
        """Drain one framed result; returns a result-shaped summary."""
        from repro.service import StreamError

        frames = count = 0
        in_order = True
        last = None
        try:
            async for chunk in client.iter_result(job_id):
                frames += 1
                count += int(chunk.size)
                if chunk.size:
                    if last is not None and chunk[0] < last:
                        in_order = False
                    if not bool((chunk[1:] >= chunk[:-1]).all()):
                        in_order = False
                    last = chunk[-1]
        except StreamError as exc:
            return {"ok": False, "job_id": job_id,
                    "result": {"error": str(exc), "streamed": {
                        "frames": frames, "keys": count, "in_order": False}}}
        summary = dict(client.stream_summary(job_id) or {})
        summary.setdefault("result", {})
        summary["result"] = dict(summary["result"])
        summary["result"]["streamed"] = {
            "frames": frames, "keys": count, "in_order": in_order}
        summary["ok"] = bool(summary.get("ok")) and in_order
        return summary

    async def run() -> int:
        client = await ServiceClient.connect(args.host, args.port)
        try:
            acks, rejected = [], []
            for i in range(args.count):
                payload = dict(job)
                payload["seed"] = args.seed + i
                if args.kind == "chaos":
                    payload["index"] = i
                ack = await client.submit(
                    payload, tenant=tenants[i % len(tenants)], retry=True,
                    transport=args.stream_transport if args.stream else None)
                (acks if ack.get("ok") else rejected).append(ack)
            if args.stream:
                results = [await consume_stream(client, a["job_id"])
                           for a in acks]
            else:
                results = [await client.result(a["job_id"]) for a in acks]
            if args.stats:
                print(json.dumps(await client.stats(), indent=2, sort_keys=True))
            if args.drain:
                await client.drain()
        finally:
            await client.close()
        ok = sum(1 for r in results if r["ok"])
        lat = sorted(r.get("latency_ms", 0.0) for r in results)
        print(f"submitted {args.count} {args.kind} job(s) across "
              f"{len(tenants)} tenant(s): {ok} ok, "
              f"{len(results) - ok} failed, {len(rejected)} rejected")
        if lat:
            print(f"  latency  : p50 {lat[len(lat) // 2]:.1f} ms, "
                  f"max {lat[-1]:.1f} ms")
        if args.stream and results:
            frames = sum(r["result"]["streamed"]["frames"] for r in results)
            keys = sum(r["result"]["streamed"]["keys"] for r in results)
            print(f"  streamed : {frames} frame(s), {keys} key(s), "
                  f"transport={args.stream_transport}, "
                  f"in_order={all(r['result']['streamed']['in_order'] for r in results)}")
        for r in results if args.verbose else ():
            print(f"  {r.get('job_id')} [{r.get('tenant')}] ok={r.get('ok')} "
                  f"run={r.get('run_ms', 0.0):.1f}ms "
                  f"batched={r.get('batched')} -> {r.get('result')}")
        return 0 if ok == args.count else 1

    return asyncio.run(run())


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sort = sub.add_parser("sort", help="run the fault-tolerant sort")
    p_sort.add_argument("--n", type=int, required=True)
    p_sort.add_argument("--faults", type=str, default="")
    p_sort.add_argument("--keys", type=int, default=10_000)
    p_sort.add_argument("--kind", choices=("partial", "total"), default="partial")
    p_sort.add_argument("--seed", type=int, default=0)
    p_sort.add_argument("--spmd", action="store_true",
                        help="run on the discrete-event message-passing engine")
    p_sort.add_argument("--kernels", choices=("numpy", "loop", "compiled"), default=None,
                        help="kernel execution backend (default: numpy, or "
                             "$REPRO_KERNELS)")
    p_sort.set_defaults(func=_cmd_sort)

    p_trace = sub.add_parser(
        "trace", help="run the sort with tracing, write Perfetto JSON"
    )
    p_trace.add_argument("--n", type=int, required=True)
    p_trace.add_argument("--faults", type=str, default="")
    p_trace.add_argument("--keys", type=int, default=10_000)
    p_trace.add_argument("--kind", choices=("partial", "total"), default="partial")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", type=str, default="trace.json",
                         help="Chrome trace_event JSON output path")
    p_trace.add_argument("--top", type=int, default=10,
                         help="rows in the flame-style self-time report")
    p_trace.add_argument("--spmd", action="store_true",
                         help="trace the discrete-event message-passing engine")
    p_trace.add_argument("--kernels", choices=("numpy", "loop", "compiled"), default=None,
                         help="kernel execution backend (default: numpy, or "
                              "$REPRO_KERNELS)")
    p_trace.set_defaults(func=_cmd_trace)

    p_plan = sub.add_parser("plan", help="partition + selection only")
    p_plan.add_argument("--n", type=int, required=True)
    p_plan.add_argument("--faults", type=str, required=True)
    p_plan.add_argument("--svg", type=str, default=None,
                        help="write a partition diagram to this path")
    p_plan.set_defaults(func=_cmd_plan)

    p_diag = sub.add_parser("diagnose", help="PMC diagnosis round-trip")
    p_diag.add_argument("--n", type=int, required=True)
    p_diag.add_argument("--faults", type=str, required=True)
    p_diag.add_argument("--seed", type=int, default=0)
    p_diag.set_defaults(func=_cmd_diagnose)

    p_chaos = sub.add_parser(
        "chaos", help="randomized fault-injection campaign"
    )
    p_chaos.add_argument("--scenarios", type=int, default=None,
                         help="scenario count (default 200; 24 with --fast)")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--out", type=str, default="chaos_report.jsonl",
                         help="JSONL report path")
    p_chaos.add_argument("--backend", choices=("both", "phase", "spmd"),
                         default="both")
    from repro.faults.universe import fault_class_summaries

    class_help = "; ".join(
        f"{name}: {summary}" for name, summary in fault_class_summaries().items()
    )
    p_chaos.add_argument("--fault-class", type=str, default="baseline",
                         metavar="CLASS[,CLASS...]",
                         help="fault universes to draw scenarios from "
                              "(comma list or 'all'). Registered classes -- "
                              + class_help)
    p_chaos.add_argument("--fast", action="store_true",
                         help="short smoke campaign (CI)")
    p_chaos.add_argument("--no-shrink", action="store_true",
                         help="skip shrinking failures to minimal reproducers")
    p_chaos.add_argument("--jobs", type=str, default=None,
                         help="workers for scenarios: N, 'auto'/0 = all usable "
                              "CPUs (default: $REPRO_JOBS, else 1)")
    p_chaos.add_argument("--executor", type=str, default=None,
                         choices=("serial", "process", "thread", "shm", "auto"),
                         help="executor tier (default: $REPRO_EXECUTOR, else "
                              "auto; see docs/PERFORMANCE.md)")
    p_chaos.add_argument("--plan-cache", choices=("on", "off", "stats"),
                         default="on",
                         help="plan cache: on (default), off (cold planning "
                              "every scenario), stats (print hit/miss counters "
                              "after the campaign)")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve", help="run the sorting-as-a-service job server"
    )
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = pick a free one)")
    p_serve.add_argument("--stdio", action="store_true",
                         help="speak the protocol on stdin/stdout instead of TCP")
    p_serve.add_argument("--jobs", type=str, default=None,
                         help="executor width: 1 = in-process (shared plan "
                              "cache), >1 = warm worker pool, 'auto'/0 = all "
                              "usable CPUs (default: $REPRO_JOBS, else 1)")
    p_serve.add_argument("--executor", type=str, default=None,
                         choices=("process", "thread", "shm", "auto"),
                         help="warm-pool tier for jobs > 1 (default: "
                              "$REPRO_EXECUTOR, else auto)")
    p_serve.add_argument("--max-queued", type=int, default=1024,
                         help="global admission bound")
    p_serve.add_argument("--max-queued-per-tenant", type=int, default=512,
                         help="per-tenant admission bound")
    p_serve.add_argument("--batch-max", type=int, default=8,
                         help="max compatible jobs fused per dispatch")
    p_serve.add_argument("--obs-out", type=str, default=None,
                         help="write a metrics/plan-cache JSON snapshot on drain")
    p_serve.add_argument("--port-file", type=str, default=None,
                         help="write the bound TCP port to this file (CI)")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="run N backend shard processes behind a "
                              "consistent-hash router (default: 1 = plain "
                              "single server; requires TCP)")
    p_serve.add_argument("--shards-file", type=str, default=None,
                         help="write the shard topology (ids/pids/ports) as "
                              "JSON once up (CI)")
    p_serve.add_argument("--tenant-rate", type=float, default=None,
                         help="per-tenant admission rate in jobs/sec "
                              "(default: unlimited)")
    p_serve.add_argument("--tenant-burst", type=int, default=None,
                         help="token-bucket burst depth for --tenant-rate "
                              "(default: ceil(rate))")
    p_serve.add_argument("--tenant-max-inflight", type=int, default=None,
                         help="max accepted-but-undelivered jobs per tenant "
                              "(default: unlimited)")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit jobs to a running repro service"
    )
    p_submit.add_argument("--host", type=str, default="127.0.0.1")
    p_submit.add_argument("--port", type=int, required=True)
    p_submit.add_argument("--kind", choices=("sort", "plan", "chaos"),
                          default="sort")
    p_submit.add_argument("--n", type=int, default=5)
    p_submit.add_argument("--faults", type=str, default="")
    p_submit.add_argument("--keys", type=int, default=1024)
    p_submit.add_argument("--seed", type=int, default=0,
                          help="base seed (job i uses seed + i)")
    p_submit.add_argument("--backend", choices=("phase", "spmd"),
                          default="phase")
    p_submit.add_argument("--kernels", choices=("numpy", "loop", "compiled"), default=None)
    p_submit.add_argument("--fault-class", type=str, default="baseline",
                          help="fault universe for chaos jobs (one registered "
                               "class; see 'repro chaos --help')")
    p_submit.add_argument("--count", type=int, default=1,
                          help="number of jobs to submit")
    p_submit.add_argument("--tenants", type=str, default="default",
                          help="comma-separated tenant names (round-robin)")
    p_submit.add_argument("--stream", action="store_true",
                          help="stream sorted key arrays back as checksummed "
                               "frames (sort jobs only)")
    p_submit.add_argument("--stream-transport", choices=("binary", "shm"),
                          default="binary",
                          help="frame transport for --stream: length-prefixed "
                               "binary chunks, or zero-copy shm descriptors "
                               "(same host only)")
    p_submit.add_argument("--drain", action="store_true",
                          help="drain the server after the results arrive")
    p_submit.add_argument("--stats", action="store_true",
                          help="print the server stats payload as JSON")
    p_submit.add_argument("--verbose", action="store_true",
                          help="print every job result")
    p_submit.set_defaults(func=_cmd_submit)

    for name in ("table1", "table2", "figure7"):
        p = sub.add_parser(name, help=f"regenerate {name} (see repro-{name})")
        p.set_defaults(passthrough=name)

    args, rest = parser.parse_known_args(argv)
    if hasattr(args, "passthrough"):
        module = __import__(f"repro.experiments.{args.passthrough}",
                            fromlist=["main"])
        return module.main(rest)
    if rest:
        parser.error(f"unrecognized arguments: {rest}")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
