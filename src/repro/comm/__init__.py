"""Hypercube collective communication substrates.

Binomial-tree collectives over the SPMD layer — the machinery a host uses
to distribute keys to working processors (paper Step 2) and collect the
sorted result.  Written as generator helpers to be ``yield from``-ed inside
SPMD programs, in the spirit of mpi4py collectives.
"""

from repro.comm.collectives import (
    allreduce,
    barrier,
    broadcast,
    gather,
    reduce,
    scatter,
)

__all__ = ["allreduce", "barrier", "broadcast", "gather", "reduce", "scatter"]
