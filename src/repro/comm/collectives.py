"""Binomial-tree collectives on the hypercube (SPMD generator helpers).

All collectives share one spanning binomial tree rooted at ``root``: with
relative rank ``rho = rank XOR root``, a node's parent is ``rho`` with its
lowest set bit cleared, and its children are ``rho | 2**d`` for every ``d``
below that bit's position (all of them, for the root).  Every tree edge is
a hypercube link, so each hop is a neighbor transfer — the optimal
``n``-step broadcast on ``Q_n``.

Usage inside an SPMD program::

    def program(proc):
        value = yield from broadcast(proc, n, root=0, payload=big, size=64)
        total = yield from reduce(proc, n, root=0, value=proc.rank, op=operator.add)

Each helper returns its result via ``return`` (captured by ``yield from``).
On a faulty cube the underlying router decides how tree edges are realized;
for *partial* faults every edge stays a single hop.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Generator

from repro.obs.spans import PID_SIM, TID_RANK_BASE
from repro.simulator.spmd import Proc

__all__ = ["allreduce", "barrier", "broadcast", "gather", "reduce", "scatter"]

_TAG_BCAST = 101
_TAG_GATHER = 102
_TAG_SCATTER = 103
_TAG_REDUCE = 104
_TAG_BARRIER_UP = 105
_TAG_BARRIER_DOWN = 106


def _lsb_index(x: int, n: int) -> int:
    """Index of the lowest set bit; ``n`` for x == 0 (the root)."""
    if x == 0:
        return n
    return (x & -x).bit_length() - 1


def _parent(rho: int) -> int:
    return rho & (rho - 1)


def _record(proc: Proc, name: str, started_at: float) -> None:
    """Span + call counter for one finished collective (tracing enabled only)."""
    if not proc.obs.enabled:
        return
    proc.obs.complete(
        name,
        ts=started_at,
        dur=max(proc.clock - started_at, 0.0),
        cat="collective",
        pid=PID_SIM,
        tid=TID_RANK_BASE + proc.rank,
        args={"rank": proc.rank},
    )
    proc.obs.metrics.inc(f"collective.{name}.calls")


def _children(rho: int, n: int) -> list[int]:
    return [rho | (1 << d) for d in range(_lsb_index(rho, n)) if not (rho >> d) & 1]


def broadcast(
    proc: Proc, n: int, root: int = 0, payload: object = None, size: int = 1, tag: int = _TAG_BCAST
) -> Generator:
    """One-to-all broadcast; every rank returns the root's payload."""
    rho = proc.rank ^ root
    started_at = proc.clock
    value = payload
    if rho != 0:
        value = yield proc.recv(src=_parent(rho) ^ root, tag=tag)
    for child in reversed(_children(rho, n)):
        yield proc.send(child ^ root, payload=value, size=size, tag=tag)
    _record(proc, "broadcast", started_at)
    return value


def gather(
    proc: Proc,
    n: int,
    root: int = 0,
    value: object = None,
    size: int = 1,
    tag: int = _TAG_GATHER,
) -> Generator:
    """All-to-one gather; the root returns ``{rank: value}``, others ``None``.

    Interior nodes aggregate their subtree before forwarding (message sizes
    grow with subtree size, as on a real machine).
    """
    rho = proc.rank ^ root
    started_at = proc.clock
    collected: dict[int, object] = {proc.rank: value}
    total_size = size
    for child in _children(rho, n):
        sub = yield proc.recv(src=child ^ root, tag=tag)
        collected.update(sub)
        total_size += size * len(sub)
    if rho != 0:
        yield proc.send(_parent(rho) ^ root, payload=collected, size=total_size, tag=tag)
        _record(proc, "gather", started_at)
        return None
    _record(proc, "gather", started_at)
    return collected


def scatter(
    proc: Proc,
    n: int,
    root: int = 0,
    chunks: dict[int, object] | None = None,
    size: int = 1,
    tag: int = _TAG_SCATTER,
) -> Generator:
    """One-to-all personalized scatter; every rank returns its own chunk.

    ``chunks`` (root only) maps rank to payload; ranks absent from it
    receive ``None``.  Interior nodes forward each child its whole
    subtree's chunks (sizes shrink down the tree).
    """
    rho = proc.rank ^ root
    started_at = proc.clock
    if rho == 0:
        mine: dict[int, object] = dict(chunks or {})
    else:
        mine = yield proc.recv(src=_parent(rho) ^ root, tag=tag)
    for child in _children(rho, n):
        crho = child
        # The child's subtree: ranks whose relative address extends `crho`
        # below its lowest set bit.
        span = (1 << _lsb_index(crho, n)) - 1
        sub = {
            rank: payload
            for rank, payload in mine.items()
            if ((rank ^ root) & ~span) == crho
        }
        for rank in sub:
            mine.pop(rank)
        yield proc.send(child ^ root, payload=sub, size=max(size * len(sub), 1), tag=tag)
    _record(proc, "scatter", started_at)
    return mine.get(proc.rank)


def reduce(
    proc: Proc,
    n: int,
    root: int = 0,
    value: object = None,
    op: Callable = operator.add,
    size: int = 1,
    tag: int = _TAG_REDUCE,
) -> Generator:
    """All-to-one reduction; the root returns the folded value, others ``None``."""
    rho = proc.rank ^ root
    started_at = proc.clock
    acc = value
    for child in _children(rho, n):
        sub = yield proc.recv(src=child ^ root, tag=tag)
        acc = op(acc, sub)
    if rho != 0:
        yield proc.send(_parent(rho) ^ root, payload=acc, size=size, tag=tag)
        _record(proc, "reduce", started_at)
        return None
    _record(proc, "reduce", started_at)
    return acc


def allreduce(
    proc: Proc,
    n: int,
    value: object = None,
    op: Callable = operator.add,
    size: int = 1,
) -> Generator:
    """Reduce to rank 0 then broadcast; every rank returns the folded value."""
    started_at = proc.clock
    acc = yield from reduce(proc, n, root=0, value=value, op=op, size=size)
    result = yield from broadcast(proc, n, root=0, payload=acc, size=size)
    _record(proc, "allreduce", started_at)
    return result


def barrier(proc: Proc, n: int, root: int = 0) -> Generator:
    """Tree barrier: empty gather up, empty broadcast down."""
    rho = proc.rank ^ root
    started_at = proc.clock
    for child in _children(rho, n):
        yield proc.recv(src=child ^ root, tag=_TAG_BARRIER_UP)
    if rho != 0:
        yield proc.send(_parent(rho) ^ root, payload=None, size=0, tag=_TAG_BARRIER_UP)
        yield proc.recv(src=_parent(rho) ^ root, tag=_TAG_BARRIER_DOWN)
    for child in _children(rho, n):
        yield proc.send(child ^ root, payload=None, size=0, tag=_TAG_BARRIER_DOWN)
    _record(proc, "barrier", started_at)
    return None
