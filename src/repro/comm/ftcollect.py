"""Fault-tolerant tree collectives.

The binomial-tree collectives of :mod:`repro.comm.collectives` assume every
tree node runs a program — false on a faulty cube, where faulty processors
run nothing (and under total faults cannot even relay).  These collectives
build a BFS spanning tree of the *fault-free* subgraph instead (rooted at
the host), so distribution and collection work under any fault
configuration the paper's model admits.

The tree is computed centrally (the host knows the fault map — the
off-line diagnosis assumption) and shipped to each program as a plan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.faults.model import FaultSet
from repro.simulator.spmd import Proc

__all__ = ["SpanningTree", "fault_free_bfs_tree", "tree_scatter", "tree_gather"]

_TAG_SCATTER = 201
_TAG_GATHER = 202


@dataclass(frozen=True)
class SpanningTree:
    """A rooted spanning tree of the fault-free processors.

    Attributes:
        root: the host processor.
        parent: mapping rank -> parent rank (absent for the root).
        children: mapping rank -> tuple of child ranks.
        subtree: mapping rank -> frozenset of ranks in its subtree
            (including itself); used to split scatter bundles.
    """

    root: int
    parent: dict[int, int]
    children: dict[int, tuple[int, ...]]
    subtree: dict[int, frozenset[int]]

    def members(self) -> frozenset[int]:
        """All ranks reachable in the tree."""
        return self.subtree[self.root]


def fault_free_bfs_tree(faults: FaultSet, root: int) -> SpanningTree:
    """BFS spanning tree of the fault-free subgraph, rooted at ``root``.

    Edges avoid faulty links and (under the total model) faulty relay
    nodes.  With ``r <= n - 1`` total faults the fault-free subgraph is
    connected, so the tree spans every normal processor.
    """
    if faults.is_faulty(root):
        raise ValueError(f"host {root} is faulty")
    cube = faults.cube
    parent: dict[int, int] = {}
    order: list[int] = [root]
    seen = {root}
    queue: deque[int] = deque([root])
    while queue:
        cur = queue.popleft()
        for nb in cube.neighbors(cur):
            if nb in seen or faults.is_faulty(nb):
                continue
            if faults.is_link_faulty(cur, nb):
                continue
            seen.add(nb)
            parent[nb] = cur
            order.append(nb)
            queue.append(nb)
    children: dict[int, list[int]] = {rank: [] for rank in order}
    for child, par in parent.items():
        children[par].append(child)
    subtree: dict[int, frozenset[int]] = {}
    for rank in reversed(order):
        acc = {rank}
        for ch in children[rank]:
            acc |= subtree[ch]
        subtree[rank] = frozenset(acc)
    return SpanningTree(
        root=root,
        parent=parent,
        children={rank: tuple(ch) for rank, ch in children.items()},
        subtree=subtree,
    )


def tree_scatter(proc: Proc, tree: SpanningTree, chunks: dict[int, object] | None,
                 chunk_size: int = 1, tag: int = _TAG_SCATTER):
    """Personalized scatter down a spanning tree (generator helper).

    ``chunks`` (root only) maps rank -> payload.  Every rank returns its
    own chunk (``None`` when absent).  Interior nodes relay each child its
    subtree's bundle; message sizes are ``chunk_size`` per carried chunk.
    """
    rank = proc.rank
    if rank == tree.root:
        bundle: dict[int, object] = dict(chunks or {})
    else:
        bundle = yield proc.recv(src=tree.parent[rank], tag=tag)
    for child in tree.children.get(rank, ()):
        sub = {r: bundle[r] for r in tree.subtree[child] if r in bundle}
        for r in sub:
            del bundle[r]
        yield proc.send(child, payload=sub, size=max(chunk_size * len(sub), 1), tag=tag)
    return bundle.get(rank)


def tree_gather(proc: Proc, tree: SpanningTree, value: object,
                chunk_size: int = 1, tag: int = _TAG_GATHER):
    """All-to-root gather up a spanning tree (generator helper).

    The root returns ``{rank: value}`` over all tree members; other ranks
    return ``None``.
    """
    rank = proc.rank
    collected: dict[int, object] = {rank: value}
    for child in tree.children.get(rank, ()):
        sub = yield proc.recv(src=child, tag=tag)
        collected.update(sub)
    if rank != tree.root:
        yield proc.send(
            tree.parent[rank],
            payload=collected,
            size=max(chunk_size * len(collected), 1),
            tag=tag,
        )
        return None
    return collected
