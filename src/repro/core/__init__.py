"""The paper's primary contribution.

* :mod:`repro.core.partition` — Section 2.2: the optimal partition
  algorithm (cutting-dimension tree DFS + checking tree) producing the
  ``mincut`` value and the cutting set ``Ψ``.
* :mod:`repro.core.selection` — Section 3: the Eq.-(1) min-max heuristic
  choosing ``D_β`` from ``Ψ`` and the dangling-processor vote.
* :mod:`repro.core.single_fault` — Section 2.1: bitonic sort on a hypercube
  with one faulty processor (XOR reindexing + dead-node skip).
* :mod:`repro.core.ftsort` — Section 3: the full fault-tolerant sorting
  algorithm (steps 1-8) tolerating up to ``n - 1`` faults.
* :mod:`repro.core.cost` — the paper's closed-form worst-case time ``T``.
"""

from repro.core.partition import (
    CheckingTree,
    PartitionResult,
    find_min_cuts,
    is_single_fault_partition,
    max_dangling_bound,
)
from repro.core.selection import (
    SelectionResult,
    choose_dangling_w,
    extra_comm_cost,
    select_cut_sequence,
)
from repro.core.single_fault import single_fault_bitonic_sort, fault_free_bitonic_sort
from repro.core.ftsort import FtSortResult, fault_tolerant_sort, plan_partition
from repro.core.schedule import (
    SortSchedule,
    build_ft_schedule,
    build_plain_schedule,
)
from repro.core.spmd_sort import (
    SpmdSortResult,
    run_schedule_spmd,
    spmd_fault_tolerant_sort,
)
from repro.core.partition_fast import mincut_batch, mincut_distribution_fast
from repro.core.partition_trace import render_cutting_tree, trace_cutting_tree
from repro.core.recovery import RecoveryReport, sort_with_midrun_fault
from repro.core.cost import (
    paper_worst_case_time,
    partition_work_bound,
    utilization_proposed,
    utilization_max_subcube,
)

__all__ = [
    "CheckingTree",
    "FtSortResult",
    "PartitionResult",
    "RecoveryReport",
    "SelectionResult",
    "SortSchedule",
    "SpmdSortResult",
    "mincut_batch",
    "mincut_distribution_fast",
    "render_cutting_tree",
    "sort_with_midrun_fault",
    "trace_cutting_tree",
    "build_ft_schedule",
    "build_plain_schedule",
    "run_schedule_spmd",
    "spmd_fault_tolerant_sort",
    "choose_dangling_w",
    "extra_comm_cost",
    "fault_free_bitonic_sort",
    "fault_tolerant_sort",
    "find_min_cuts",
    "is_single_fault_partition",
    "max_dangling_bound",
    "paper_worst_case_time",
    "partition_work_bound",
    "plan_partition",
    "select_cut_sequence",
    "single_fault_bitonic_sort",
    "utilization_max_subcube",
    "utilization_proposed",
]
