"""Key distribution and collection helpers shared by the sorting drivers.

The paper distributes ``M`` unsorted keys uniformly over the ``N'`` working
processors, filling with dummy ``+inf`` keys when ``M`` is not a multiple of
``N'`` (Section 2.1; its Fig.-6 walkthrough rounds 47 keys up to 48).  The
dummies are real keys to the oblivious network — they travel and get
compared — and, being maximal, finish at the tail of the sorted order where
:func:`strip_padding` drops them.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injectors import active_memory

__all__ = ["pad_and_chunk", "strip_padding", "PAD_KEY"]

PAD_KEY = np.inf
"""The dummy key (the paper's ``infinity``)."""


def pad_and_chunk(keys: np.ndarray | list, workers: int) -> tuple[list[np.ndarray], int]:
    """Split ``keys`` into ``workers`` equal chunks, padding with ``+inf``.

    Returns ``(chunks, block_size)`` where every chunk is an unsorted
    1-D float array of length ``block_size = ceil(M / workers)`` (or 0 when
    there are no keys).  Raises if ``workers <= 0``.
    """
    if workers <= 0:
        raise ValueError(f"need at least one working processor, got {workers}")
    arr = np.asarray(keys, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {arr.shape}")
    if np.isinf(arr).any():
        raise ValueError("keys must be finite (+inf is reserved for padding)")
    m = int(arr.size)
    if m == 0:
        return [np.empty(0, dtype=float) for _ in range(workers)], 0
    block = -(-m // workers)  # ceil division
    padded = np.full(workers * block, PAD_KEY, dtype=float)
    padded[:m] = arr
    inj = active_memory()
    if inj is not None:
        # Memory fault universe: corrupt cells at the single point where
        # every driver materializes its working store (only the real keys;
        # pads are control structure, not data).
        inj.corrupt(padded, m)
    return [padded[i * block : (i + 1) * block] for i in range(workers)], block


def strip_padding(sorted_keys: np.ndarray, original_count: int) -> np.ndarray:
    """Drop the trailing dummy keys from an ascending sorted array."""
    arr = np.asarray(sorted_keys)
    if arr.size < original_count:
        raise ValueError(
            f"sorted output has {arr.size} keys but {original_count} were supplied"
        )
    tail = arr[original_count:]
    if tail.size and not np.isinf(tail).all():
        raise ValueError("non-padding keys found beyond the original count; sort is broken")
    return arr[:original_count]
