"""The paper's closed-form cost model and utilization formulas.

Section 3 derives the worst-case execution time ``T`` of the fault-tolerant
sort in terms of ``t_c`` (compare) and ``t_s/r`` (element transfer), with
``m`` cutting dimensions, ``s = n - m`` dimensional subcubes, and
``N' = 2**n - 2**m`` working processors:

.. math::

    T = [(\\lceil M/N' \\rceil - 1)\\log\\lceil M/N' \\rceil + 1] t_c
        + \\frac{s(s+3)}{2}\\Big[\\lceil M/N' \\rceil t_{s/r}
            + (\\lceil 3M/2N' \\rceil - 1) t_c\\Big]
        + \\frac{m(m+3)}{2}\\Big\\{(s+1)\\lceil M/N' \\rceil t_{s/r}
            + (\\lceil M/2N' \\rceil - 1) t_c
            + (\\lceil M/N' \\rceil - 1) t_c
            + \\frac{s(s+3)}{2}\\big[\\lceil M/N' \\rceil t_{s/r}
            + (\\lceil 3M/2N' \\rceil - 1) t_c\\big]\\Big\\}

(the paper's displayed equation; its prose says the bitonic phases run
``s(s+1)/2`` loops — the displayed ``s(s+3)/2`` is the upper bound actually
printed, and we implement what is printed).  The partition algorithm adds
``O(r N)`` which vanishes for ``M >> N``.

Section 4's Table 2 compares processor utilization: the proposed scheme
runs ``2**n - 2**m`` of the ``2**n - r`` normal processors; the maximal
fault-free subcube method runs only ``2**(n-t)`` of them.
"""

from __future__ import annotations

import math

from repro.cube.address import validate_dimension
from repro.simulator.params import MachineParams

__all__ = [
    "paper_worst_case_time",
    "partition_work_bound",
    "utilization_proposed",
    "utilization_max_subcube",
]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def paper_worst_case_time(
    m_keys: int,
    n: int,
    mincut: int,
    params: MachineParams | None = None,
) -> float:
    """Evaluate the paper's closed-form worst-case ``T``.

    Args:
        m_keys: number of keys ``M``.
        n: hypercube dimension.
        mincut: number of cutting dimensions ``m`` (0 for the fault-free or
            single-fault cases, where only the heapsort and one full
            bitonic sort remain).
        params: cost constants; startup is not part of the paper's model
            and is ignored here.

    Returns the modeled time in the same units as ``params``.
    """
    validate_dimension(n)
    if not 0 <= mincut <= n:
        raise ValueError(f"mincut {mincut} out of range for Q_{n}")
    if m_keys < 0:
        raise ValueError(f"key count must be non-negative, got {m_keys}")
    p = params if params is not None else MachineParams.ncube7()
    t_c, t_sr = p.t_compare, p.t_element
    m = mincut
    s = n - m
    n_prime = (1 << n) - (1 << m) if m > 0 else (1 << n) - (1 if m == 0 else 0)
    # For m = 0 the paper's single-fault case has N' = 2**n - 1; the
    # fault-free case N' = 2**n.  We use 2**n - 1 conservatively only when
    # a fault exists, which the caller encodes via mincut = 0 on a faulty
    # cube; the difference is a single block slot and does not affect the
    # asymptotics.  Here we take N' = 2**n for m = 0.
    if m == 0:
        n_prime = 1 << n
    if m_keys == 0 or n_prime == 0:
        return 0.0
    k = _ceil_div(m_keys, n_prime)
    heap = ((k - 1) * math.ceil(math.log2(k)) + 1) * t_c if k > 1 else t_c
    bitonic_loop = k * t_sr + (_ceil_div(3 * m_keys, 2 * n_prime) - 1) * t_c
    intra = (s * (s + 3) / 2) * bitonic_loop
    inter_loop = (
        (s + 1) * k * t_sr
        + (_ceil_div(m_keys, 2 * n_prime) - 1) * t_c
        + (k - 1) * t_c
        + (s * (s + 3) / 2) * bitonic_loop
    )
    inter = (m * (m + 3) / 2) * inter_loop
    return float(heap + intra + inter)


def partition_work_bound(n: int, r: int) -> int:
    """The partition algorithm's ``O(r N)`` work bound, evaluated exactly.

    The cutting-dimension tree has at most ``2**n - 1`` nodes and each
    visit scans the ``r`` fault addresses once.
    """
    validate_dimension(n)
    if r < 0:
        raise ValueError(f"fault count must be non-negative, got {r}")
    return r * ((1 << n) - 1)


def utilization_proposed(n: int, r: int, mincut: int) -> float:
    """Processor utilization of the proposed scheme, as a fraction.

    ``(2**n - 2**mincut) / (2**n - r)`` for ``mincut >= 1``; with no
    partition (``r <= 1``, ``mincut = 0``) every normal processor works.
    """
    validate_dimension(n)
    total = 1 << n
    normal = total - r
    if normal <= 0:
        raise ValueError(f"no normal processors left (n={n}, r={r})")
    if mincut == 0:
        return 1.0
    working = total - (1 << mincut)
    return working / normal


def utilization_max_subcube(n: int, r: int, subcube_dim: int) -> float:
    """Utilization of the maximal fault-free subcube method, as a fraction.

    Only the ``2**subcube_dim`` processors of the chosen fault-free subcube
    run; the other ``2**n - 2**subcube_dim - r`` normal processors dangle.
    """
    validate_dimension(n)
    if not 0 <= subcube_dim <= n:
        raise ValueError(f"subcube dimension {subcube_dim} out of range for Q_{n}")
    total = 1 << n
    normal = total - r
    if normal <= 0:
        raise ValueError(f"no normal processors left (n={n}, r={r})")
    return (1 << subcube_dim) / normal
