"""The fault-tolerant sorting algorithm (paper Section 3, Steps 1-8).

Given ``Q_n`` with ``r <= n - 1`` faulty processors:

1. Partition ``Q_n`` along the selected cutting sequence ``D_β`` into
   ``2**m`` subcubes, each with exactly one *dead* processor (its fault, or
   a dangling processor in fault-free subcubes), and XOR-reindex each
   subcube so its dead processor has local address 0 (Step 1).
2. Distribute the ``M`` keys over the ``N' = 2**n - 2**m`` working
   processors (Step 2), padding with dummy ``+inf`` keys.
3. Locally heapsort every block, then bitonic-sort each subcube — ascending
   for even subcube addresses, descending for odd (Step 3).
4. Run the bitonic-like merge network over the subcubes-as-supernodes
   (Steps 4-8): for each stage ``i`` and dimension ``j = i .. 0``,
   corresponding reindexed processors of subcubes adjacent along ``j``
   compare-split their blocks (the subcube whose ``v_j`` equals
   ``mask = v_{i+1}`` keeps the smaller half), then every subcube re-sorts
   internally, ascending iff ``v_{j-1} == mask`` (``v_{-1} = 0``).

Orientation bookkeeping (see :mod:`repro.sorting.bitonic_cube`): subcube
``v``'s content layout direction alternates per the Step-8 rule, and the
implementation asserts the paper's invariant that every Step-7 exchange
happens between opposite-orientation subcubes — precisely the condition
under which the equal-``w`` pairing realizes an exact supernode
merge-split.

Communication cost honesty: corresponding reindexed processors are
generally *not* physical neighbors — the detour equals the Hamming distance
of the two subcubes' dead-``w`` addresses plus one (the cut dimension).
Transfers are charged through the machine's fault-aware hop metric, so
*partial* faults reproduce the paper's ``1 + HD`` figure exactly and
*total* faults pay the extra routing penalty of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import pad_and_chunk, strip_padding
from repro.core.partition import PartitionResult, find_min_cuts
from repro.core.selection import SelectionResult, select_cut_sequence
from repro.core.single_fault import (
    SingleFaultSortResult,
    fault_free_bitonic_sort,
    local_sort_blocks,
    single_fault_bitonic_sort,
)
from repro.cube.address import bit_of, validate_dimension
from repro.faults.linkplan import absorb_link_faults
from repro.faults.model import FaultKind, FaultSet
from repro.obs.spans import NULL_TRACER, PID_SIM, TID_ALGO
from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine
from repro.kernels import resolve_backend
from repro.sorting.bitonic_cube import (
    block_bitonic_merge_groups,
    block_bitonic_sort_groups,
    run_exchange_jobs,
)

__all__ = ["FtSortResult", "fault_tolerant_sort", "plan_partition"]


def plan_partition(
    n: int,
    faults: FaultSet | list[int] | tuple[int, ...],
    cut_dims: tuple[int, ...] | None = None,
) -> tuple[PartitionResult, SelectionResult]:
    """Partition + selection in one step (Sections 2.2 and 3).

    ``cut_dims`` overrides the Eq.-(1) choice with a specific sequence from
    Ψ (it must be feasible and of minimum length) — used by tests and the
    partition-explorer example.

    The un-overridden path is served from :data:`repro.plancache.PLAN_CACHE`
    (exact replay through the hypercube-symmetry canonical form; a
    transparent pass-through when the cache is disabled).
    """
    from repro.plancache.cache import plan_with_cache

    if cut_dims is None:
        return plan_with_cache(n, faults)
    partition = find_min_cuts(n, faults)
    dims = tuple(cut_dims)
    if tuple(sorted(dims)) not in {tuple(sorted(d)) for d in partition.cutting_set}:
        raise ValueError(
            f"cut_dims {dims} is not a minimum cutting sequence; Ψ = "
            f"{[list(d) for d in partition.cutting_set]}"
        )
    forced = PartitionResult(
        n=partition.n,
        faults=partition.faults,
        mincut=partition.mincut,
        cutting_set=(dims,),
    )
    return partition, select_cut_sequence(forced)


@dataclass(frozen=True)
class FtSortResult:
    """Outcome of the fault-tolerant sort.

    Attributes:
        sorted_keys: the input keys in ascending order (padding stripped).
        elapsed: simulated execution time (machine cost units); excludes
            host distribution/collection, like the paper's measurements.
        output_order: physical addresses in output order — subcube address
            major, reindexed local address minor; concatenating their final
            blocks yields the ascending result.
        machine: the phase machine (final blocks, per-phase costs).
        partition: the Section-2.2 result (``mincut``, Ψ); ``None`` when
            ``r <= 1`` (no partition needed).
        selection: the resolved plan (``D_β``, dangling); ``None`` when
            ``r <= 1``.
        block_size: keys per working processor after padding.
    """

    sorted_keys: np.ndarray
    elapsed: float
    output_order: tuple[int, ...]
    machine: PhaseMachine
    partition: PartitionResult | None
    selection: SelectionResult | None
    block_size: int

    @property
    def working_processors(self) -> int:
        """Number of processors that held keys."""
        return len(self.output_order)


def _wrap_simple(res: SingleFaultSortResult, partition: PartitionResult | None) -> FtSortResult:
    return FtSortResult(
        sorted_keys=res.sorted_keys,
        elapsed=res.elapsed,
        output_order=res.output_order,
        machine=res.machine,
        partition=partition,
        selection=None,
        block_size=res.block_size,
    )


def _subcube_groups(
    selection: SelectionResult,
    dead_w: list[int],
    ascending: list[bool],
) -> list[tuple[list[int], frozenset[int], bool]]:
    """Logical-cube groups for a lockstep intra-subcube sort.

    For subcube ``v``, logical position ``l`` is the reindexed address
    ``rho = l`` at physical address ``combine(v, rho XOR dead_w[v])``; the
    dead processor always sits at logical 0 (the exact-skip position) and
    an odd-direction subcube runs the direction-inverted network.  After
    the sort, processor ``rho`` holds content-rank ``rho - 1`` (ascending
    subcube) or ``P - 1 - rho`` (descending).
    """
    split = selection.split
    p = 1 << selection.s
    groups: list[tuple[list[int], frozenset[int], bool]] = []
    for v in range(1 << selection.m):
        addrs = [split.combine(v, l ^ dead_w[v]) for l in range(p)]
        groups.append((addrs, frozenset({0}), not ascending[v]))
    return groups


def _mirror_subcubes(
    machine: PhaseMachine,
    selection: SelectionResult,
    dead_w: list[int],
    subcube_addrs: list[int],
    label: str,
) -> None:
    """Reverse the block placement of each listed subcube, in one phase.

    After a monotone merge, flipping a subcube's direction is a pure
    relabeling: processor ``rho`` and processor ``P - rho`` swap whole
    blocks (``rho = P/2`` keeps its block).  The swap pairs are disjoint,
    so all of them — across all flipping subcubes — form one parallel
    phase; each swap is a simultaneous full-duplex transfer over
    ``HD(rho, P - rho)`` hops (the dead-``w`` reindex XOR cancels out of
    the distance).
    """
    split = selection.split
    p = 1 << selection.s
    pairs = 0
    with machine.phase(label):
        for v in subcube_addrs:
            for rho in range(1, p // 2):
                peer = p - rho
                pa = split.combine(v, rho ^ dead_w[v])
                pb = split.combine(v, peer ^ dead_w[v])
                block_a = machine.get_block(pa)
                block_b = machine.get_block(pb)
                machine.blocks[pa] = block_b
                machine.blocks[pb] = block_a
                machine.charge_swap(pa, pb, int(block_a.size))
                pairs += 1
    if pairs and machine.obs.enabled:
        met = machine.obs.metrics
        met.inc("sort.mirror.pairs", pairs)
        met.inc("sort.messages", 2 * pairs)


def _emit_compiled_ft_steps(
    obs,
    machine: PhaseMachine,
    selection: SelectionResult,
    partition: PartitionResult,
    keys_count: int,
    workers: int,
    block_size: int,
) -> None:
    """Reconstruct the per-step obs spans from a compiled run's phase list.

    The compiled executor emits phase-level spans itself; the algorithm-step
    timeline (``step1`` .. ``step8``, ``step4`` stage groups, the ``ftsort``
    root) is recovered here by walking the phase records in order — their
    structure is fully determined by ``(m, s)``.  Start/end timestamps are
    re-accumulated with the same float addition sequence the machine clock
    used, so the spans match an interpreted run's exactly.
    """
    m, s = selection.m, selection.s
    phases = machine.phases

    def step(name: str, ts: float, dur: float, **args) -> None:
        obs.complete(name, ts=ts, dur=dur, cat="step", pid=PID_SIM, tid=TID_ALGO,
                     args=args or None)

    step("step1:partition+select", 0.0, 0.0,
         m=m, s=s, mincut=partition.mincut, cut_dims=list(selection.cut_dims))
    step("step2:distribute", 0.0, 0.0, workers=workers, block_size=block_size)
    t = 0.0
    idx = 0

    def advance(count: int) -> float:
        nonlocal t, idx
        for _ in range(count):
            t += phases[idx].duration
            idx += 1
        return t

    t0 = t
    advance(1)  # local-heapsort
    step("step3a:local-heapsort", t0, t - t0)
    t0 = t
    advance(s * (s + 1) // 2)  # intra-init substages
    step("step3b:intra-init", t0, t - t0)
    for i in range(m):
        t_stage = t
        for j in range(i, -1, -1):
            step(f"step5:partner[i={i},j={j}]", t, 0.0)
            step(f"step6:direction[i={i},j={j}]", t, 0.0)
            t7 = t
            advance(1)  # inter[i,j]
            step(f"step7:inter[i={i},j={j}]", t7, t - t7)
            t8 = t
            advance(s)  # intra[i,j]a merge pass
            if idx < len(phases) and phases[idx].label == f"intra[i={i},j={j}]b":
                advance(1)  # mirror fix-up
            step(f"step8:intra[i={i},j={j}]", t8, t - t8)
        step(f"step4:stage[i={i}]", t_stage, t - t_stage)
    step("ftsort", 0.0, machine.elapsed,
         n=selection.n, r=len(selection.faults), keys=keys_count)


def _compiled_ft_sort(
    keys: np.ndarray | list,
    fault_set: FaultSet,
    params: MachineParams | None,
    exact_counts: bool,
    obs,
    partition: PartitionResult,
    selection: SelectionResult,
) -> FtSortResult:
    """The r >= 2 partition sort through the compiled flat-array tier."""
    from repro.kernels.compiled import run_schedule_compiled
    from repro.plancache.cache import cached_ft_schedule

    schedule = cached_ft_schedule(selection)
    sorted_keys, machine, block_size = run_schedule_compiled(
        schedule,
        keys,
        fault_set,
        params=params,
        obs=obs,
        exact_counts=exact_counts,
        cache_kind="ft",
        cache_key=(selection.n, selection.cut_dims, selection.dead_of_subcube),
    )
    if obs.enabled:
        obs.name_thread(TID_ALGO, "algorithm steps", pid=PID_SIM)
        _emit_compiled_ft_steps(
            obs, machine, selection, partition,
            keys_count=int(np.asarray(keys).size),
            workers=schedule.workers,
            block_size=block_size,
        )
    return FtSortResult(
        sorted_keys=sorted_keys,
        elapsed=machine.elapsed,
        output_order=schedule.output_order,
        machine=machine,
        partition=partition,
        selection=selection,
        block_size=block_size,
    )


def fault_tolerant_sort(
    keys: np.ndarray | list,
    n: int,
    faults: FaultSet | list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    fault_kind: FaultKind = FaultKind.PARTIAL,
    cut_dims: tuple[int, ...] | None = None,
    exact_counts: bool = False,
    step8: str = "two-merge",
    observer=None,
    obs=None,
    kernels=None,
) -> FtSortResult:
    """Sort ``keys`` on ``Q_n`` in the presence of up to ``n - 1`` faults.

    Args:
        keys: finite keys, any order.
        n: hypercube dimension.
        faults: faulty processor addresses (or a :class:`FaultSet`, whose
            kind then overrides ``fault_kind``).
        params: machine cost constants (default NCUBE/7).
        fault_kind: ``PARTIAL`` (VERTEX-style pass-through routing, the
            paper's measured mode) or ``TOTAL`` (routes must detour).
        cut_dims: optional override of the Eq.-(1) selection.
        exact_counts: exact heapsort comparison counting for local sorts.
        observer: optional ``f(machine, phase_record)`` callback fired after
            every phase — used by the Figure-6 walkthrough example to print
            intermediate block states; ignored on the ``r <= 1`` paths.
        obs: optional :class:`repro.obs.Tracer`.  When enabled, the sort
            records one simulated-time span per algorithm step (``step1``
            .. ``step8``, plus a root ``ftsort`` span) on the algorithm
            timeline, the phase machine records per-phase spans, and the
            logical ``sort.*`` counters accumulate (compare-exchanges
            executed/skipped, mirror pairs, messages).
        step8: how the intra-subcube re-sort of Step 8 is realized.
            ``"two-merge"`` (default): one bitonic merge pass in the
            direction the exchange's kept half makes bitonic, then — only
            for subcubes whose Step-8 target direction differs — a single
            block-mirror phase that reverses the placement; both steps are
            provably correct (see the discussion below) and this is what
            reconciles measured time with the paper's Figure 7.
            ``"full-sort"``: the literal ``s(s+1)/2``-substage bitonic
            sort the paper's worst-case ``T`` charges — same result,
            slower for ``s > 3``; kept for the ablation benchmark.
        kernels: kernel backend (or name, see :mod:`repro.kernels`) that
            executes the sorting/merging inner loops; ``None`` = process
            default.  Results and every cost/obs counter are
            backend-independent.

    Returns:
        :class:`FtSortResult` with the globally sorted keys, the simulated
        time, and the partition/selection artifacts.

    Dispatch: ``r = 0`` runs the plain bitonic sort, ``r = 1`` the
    Section-2.1 single-fault sort, ``r >= 2`` the full partition path.

    Step-8 correctness argument (two-merge mode): after the Step-7
    exchange, the subcube holding the smaller halves holds, per processor,
    the pairwise minima of a bitonic (ascending-then-descending) virtual
    sequence; its block multisets therefore form a "valley" of zero-counts
    under any 0-1 threshold, which together with the dead node's ``-inf``
    sentinel block at reindexed address 0 is cyclically bitonic — exactly
    the precondition of an ascending skip-merge.  Symmetrically the larger
    half with a ``+inf`` sentinel is the precondition of a descending
    skip-merge.  The merge pass therefore sorts in the *side* direction;
    if the Step-8 rule wants the other direction, the content is exactly
    the mirror image of the target, so one parallel block-mirror phase
    (processor ``rho`` swaps with ``P - rho``) finishes the job with no
    comparisons at all.
    """
    validate_dimension(n)
    if step8 not in ("two-merge", "full-sort"):
        raise ValueError(f"step8 must be 'two-merge' or 'full-sort', got {step8!r}")
    if isinstance(faults, FaultSet):
        if faults.n != n:
            raise ValueError(f"fault set is for Q_{faults.n}, expected Q_{n}")
        fault_set = faults
    else:
        fault_set = FaultSet(n, faults, kind=fault_kind)
    if fault_set.links:
        # Link-fault extension: absorb each faulty link into a designated
        # endpoint (it becomes a dead processor for planning; routing still
        # sees the true link failures).  See repro.faults.linkplan.
        fault_set = absorb_link_faults(fault_set)
    if not fault_set.satisfies_paper_model():
        raise ValueError(
            f"{fault_set.r} faults on Q_{n} violate the paper's model "
            "(r <= n-1, or no normal processor fully surrounded by faults)"
        )
    r = fault_set.r
    obs = obs if obs is not None else NULL_TRACER
    kernels = resolve_backend(kernels)

    if r == 0:
        return _wrap_simple(
            fault_free_bitonic_sort(keys, n, params, exact_counts, obs=obs, kernels=kernels),
            None,
        )
    if r == 1:
        partition = find_min_cuts(n, fault_set)
        res = single_fault_bitonic_sort(
            keys, n, fault_set.processors[0], params, exact_counts, obs=obs, kernels=kernels
        )
        return _wrap_simple(res, partition)

    partition, selection = plan_partition(n, fault_set, cut_dims=cut_dims)
    if kernels.schedule_compiled and step8 == "two-merge" and observer is None:
        # Compiled flat-array tier: execute the cached schedule's lowered
        # program instead of interpreting per-pair.  The full-sort ablation
        # and per-phase observers are not modeled by the schedule builder /
        # executor; those fall through to the interpreter (which still uses
        # this backend's inherited numpy kernels).
        return _compiled_ft_sort(
            keys, fault_set, params, exact_counts, obs, partition, selection
        )
    split = selection.split
    m, s = selection.m, selection.s
    p = 1 << s
    flip = p - 1
    dead_w = [split.w_of(dead) for dead in selection.dead_of_subcube]

    machine = PhaseMachine(n, params=params, faults=fault_set, obs=obs)
    machine.on_phase_end = observer
    if obs.enabled:
        obs.name_thread(TID_ALGO, "algorithm steps", pid=PID_SIM)

    def _step(name: str, started_at: float, **args) -> None:
        obs.complete(
            name,
            ts=started_at,
            dur=machine.elapsed - started_at,
            cat="step",
            pid=PID_SIM,
            tid=TID_ALGO,
            args=args or None,
        )

    keys_arr = np.asarray(keys, dtype=float)
    workers = selection.working_processors
    chunks, block_size = pad_and_chunk(keys_arr, workers)
    if obs.enabled:
        # Steps 1-2 are host-side planning/distribution: no simulated cost,
        # recorded as zero-duration markers so the step report is complete.
        _step("step1:partition+select", machine.elapsed,
              m=m, s=s, mincut=partition.mincut, cut_dims=list(selection.cut_dims))
        _step("step2:distribute", machine.elapsed,
              workers=workers, block_size=block_size)

    # Steps 1-2: reindex and distribute.  Working processor order: subcube
    # address major, reindexed local address (1..P-1) minor.
    output_order: list[int] = []
    assignments: dict[int, np.ndarray] = {}
    chunk_iter = iter(chunks)
    for v in range(1 << m):
        for rho in range(1, p):
            phys = split.combine(v, rho ^ dead_w[v])
            output_order.append(phys)
            assignments[phys] = next(chunk_iter)

    # Step 3: local heapsort, then per-subcube bitonic sort; even subcube
    # addresses ascending, odd descending.
    t0 = machine.elapsed
    local_sort_blocks(machine, assignments, exact_counts=exact_counts, kernels=kernels)
    if obs.enabled:
        _step("step3a:local-heapsort", t0)
    ascending = [(v & 1) == 0 for v in range(1 << m)]
    t0 = machine.elapsed
    block_bitonic_sort_groups(
        machine, _subcube_groups(selection, dead_w, ascending), label="intra-init",
        kernels=kernels,
    )
    if obs.enabled:
        _step("step3b:intra-init", t0)

    # Steps 4-8: bitonic-like merge over the 2**m subcubes.
    for i in range(m):
        t_stage = machine.elapsed
        for j in range(i, -1, -1):
            if obs.enabled:
                # Steps 5-6 pick partners and comparison directions — pure
                # host-side bookkeeping with no simulated cost.
                _step(f"step5:partner[i={i},j={j}]", machine.elapsed)
                _step(f"step6:direction[i={i},j={j}]", machine.elapsed)
            t7 = machine.elapsed
            kept_min = [False] * (1 << m)  # which side each subcube took
            with machine.phase(f"inter[i={i},j={j}]"):
                jobs: list[tuple[int, int, bool, int | None]] = []
                for v_low in range(1 << m):
                    if (v_low >> j) & 1:
                        continue
                    v_high = v_low | (1 << j)
                    mask = bit_of(v_low, i + 1) if i + 1 < m else 0
                    # Paper Step 7(b): the subcube whose v_j equals mask
                    # keeps the smaller elements; v_low has v_j = 0.
                    low_keeps_min = mask == 0
                    kept_min[v_low] = low_keeps_min
                    kept_min[v_high] = not low_keeps_min
                    if ascending[v_low] == ascending[v_high]:
                        raise AssertionError(
                            "orientation invariant violated: subcubes "
                            f"{v_low}/{v_high} both "
                            f"{'ascending' if ascending[v_low] else 'descending'}"
                        )
                    for rho in range(1, p):
                        pa = split.combine(v_low, rho ^ dead_w[v_low])
                        pb = split.combine(v_high, rho ^ dead_w[v_high])
                        # hops=None: fault-aware metric (1 + HD of dead-w
                        # under partial faults; detours under total).
                        jobs.append((pa, pb, low_keeps_min, None))
                run_exchange_jobs(machine, jobs, kernels=kernels)
            if obs.enabled:
                _step(f"step7:inter[i={i},j={j}]", t7)
            t8 = machine.elapsed
            # Step 8: re-sort every subcube; target direction ascending iff
            # v_{j-1} == mask (v_{-1} = 0), which flips orientations into
            # opposition for the next substage along dimension j-1.
            for v in range(1 << m):
                mask_v = bit_of(v, i + 1) if i + 1 < m else 0
                prev_bit = bit_of(v, j - 1) if j >= 1 else 0
                ascending[v] = prev_bit == mask_v
            if step8 == "full-sort":
                block_bitonic_sort_groups(
                    machine,
                    _subcube_groups(selection, dead_w, ascending),
                    label=f"intra[i={i},j={j}]",
                    kernels=kernels,
                )
            else:
                # Merge pass — the direction the exchanged halves make
                # bitonic: ascending on the min-keeping side, descending on
                # the max-keeping side (see the docstring's argument).
                side_dir = [kept_min[v] for v in range(1 << m)]
                block_bitonic_merge_groups(
                    machine,
                    _subcube_groups(selection, dead_w, side_dir),
                    label=f"intra[i={i},j={j}]a",
                    kernels=kernels,
                )
                # Direction fix-up: subcubes whose Step-8 target direction
                # differs from the merge direction hold exactly mirrored
                # content; one parallel block-mirror phase relabels them.
                flips = [v for v in range(1 << m) if side_dir[v] != ascending[v]]
                if flips:
                    _mirror_subcubes(
                        machine, selection, dead_w, flips, label=f"intra[i={i},j={j}]b"
                    )
            if obs.enabled:
                _step(f"step8:intra[i={i},j={j}]", t8)
        if obs.enabled:
            _step(f"step4:stage[i={i}]", t_stage)

    if not all(ascending):
        raise AssertionError("final orientation must be ascending everywhere")

    if obs.enabled:
        _step("ftsort", 0.0, n=n, r=r, keys=int(keys_arr.size))
    gathered = (
        np.concatenate([machine.get_block(a) for a in output_order])
        if output_order
        else np.empty(0)
    )
    sorted_keys = strip_padding(gathered, int(keys_arr.size))
    return FtSortResult(
        sorted_keys=sorted_keys,
        elapsed=machine.elapsed,
        output_order=tuple(output_order),
        machine=machine,
        partition=partition,
        selection=selection,
        block_size=block_size,
    )
