"""The partition algorithm (paper Section 2.2).

Given ``Q_n`` with ``r`` faulty processors, find all minimum-length
*cutting dimension sequences* ``D`` such that cutting ``Q_n`` along the
dimensions of ``D`` yields a *single-fault subcube structure* ``F_n^m``:
every one of the ``2**m`` resulting subcubes contains at most one faulty
processor.

The feasibility predicate is simple: cutting along dimension set ``D``
groups faults by their address bits at the dimensions of ``D``, so ``D``
is feasible iff the faults' projections onto ``D`` are pairwise distinct.
The paper evaluates this predicate with a *checking tree* (splitting the
fault list dimension by dimension); :class:`CheckingTree` reproduces that
structure literally, and the fast projection test is validated against it
in the test suite.

The search is the paper's DFS over the *cutting dimension tree* ``T_n``
(whose nodes are the increasing dimension sequences, ``sum_i C(n, i) =
2**n - 1`` of them), with the cutoff rule "abandon the branch once its
depth exceeds the current ``mincut``" and the update rule of Step 3.
Because supersets of a feasible set are feasible but never minimal, the DFS
also stops descending below a feasible node.  The per-node work is one
``O(r)`` projection pass, giving the paper's ``O(r * N)`` bound.

Guarantees proved in the paper and enforced by tests:

* for ``r <= n - 1`` faults, ``mincut <= r - 1 <= n - 2`` (each new cutting
  dimension can split some still-crowded fault group);
* the number of dangling processors, ``2**m - r``, is at most ``N/4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.cube.address import validate_address, validate_dimension
from repro.faults.model import FaultSet

__all__ = [
    "CheckingTree",
    "PartitionResult",
    "find_min_cuts",
    "is_single_fault_partition",
    "max_dangling_bound",
]


def _fault_addresses(n: int, faults: FaultSet | Sequence[int]) -> tuple[int, ...]:
    if isinstance(faults, FaultSet):
        if faults.n != n:
            raise ValueError(f"fault set is for Q_{faults.n}, expected Q_{n}")
        return faults.processors
    addrs = tuple(sorted({validate_address(int(f), n) for f in faults}))
    return addrs


def _project(addr: int, dims: Sequence[int]) -> int:
    key = 0
    for k, d in enumerate(dims):
        key |= ((addr >> d) & 1) << k
    return key


def is_single_fault_partition(
    n: int, cut_dims: Sequence[int], faults: FaultSet | Sequence[int]
) -> bool:
    """Whether cutting ``Q_n`` along ``cut_dims`` leaves <= 1 fault per subcube.

    Equivalent to: the faults' projections onto ``cut_dims`` are pairwise
    distinct.  An empty ``cut_dims`` is feasible iff there is at most one
    fault (``F_n^0``).
    """
    validate_dimension(n)
    addrs = _fault_addresses(n, faults)
    dims = tuple(cut_dims)
    for d in dims:
        if not 0 <= d < n:
            raise ValueError(f"cutting dimension {d} out of range for Q_{n}")
    if len(set(dims)) != len(dims):
        raise ValueError(f"cutting dimensions must be distinct, got {dims}")
    seen: set[int] = set()
    for a in addrs:
        key = _project(a, dims)
        if key in seen:
            return False
        seen.add(key)
    return True


class CheckingTree:
    """The paper's checking tree ``T'_n`` for one cutting sequence.

    The root holds every faulty processor; traversing cutting dimension
    ``d_k`` splits each current node's fault list into a left child (bit
    ``d_k`` = 0) and right child (bit ``d_k`` = 1).  After all dimensions of
    ``D`` are traversed, ``D`` builds a single-fault subcube structure iff
    every leaf holds at most one fault.

    This mirrors Fig. 4 of the paper and exists for fidelity and
    explainability (:meth:`leaves` tells you *which* subcube holds which
    fault); the production predicate is :func:`is_single_fault_partition`.
    """

    def __init__(self, n: int, cut_dims: Sequence[int], faults: FaultSet | Sequence[int]):
        self.n = validate_dimension(n)
        self.cut_dims = tuple(cut_dims)
        self.root = list(_fault_addresses(n, faults))
        # levels[k] maps the k-bit path prefix (bit t = side taken at depth
        # t+1, 1 = right/child with u_{d}=1) to the fault list of that node.
        self.levels: list[dict[int, list[int]]] = [{0: list(self.root)}]
        for depth, d in enumerate(self.cut_dims, start=1):
            prev = self.levels[depth - 1]
            cur: dict[int, list[int]] = {}
            for path, flist in prev.items():
                left = [f for f in flist if not (f >> d) & 1]
                right = [f for f in flist if (f >> d) & 1]
                cur[path] = left
                cur[path | (1 << (depth - 1))] = right
            self.levels.append(cur)

    def leaves(self) -> dict[int, list[int]]:
        """Leaf fault lists keyed by subcube address ``v`` (paper order).

        Bit ``k`` of ``v`` is the coordinate along cutting dimension
        ``d_{k+1}`` — identical to :class:`repro.cube.subcube.AddressSplit`.
        """
        return self.levels[-1]

    def is_single_fault(self) -> bool:
        """Whether every leaf has at most one fault."""
        return all(len(v) <= 1 for v in self.leaves().values())


@dataclass(frozen=True)
class PartitionResult:
    """Output of the partition algorithm.

    Attributes:
        n: hypercube dimension.
        faults: faulty processor addresses (sorted).
        mincut: minimum number of cutting dimensions (``m``).
        cutting_set: the set ``Ψ`` — every feasible increasing cutting
            sequence of length ``mincut``, in DFS (lexicographic) order.
    """

    n: int
    faults: tuple[int, ...]
    mincut: int
    cutting_set: tuple[tuple[int, ...], ...]

    @property
    def num_subcubes(self) -> int:
        """``2**mincut`` subcubes in the single-fault structure."""
        return 1 << self.mincut

    @property
    def dangling_count(self) -> int:
        """Dangling processors: one per fault-free subcube (``2**m - r``).

        For ``r <= 1`` (``mincut = 0``) the structure is the whole cube and
        no dangling processor is needed.
        """
        if self.mincut == 0:
            return 0
        return self.num_subcubes - len(self.faults)

    @property
    def working_processors(self) -> int:
        """``N' = 2**n - 2**m`` processors that receive keys.

        For ``mincut = 0`` this is ``2**n - r`` (only the fault, if any,
        idles).
        """
        if self.mincut == 0:
            return (1 << self.n) - len(self.faults)
        return (1 << self.n) - self.num_subcubes


def max_dangling_bound(n: int) -> int:
    """The paper's worst-case dangling-processor bound, ``N / 4``.

    With ``r <= n - 1`` faults the partition needs at most ``n - 2`` cuts,
    i.e. subcubes no smaller than ``Q_2``, so at most a quarter of the
    machine idles.
    """
    validate_dimension(n)
    return (1 << n) // 4


def _find_min_cuts_reference(
    n: int,
    faults: FaultSet | Sequence[int],
    max_depth: int | None = None,
) -> PartitionResult:
    """The literal paper DFS (one full projection pass per tree node).

    Kept as the executable specification :func:`find_min_cuts` is validated
    and benchmarked against; see ``benchmarks/test_kernels_speedup.py``.
    """
    validate_dimension(n)
    addrs = _fault_addresses(n, faults)
    r = len(addrs)
    if max_depth is None:
        max_depth = n
    if not 0 <= max_depth <= n:
        raise ValueError(f"max_depth {max_depth} out of range for Q_{n}")
    if r <= 1:
        return PartitionResult(n=n, faults=addrs, mincut=0, cutting_set=((),))

    mincut = max_depth + 1  # sentinel: nothing found yet
    psi: list[tuple[int, ...]] = []

    def dfs(prefix: tuple[int, ...], start: int) -> None:
        nonlocal mincut, psi
        k = len(prefix)
        if k > 0 and is_single_fault_partition(n, prefix, addrs):
            if k < mincut:
                mincut = k
                psi = [prefix]
            elif k == mincut:
                psi.append(prefix)
            return  # supersets are feasible but longer: never minimal
        # Cutoff: descending would create sequences longer than mincut.
        if k >= mincut or k >= max_depth:
            return
        for d in range(start, n):
            dfs(prefix + (d,), d + 1)

    dfs((), 0)
    if not psi:
        raise ValueError(
            f"no single-fault partition of Q_{n} with faults {list(addrs)} "
            f"within {max_depth} cutting dimensions"
        )
    return PartitionResult(n=n, faults=addrs, mincut=mincut, cutting_set=tuple(psi))


def find_min_cuts(
    n: int,
    faults: FaultSet | Sequence[int],
    max_depth: int | None = None,
) -> PartitionResult:
    """Run the partition algorithm: DFS for ``mincut`` and the cutting set Ψ.

    Args:
        n: hypercube dimension.
        faults: faulty processors (a :class:`FaultSet` or addresses).
        max_depth: optional cap on the sequence length explored; defaults
            to ``n`` (the paper initializes ``mincut`` to ``n``).

    Returns:
        :class:`PartitionResult`.  For ``r <= 1`` the result is the trivial
        ``mincut = 0`` with ``Ψ = {()}`` (Section 2.1 handles the sort).

    Raises:
        ValueError: if no feasible partition exists within ``max_depth``
            (possible only when ``max_depth`` is set below the true mincut,
            or when two "faults" share an address, which the input
            normalization prevents).

    Implementation: semantically the paper's DFS over ``T_n`` (identical
    ``mincut`` and Ψ, in the same lexicographic order — pinned against
    :func:`_find_min_cuts_reference` by the tests), but the checking-tree
    state is carried *incrementally* as int bitmasks over fault indices:
    a subcube's fault list is one ``r``-bit mask, cutting along ``d``
    splits mask ``g`` into ``g & dim_mask[d]`` and its complement, and only
    the still-crowded groups (two or more bits, ``g & (g - 1) != 0``)
    survive.  Minimal-suffix lengths are memoized per ``(groups, start)``
    state, so the enumeration pass walks exactly the minimal subtrees.
    """
    validate_dimension(n)
    addrs = _fault_addresses(n, faults)
    r = len(addrs)
    if max_depth is None:
        max_depth = n
    if not 0 <= max_depth <= n:
        raise ValueError(f"max_depth {max_depth} out of range for Q_{n}")
    if r <= 1:
        return PartitionResult(n=n, faults=addrs, mincut=0, cutting_set=((),))

    # dim_mask[d]: bit t set iff fault t has address bit d set.
    dim_mask = [0] * n
    for t, a in enumerate(addrs):
        for d in range(n):
            if (a >> d) & 1:
                dim_mask[d] |= 1 << t

    def refine(groups: tuple[int, ...], d: int) -> tuple[int, ...]:
        """Split every crowded group along ``d``; keep the crowded halves."""
        out = []
        mask = dim_mask[d]
        for g in groups:
            g1 = g & mask
            g0 = g ^ g1
            if g0 & (g0 - 1):
                out.append(g0)
            if g1 & (g1 - 1):
                out.append(g1)
        return tuple(sorted(out))

    infinity = n + 1
    memo: dict[tuple[tuple[int, ...], int], int] = {}

    def min_len(groups: tuple[int, ...], start: int) -> int:
        """Exact minimal number of dims from ``[start, n)`` resolving ``groups``."""
        if not groups:
            return 0
        if start >= n:
            return infinity
        key = (groups, start)
        cached = memo.get(key)
        if cached is not None:
            return cached
        best = min_len(groups, start + 1)  # skip dimension `start`
        with_d = 1 + min_len(refine(groups, start), start + 1)
        if with_d < best:
            best = with_d
        memo[key] = best
        return best

    root = ((1 << r) - 1,)
    mincut = min_len(root, 0)
    if mincut > max_depth:
        raise ValueError(
            f"no single-fault partition of Q_{n} with faults {list(addrs)} "
            f"within {max_depth} cutting dimensions"
        )

    # Enumerate Ψ: every feasible length-`mincut` sequence, lexicographic.
    # (A feasible sequence of length `mincut` cannot have a feasible proper
    # prefix, so this matches the paper DFS's "stop at first feasibility".)
    psi: list[tuple[int, ...]] = []

    def enum(prefix: tuple[int, ...], groups: tuple[int, ...], start: int) -> None:
        if not groups:
            psi.append(prefix)
            return
        k = len(prefix)
        for d in range(start, n):
            refined = refine(groups, d)
            if k + 1 + min_len(refined, d + 1) <= mincut:
                enum(prefix + (d,), refined, d + 1)

    enum((), root, 0)
    return PartitionResult(n=n, faults=addrs, mincut=mincut, cutting_set=tuple(psi))
