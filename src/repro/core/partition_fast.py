"""Vectorized batch evaluation of ``mincut`` over many fault placements.

The Monte-Carlo experiments (Tables 1-2) evaluate the partition algorithm
on 10000 random placements per cell; running the DFS per placement is pure
Python overhead.  This module evaluates *all placements at once* with
numpy, exploiting the feasibility characterization:

    a dimension set ``D`` (as a bitmask) single-fault-partitions a
    placement iff every pair of faults differs inside ``D``, i.e.
    ``(f_i XOR f_j) AND D != 0`` for all pairs ``i < j``.

Precompute the XOR of every fault pair per placement (``trials x C(r,2)``
matrix), then sweep all ``2**n - 1`` dimension masks in popcount order:
a placement's ``mincut`` is the popcount of the first mask that covers all
its pairs.  Total work is ``O(2**n * trials * r**2)`` fully vectorized —
30x+ faster than the per-placement DFS at the paper's scales, and verified
bit-for-bit against :func:`repro.core.partition.find_min_cuts` in the test
suite.
"""

from __future__ import annotations

import numpy as np

from repro.cube.address import validate_dimension

__all__ = ["mincut_batch", "mincut_distribution_fast"]


def mincut_batch(n: int, placements: np.ndarray) -> np.ndarray:
    """``mincut`` of each fault placement, vectorized.

    Args:
        n: hypercube dimension.
        placements: int array of shape ``(trials, r)``; each row the
            distinct fault addresses of one placement.

    Returns:
        int array of shape ``(trials,)`` with each placement's mincut.
    """
    validate_dimension(n)
    arr = np.asarray(placements)
    if arr.ndim != 2:
        raise ValueError(f"placements must be 2-D (trials, r), got shape {arr.shape}")
    trials, r = arr.shape
    if trials == 0:
        return np.zeros(0, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= (1 << n)):
        raise ValueError(f"fault addresses out of range for Q_{n}")
    if r <= 1:
        return np.zeros(trials, dtype=np.int64)

    # Pairwise XORs: shape (trials, C(r, 2)).
    idx_i, idx_j = np.triu_indices(r, k=1)
    diffs = arr[:, idx_i] ^ arr[:, idx_j]
    if (diffs == 0).any():
        raise ValueError("placements must contain distinct fault addresses")

    result = np.full(trials, -1, dtype=np.int64)
    unresolved = np.arange(trials)
    # Masks in popcount order; the first feasible mask gives the mincut.
    masks = sorted(range(1, 1 << n), key=lambda m: (m.bit_count(), m))
    for mask in masks:
        if unresolved.size == 0:
            break
        feasible = ((diffs[unresolved] & mask) != 0).all(axis=1)
        hit = unresolved[feasible]
        result[hit] = mask.bit_count()
        unresolved = unresolved[~feasible]
    assert unresolved.size == 0, "every placement with distinct faults is partitionable"
    return result


def mincut_distribution_fast(
    n: int, r: int, trials: int, rng: np.random.Generator | int | None = None
) -> dict[int, float]:
    """Monte-Carlo mincut distribution (in %), vectorized end-to-end.

    Draws ``trials`` placements of ``r`` distinct faults on ``Q_n`` and
    returns percentage-by-mincut — the fast path behind Table 1.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if r == 0:
        return {0: 100.0}
    size = 1 << n
    if r > size:
        raise ValueError(f"cannot place {r} faults in Q_{n}")
    # Batched sampling without replacement via argpartition of random keys.
    keys = gen.random((trials, size))
    placements = np.argpartition(keys, r - 1, axis=1)[:, :r].astype(np.int64)
    mincuts = mincut_batch(n, placements)
    values, counts = np.unique(mincuts, return_counts=True)
    return {int(v): 100.0 * int(c) / trials for v, c in zip(values, counts)}
