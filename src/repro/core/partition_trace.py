"""Tracing the cutting-dimension tree DFS (the paper's Figure 2).

Figure 2 draws the tree ``T_n`` of increasing dimension sequences that the
partition algorithm searches, annotated by which nodes yield a single-fault
partition.  :func:`trace_cutting_tree` re-runs the DFS of
:func:`repro.core.partition.find_min_cuts` while recording every visit and
its verdict; :func:`render_cutting_tree` prints the annotated tree.

Verdicts per visited node (a dimension sequence ``D``):

* ``feasible``  — ``D`` single-fault-partitions the faults (a leaf of the
  search; supersets are never explored),
* ``cutoff``    — the depth bound (current mincut) pruned the branch,
* ``explored``  — infeasible but within budget; children follow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import is_single_fault_partition
from repro.cube.address import validate_dimension

__all__ = ["TreeVisit", "trace_cutting_tree", "render_cutting_tree"]


@dataclass(frozen=True)
class TreeVisit:
    """One visited node of the cutting-dimension tree."""

    dims: tuple[int, ...]
    verdict: str  # "feasible" | "cutoff" | "explored"
    mincut_at_visit: int


def trace_cutting_tree(n: int, faults: list[int] | tuple[int, ...]) -> list[TreeVisit]:
    """Replay the partition DFS, recording every node visit in order.

    Mirrors :func:`repro.core.partition.find_min_cuts` exactly (same
    traversal order, same pruning), so the trace *is* the algorithm's
    execution, not a re-derivation.
    """
    validate_dimension(n)
    addrs = tuple(sorted({int(f) for f in faults}))
    visits: list[TreeVisit] = []
    mincut = n + 1

    def dfs(prefix: tuple[int, ...], start: int) -> None:
        nonlocal mincut
        k = len(prefix)
        if k > 0:
            if is_single_fault_partition(n, prefix, addrs):
                if k < mincut:
                    mincut = k
                visits.append(TreeVisit(prefix, "feasible", mincut))
                return
            if k >= mincut:
                visits.append(TreeVisit(prefix, "cutoff", mincut))
                return
            visits.append(TreeVisit(prefix, "explored", mincut))
        for d in range(start, n):
            dfs(prefix + (d,), d + 1)

    if len(addrs) >= 2:
        dfs((), 0)
    return visits


def render_cutting_tree(n: int, faults: list[int] | tuple[int, ...]) -> str:
    """Text rendering of the annotated cutting-dimension tree (Figure 2)."""
    visits = trace_cutting_tree(n, faults)
    mark = {"feasible": "* feasible", "cutoff": "x cutoff", "explored": ""}
    lines = [
        f"cutting-dimension tree T_{n} for faults {sorted(set(faults))} "
        f"({len(visits)} nodes visited)"
    ]
    for v in visits:
        indent = "  " * len(v.dims)
        label = f"d={v.dims[-1]}" if v.dims else "root"
        suffix = mark[v.verdict]
        lines.append(f"{indent}{label:<6}{suffix}".rstrip())
    feasible = [v.dims for v in visits if v.verdict == "feasible"]
    if feasible:
        m = min(len(d) for d in feasible)
        psi = [d for d in feasible if len(d) == m]
        lines.append(f"mincut = {m}; Psi = {[list(d) for d in psi]}")
    else:
        lines.append("fewer than two faults: no partition needed")
    return "\n".join(lines)
