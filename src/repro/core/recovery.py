"""Mid-run fault arrival and recovery (extension beyond the paper).

The paper assumes all faults are known *before* the sort starts (off-line
diagnosis).  A natural question it leaves open: what if a processor dies
mid-sort?  Under the *partial* fault model — the compute portion dies, the
memory and links survive, which is the model the paper's own NCUBE runs
use — the victim's current block is still readable, so recovery is
possible without any replication:

1. stop at the current phase barrier (the algorithms are barrier-
   synchronous, so there is always a consistent cut),
2. a designated rescuer (the victim's nearest working neighbor) pulls the
   victim's block over surviving links,
3. re-plan: partition/selection for the enlarged fault set,
4. redistribute all keys over the new working set and re-run the sort.

The re-run is charged in full — no attempt to exploit the partial order
accomplished before the crash — making the reported recovery overhead an
upper bound.  :func:`sort_with_midrun_fault` simulates the whole story on
the phase engine and reports the recovery anatomy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ftsort import FtSortResult, fault_tolerant_sort
from repro.cube.address import hamming_distance, validate_address, validate_dimension
from repro.faults.linkplan import absorb_link_faults
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine

__all__ = ["RecoveryReport", "sort_with_midrun_fault"]


@dataclass(frozen=True)
class RecoveryReport:
    """Anatomy of a mid-run fault recovery.

    Attributes:
        sorted_keys: the final (correct) ascending result.
        wasted_time: simulated time spent on the aborted first attempt.
        rescue_time: time to pull the victim's block to its rescuer.
        redistribution_time: time to rebalance all blocks onto the new
            working set (tree-free pairwise model: every key moves at most
            once, charged at its source-destination hop distance).
        resort: the completed second sort (an :class:`FtSortResult`).
        total_time: wasted + rescue + redistribution + resort time.
        victim: the processor that died mid-run.
        strike_phase: index of the phase after which it died.
    """

    sorted_keys: np.ndarray
    wasted_time: float
    rescue_time: float
    redistribution_time: float
    resort: FtSortResult
    victim: int
    strike_phase: int

    @property
    def total_time(self) -> float:
        return (
            self.wasted_time
            + self.rescue_time
            + self.redistribution_time
            + self.resort.elapsed
        )

    @property
    def overhead_vs_oracle(self) -> float:
        """total / resort time: how much dearer than knowing the fault
        up front (>= 1)."""
        return self.total_time / self.resort.elapsed if self.resort.elapsed else 1.0


def sort_with_midrun_fault(
    keys: np.ndarray | list,
    n: int,
    initial_faults: FaultSet | list[int] | tuple[int, ...],
    victim: int,
    strike_phase: int,
    params: MachineParams | None = None,
) -> RecoveryReport:
    """Sort ``keys`` on ``Q_n`` while ``victim`` dies after ``strike_phase``.

    ``initial_faults`` may be a plain list of processor addresses or a full
    :class:`FaultSet` (processor *and* link faults — the paper's static
    scenarios), so mid-run arrival composes with pre-existing faults.  The
    fault model must be *partial* (the victim's memory and links survive —
    the recovery story depends on it); ``victim`` must be a working
    processor of the initial plan and the enlarged fault set must still
    satisfy the paper's model.
    """
    validate_dimension(n)
    validate_address(victim, n)
    params = params if params is not None else MachineParams.ncube7()
    if isinstance(initial_faults, FaultSet):
        if initial_faults.n != n:
            raise ValueError(f"fault set is for Q_{initial_faults.n}, expected Q_{n}")
        if initial_faults.kind is not FaultKind.PARTIAL:
            raise ValueError(
                "mid-run recovery requires the partial fault model "
                "(the victim's memory and links must survive)"
            )
        initial = initial_faults
    else:
        initial = FaultSet(n, initial_faults, kind=FaultKind.PARTIAL)
    if initial.is_faulty(victim):
        raise ValueError(f"victim {victim} is already faulty")
    link_pairs = [(node, node | (1 << dim)) for node, dim in initial.links]
    enlarged = FaultSet(
        n,
        list(initial.processors) + [victim],
        kind=FaultKind.PARTIAL,
        links=link_pairs,
    )
    effective = absorb_link_faults(enlarged) if enlarged.links else enlarged
    if not effective.satisfies_paper_model():
        raise ValueError("the enlarged fault set violates the paper's model")

    # First attempt: run in full to learn its phase structure, then charge
    # only the phases up to the strike point as wasted work.  Passing the
    # FaultSet keeps link faults in play (ftsort absorbs them into
    # designated endpoints for planning).
    first = fault_tolerant_sort(keys, n, initial, params=params)
    if victim not in first.output_order:
        raise ValueError(f"victim {victim} is not a working processor of the plan")
    if not 0 <= strike_phase < len(first.machine.phases):
        raise ValueError(
            f"strike_phase must be in [0, {len(first.machine.phases)}), got {strike_phase}"
        )
    wasted = sum(p.duration for p in first.machine.phases[: strike_phase + 1])

    # Rescue: nearest working survivor pulls the victim's current block.
    # Block size at any phase equals the initial block size (compare-splits
    # preserve block sizes).
    survivors = [p for p in first.output_order if p != victim]
    rescuer = min(survivors, key=lambda p: (hamming_distance(p, victim), p))
    rescue_machine = PhaseMachine(n, params=params, faults=initial)
    with rescue_machine.phase("rescue"):
        # hops=None: fault-aware metric (HD under pure-processor partial
        # faults, shortest surviving path when links have died).
        rescue_machine.charge_transfer(victim, rescuer, first.block_size, hops=None)
    rescue_time = rescue_machine.elapsed

    # Re-plan and redistribute: every key moves from its pre-crash holder
    # to its new initial holder; charge each block transfer at the true
    # hop distance and take the parallel max per (source, destination)
    # round — modeled as one phase (all transfers concurrent, each node's
    # time the sum of its own sends/receives).
    second = fault_tolerant_sort(keys, n, enlarged, params=params)
    redist_machine = PhaseMachine(n, params=params, faults=enlarged)
    old_holders = [p if p != victim else rescuer for p in first.output_order]
    new_holders = list(second.output_order)
    with redist_machine.phase("redistribute"):
        for src, dst in zip(old_holders, new_holders):
            if src == dst:
                continue
            redist_machine.charge_transfer(src, dst, first.block_size, hops=None)
    redistribution_time = redist_machine.elapsed

    return RecoveryReport(
        sorted_keys=second.sorted_keys,
        wasted_time=wasted,
        rescue_time=rescue_time,
        redistribution_time=redistribution_time,
        resort=second,
        victim=victim,
        strike_phase=strike_phase,
    )
