"""Static comparator schedules for the sorting algorithms.

Every sort in this repository is *oblivious*: the sequence of
compare-exchange partners, directions, and mirror swaps depends only on the
machine configuration (dimension, fault plan) — never on key values.  That
makes the whole execution expressible as a static :class:`SortSchedule`,
which two independent backends execute:

* the phase-level engine (:func:`repro.core.ftsort.fault_tolerant_sort`
  executes an equivalent structure directly), and
* the message-passing SPMD machine (:mod:`repro.core.spmd_sort`), where
  every exchange is realized as routed messages on the discrete-event
  simulator.

Having one schedule produced by one builder and executed by both backends
is how the test suite proves the fast phase engine faithfully represents
the distributed execution.

Builders:

* :func:`build_plain_schedule` — fault-free or single-fault full-cube
  bitonic sort (paper Section 2.1).
* :func:`build_ft_schedule` — the full fault-tolerant algorithm for a
  resolved :class:`~repro.core.selection.SelectionResult` (Section 3,
  steps 3-8, two-merge Step 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import SelectionResult
from repro.cube.address import bit_of, validate_address, validate_dimension
from repro.sorting.bitonic_cube import substage_pairs

__all__ = [
    "CxPair",
    "SortSchedule",
    "Substage",
    "build_ft_schedule",
    "build_plain_schedule",
]


@dataclass(frozen=True)
class CxPair:
    """One compare-exchange: ``low`` keeps the smaller half iff ``keep_min``."""

    low: int
    high: int
    keep_min: bool


@dataclass(frozen=True)
class Substage:
    """One barrier-separated parallel step.

    ``kind`` is ``"cx"`` (compare-exchange pairs) or ``"mirror"`` (whole
    blocks swapped between the listed pairs, no comparisons).
    """

    label: str
    kind: str
    pairs: tuple[CxPair, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("cx", "mirror"):
            raise ValueError(f"unknown substage kind {self.kind!r}")
        seen: set[int] = set()
        for p in self.pairs:
            if p.low in seen or p.high in seen or p.low == p.high:
                raise ValueError(f"substage {self.label!r} pairs are not disjoint")
            seen.add(p.low)
            seen.add(p.high)

    def participants(self) -> set[int]:
        """Physical addresses taking part in this substage."""
        out: set[int] = set()
        for p in self.pairs:
            out.add(p.low)
            out.add(p.high)
        return out


@dataclass(frozen=True)
class SortSchedule:
    """A full oblivious sort execution plan.

    Attributes:
        n: hypercube dimension.
        output_order: working processors in block-placement order; chunk
            ``i`` of the input is installed on ``output_order[i]`` and the
            final ascending result is the concatenation of their blocks in
            this order.
        substages: the steps, in execution order.
    """

    n: int
    output_order: tuple[int, ...]
    substages: tuple[Substage, ...]

    @property
    def workers(self) -> int:
        """Number of processors holding keys."""
        return len(self.output_order)

    def comparator_count(self) -> int:
        """Total compare-exchange pairs across all cx substages."""
        return sum(len(s.pairs) for s in self.substages if s.kind == "cx")


def _cx_substage(label: str, entries: list[tuple[int, int, bool]]) -> Substage:
    return Substage(
        label=label, kind="cx", pairs=tuple(CxPair(a, b, k) for a, b, k in entries)
    )


def build_plain_schedule(n: int, faulty: int | None = None) -> SortSchedule:
    """Full-cube block bitonic sort, optionally with one dead processor.

    The fault (if any) is XOR-reindexed to logical 0 and its comparators
    are dropped (the partner "skips", Section 2.1).
    """
    validate_dimension(n)
    mask = 0
    if faulty is not None:
        validate_address(faulty, n)
        mask = faulty
        if n == 0:
            raise ValueError("Q_0 with a fault has no working processor")
    size = 1 << n
    addr_of_logical = [l ^ mask for l in range(size)]
    dead = {0} if faulty is not None else set()
    substages = []
    for i in range(n):
        for j in range(i, -1, -1):
            entries = [
                (addr_of_logical[low], addr_of_logical[high], keep_min)
                for low, high, keep_min in substage_pairs(n, i, j)
                if low not in dead and high not in dead
            ]
            substages.append(_cx_substage(f"bitonic[i={i},j={j}]", entries))
    output_order = tuple(addr_of_logical[l] for l in range(size) if l not in dead)
    return SortSchedule(n=n, output_order=output_order, substages=tuple(substages))


def build_ft_schedule(selection: SelectionResult) -> SortSchedule:
    """The fault-tolerant sort (steps 3-8) as a static schedule.

    Mirrors :func:`repro.core.ftsort.fault_tolerant_sort` in its default
    two-merge mode: initial per-subcube full bitonic sorts (alternating by
    subcube parity), then for every inter-subcube substage one
    compare-exchange step, one side-direction merge pass, and — where the
    Step-8 target direction flips — one mirror step.
    """
    split = selection.split
    m, s = selection.m, selection.s
    if s < 1:
        raise ValueError("fault-tolerant schedule needs subcubes of dimension >= 1")
    p = 1 << s
    dead_w = [split.w_of(d) for d in selection.dead_of_subcube]
    num_subcubes = 1 << m

    def phys(v: int, rho: int) -> int:
        return split.combine(v, rho ^ dead_w[v])

    substages: list[Substage] = []

    def add_intra_sort(ascending: list[bool], label: str) -> None:
        for i in range(s):
            for j in range(i, -1, -1):
                entries: list[tuple[int, int, bool]] = []
                for v in range(num_subcubes):
                    for low, high, keep_min in substage_pairs(
                        s, i, j, descending=not ascending[v]
                    ):
                        if low == 0 or high == 0:
                            continue  # dead processor at reindexed 0
                        entries.append((phys(v, low), phys(v, high), keep_min))
                substages.append(_cx_substage(f"{label}[i={i},j={j}]", entries))

    def add_intra_merge(directions: list[bool], label: str) -> None:
        i = s - 1
        for j in range(i, -1, -1):
            entries = []
            for v in range(num_subcubes):
                for low, high, keep_min in substage_pairs(
                    s, i, j, descending=not directions[v]
                ):
                    if low == 0 or high == 0:
                        continue
                    entries.append((phys(v, low), phys(v, high), keep_min))
            substages.append(_cx_substage(f"{label}[j={j}]", entries))

    # Step 3: initial per-subcube sorts, ascending iff subcube address even.
    ascending = [(v & 1) == 0 for v in range(num_subcubes)]
    add_intra_sort(ascending, "intra-init")

    # Steps 4-8.
    for i in range(m):
        for j in range(i, -1, -1):
            entries = []
            kept_min = [False] * num_subcubes
            for v_low in range(num_subcubes):
                if (v_low >> j) & 1:
                    continue
                v_high = v_low | (1 << j)
                mask = bit_of(v_low, i + 1) if i + 1 < m else 0
                low_keeps_min = mask == 0
                kept_min[v_low] = low_keeps_min
                kept_min[v_high] = not low_keeps_min
                for rho in range(1, p):
                    entries.append(
                        (phys(v_low, rho), phys(v_high, rho), low_keeps_min)
                    )
            substages.append(_cx_substage(f"inter[i={i},j={j}]", entries))

            for v in range(num_subcubes):
                mask_v = bit_of(v, i + 1) if i + 1 < m else 0
                prev_bit = bit_of(v, j - 1) if j >= 1 else 0
                ascending[v] = prev_bit == mask_v
            side_dir = list(kept_min)
            add_intra_merge(side_dir, f"intra[i={i},j={j}]a")
            flips = [v for v in range(num_subcubes) if side_dir[v] != ascending[v]]
            if flips:
                swaps = []
                for v in flips:
                    for rho in range(1, p // 2):
                        swaps.append(CxPair(phys(v, rho), phys(v, p - rho), True))
                substages.append(
                    Substage(label=f"intra[i={i},j={j}]b", kind="mirror", pairs=tuple(swaps))
                )

    output_order = tuple(
        phys(v, rho) for v in range(num_subcubes) for rho in range(1, p)
    )
    return SortSchedule(n=selection.n, output_order=output_order, substages=tuple(substages))
