"""Static comparator schedules for the sorting algorithms.

Every sort in this repository is *oblivious*: the sequence of
compare-exchange partners, directions, and mirror swaps depends only on the
machine configuration (dimension, fault plan) — never on key values.  That
makes the whole execution expressible as a static :class:`SortSchedule`,
which two independent backends execute:

* the phase-level engine (:func:`repro.core.ftsort.fault_tolerant_sort`
  executes an equivalent structure directly), and
* the message-passing SPMD machine (:mod:`repro.core.spmd_sort`), where
  every exchange is realized as routed messages on the discrete-event
  simulator.

Having one schedule produced by one builder and executed by both backends
is how the test suite proves the fast phase engine faithfully represents
the distributed execution.

Builders:

* :func:`build_plain_schedule` — fault-free or single-fault full-cube
  bitonic sort (paper Section 2.1).
* :func:`build_ft_schedule` — the full fault-tolerant algorithm for a
  resolved :class:`~repro.core.selection.SelectionResult` (Section 3,
  steps 3-8, two-merge Step 8).

Lowering:

:func:`lower_schedule` compiles a schedule into a :class:`CompiledSchedule`
— per-substage index arrays over a single ``(workers, block)`` key matrix —
which :func:`repro.kernels.compiled.run_schedule_compiled` executes as a
handful of numpy operations per substage (the ``--kernels compiled`` tier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.selection import SelectionResult
from repro.cube.address import bit_of, hamming_distance, validate_address, validate_dimension
from repro.sorting.bitonic_cube import substage_pairs

__all__ = [
    "CompiledSchedule",
    "CompiledSubstage",
    "CxPair",
    "SortSchedule",
    "Substage",
    "build_ft_schedule",
    "build_plain_schedule",
    "lower_schedule",
]


@dataclass(frozen=True)
class CxPair:
    """One paired step between two processors.

    In a ``"cx"`` substage this is a compare-exchange: ``low`` keeps the
    smaller half of the union iff ``keep_min`` (a real bool).  In a
    ``"mirror"`` substage the two sides swap whole blocks without comparing
    anything, so there is no min-keeper and ``keep_min`` must be ``None`` —
    mirror traffic is accounted (elements, hops, messages) but contributes
    zero comparisons.
    """

    low: int
    high: int
    keep_min: bool | None


@dataclass(frozen=True)
class Substage:
    """One barrier-separated parallel step.

    ``kind`` is ``"cx"`` (compare-exchange pairs) or ``"mirror"`` (whole
    blocks swapped between the listed pairs, no comparisons).

    ``uniform_hops`` is the hop count every pair of this substage is charged
    (1 when logical neighbors are physical neighbors, as with any XOR
    reindexing); ``None`` means the hop count is pair-dependent and must
    come from the executing machine's fault-aware metric (inter-subcube
    exchanges, mirror swaps).
    """

    label: str
    kind: str
    pairs: tuple[CxPair, ...]
    uniform_hops: int | None = 1

    def __post_init__(self) -> None:
        if self.kind not in ("cx", "mirror"):
            raise ValueError(f"unknown substage kind {self.kind!r}")
        seen: set[int] = set()
        for p in self.pairs:
            if p.low in seen or p.high in seen or p.low == p.high:
                raise ValueError(f"substage {self.label!r} pairs are not disjoint")
            if self.kind == "cx" and not isinstance(p.keep_min, bool):
                raise ValueError(
                    f"cx substage {self.label!r} needs a bool keep_min, got {p.keep_min!r}"
                )
            if self.kind == "mirror" and p.keep_min is not None:
                raise ValueError(
                    f"mirror substage {self.label!r} pairs must have keep_min=None "
                    "(a block swap has no min-keeper)"
                )
            seen.add(p.low)
            seen.add(p.high)

    def participants(self) -> set[int]:
        """Physical addresses taking part in this substage."""
        out: set[int] = set()
        for p in self.pairs:
            out.add(p.low)
            out.add(p.high)
        return out


@dataclass(frozen=True)
class SortSchedule:
    """A full oblivious sort execution plan.

    Attributes:
        n: hypercube dimension.
        output_order: working processors in block-placement order; chunk
            ``i`` of the input is installed on ``output_order[i]`` and the
            final ascending result is the concatenation of their blocks in
            this order.
        substages: the steps, in execution order.
    """

    n: int
    output_order: tuple[int, ...]
    substages: tuple[Substage, ...]

    @property
    def workers(self) -> int:
        """Number of processors holding keys."""
        return len(self.output_order)

    def comparator_count(self) -> int:
        """Total compare-exchange pairs across all cx substages.

        Mirror substages are excluded *by definition* — a mirror swap
        performs zero comparisons.  Their traffic is accounted separately:
        see :meth:`mirror_pair_count` and :meth:`worst_case_elements`.
        """
        return sum(len(s.pairs) for s in self.substages if s.kind == "cx")

    def mirror_pair_count(self) -> int:
        """Total block-swap pairs across all mirror substages."""
        return sum(len(s.pairs) for s in self.substages if s.kind == "mirror")

    def worst_case_elements(self, block_size: int) -> int:
        """Worst-case total element traffic for a run with this block size.

        Every cx pair ships 2 probe keys plus — when the probe does not
        skip — the full half-exchange both ways (``2 * block_size``
        elements); every mirror pair always swaps whole blocks
        (``2 * block_size``).  An actual run's
        ``machine.total_elements_sent()`` equals this minus
        ``2 * block_size`` per probe-skipped cx pair — the identity the
        honest-accounting tests pin down.  Zero when ``block_size`` is 0
        (empty blocks move nothing, probes included).
        """
        if block_size < 0:
            raise ValueError(f"block_size must be non-negative, got {block_size}")
        if block_size == 0:
            return 0
        cx = self.comparator_count()
        return cx * (2 + 2 * block_size) + self.mirror_pair_count() * 2 * block_size


def _cx_substage(
    label: str, entries: list[tuple[int, int, bool]], uniform_hops: int | None = 1
) -> Substage:
    return Substage(
        label=label,
        kind="cx",
        pairs=tuple(CxPair(a, b, k) for a, b, k in entries),
        uniform_hops=uniform_hops,
    )


def build_plain_schedule(n: int, faulty: int | None = None) -> SortSchedule:
    """Full-cube block bitonic sort, optionally with one dead processor.

    The fault (if any) is XOR-reindexed to logical 0 and its comparators
    are dropped (the partner "skips", Section 2.1).
    """
    validate_dimension(n)
    mask = 0
    if faulty is not None:
        validate_address(faulty, n)
        mask = faulty
        if n == 0:
            raise ValueError("Q_0 with a fault has no working processor")
    size = 1 << n
    addr_of_logical = [l ^ mask for l in range(size)]
    dead = {0} if faulty is not None else set()
    substages = []
    for i in range(n):
        for j in range(i, -1, -1):
            entries = [
                (addr_of_logical[low], addr_of_logical[high], keep_min)
                for low, high, keep_min in substage_pairs(n, i, j)
                if low not in dead and high not in dead
            ]
            substages.append(_cx_substage(f"bitonic[i={i},j={j}]", entries))
    output_order = tuple(addr_of_logical[l] for l in range(size) if l not in dead)
    return SortSchedule(n=n, output_order=output_order, substages=tuple(substages))


def build_ft_schedule(selection: SelectionResult) -> SortSchedule:
    """The fault-tolerant sort (steps 3-8) as a static schedule.

    Mirrors :func:`repro.core.ftsort.fault_tolerant_sort` in its default
    two-merge mode: initial per-subcube full bitonic sorts (alternating by
    subcube parity), then for every inter-subcube substage one
    compare-exchange step, one side-direction merge pass, and — where the
    Step-8 target direction flips — one mirror step.
    """
    split = selection.split
    m, s = selection.m, selection.s
    if s < 1:
        raise ValueError("fault-tolerant schedule needs subcubes of dimension >= 1")
    p = 1 << s
    dead_w = [split.w_of(d) for d in selection.dead_of_subcube]
    num_subcubes = 1 << m

    def phys(v: int, rho: int) -> int:
        return split.combine(v, rho ^ dead_w[v])

    substages: list[Substage] = []

    def add_intra_sort(ascending: list[bool], label: str) -> None:
        for i in range(s):
            for j in range(i, -1, -1):
                entries: list[tuple[int, int, bool]] = []
                for v in range(num_subcubes):
                    for low, high, keep_min in substage_pairs(
                        s, i, j, descending=not ascending[v]
                    ):
                        if low == 0 or high == 0:
                            continue  # dead processor at reindexed 0
                        entries.append((phys(v, low), phys(v, high), keep_min))
                substages.append(_cx_substage(f"{label}[i={i},j={j}]", entries))

    def add_intra_merge(directions: list[bool], label: str) -> None:
        i = s - 1
        for j in range(i, -1, -1):
            entries = []
            for v in range(num_subcubes):
                for low, high, keep_min in substage_pairs(
                    s, i, j, descending=not directions[v]
                ):
                    if low == 0 or high == 0:
                        continue
                    entries.append((phys(v, low), phys(v, high), keep_min))
            substages.append(_cx_substage(f"{label}[j={j}]", entries))

    # Step 3: initial per-subcube sorts, ascending iff subcube address even.
    ascending = [(v & 1) == 0 for v in range(num_subcubes)]
    add_intra_sort(ascending, "intra-init")

    # Steps 4-8.
    for i in range(m):
        for j in range(i, -1, -1):
            entries = []
            kept_min = [False] * num_subcubes
            for v_low in range(num_subcubes):
                if (v_low >> j) & 1:
                    continue
                v_high = v_low | (1 << j)
                mask = bit_of(v_low, i + 1) if i + 1 < m else 0
                low_keeps_min = mask == 0
                kept_min[v_low] = low_keeps_min
                kept_min[v_high] = not low_keeps_min
                for rho in range(1, p):
                    entries.append(
                        (phys(v_low, rho), phys(v_high, rho), low_keeps_min)
                    )
            # uniform_hops=None: corresponding reindexed processors are
            # generally not neighbors — hops come from the machine's
            # fault-aware metric (1 + HD of dead-w under partial faults).
            substages.append(
                _cx_substage(f"inter[i={i},j={j}]", entries, uniform_hops=None)
            )

            for v in range(num_subcubes):
                mask_v = bit_of(v, i + 1) if i + 1 < m else 0
                prev_bit = bit_of(v, j - 1) if j >= 1 else 0
                ascending[v] = prev_bit == mask_v
            side_dir = list(kept_min)
            add_intra_merge(side_dir, f"intra[i={i},j={j}]a")
            flips = [v for v in range(num_subcubes) if side_dir[v] != ascending[v]]
            if flips:
                swaps = []
                for v in flips:
                    for rho in range(1, p // 2):
                        swaps.append(CxPair(phys(v, rho), phys(v, p - rho), None))
                substages.append(
                    Substage(
                        label=f"intra[i={i},j={j}]b",
                        kind="mirror",
                        pairs=tuple(swaps),
                        uniform_hops=None,
                    )
                )

    output_order = tuple(
        phys(v, rho) for v in range(num_subcubes) for rho in range(1, p)
    )
    return SortSchedule(n=selection.n, output_order=output_order, substages=tuple(substages))


# -- lowering ---------------------------------------------------------------


def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


@dataclass(frozen=True)
class CompiledSubstage:
    """One substage lowered to flat index arrays over the key matrix.

    For ``kind == "cx"``, row ``a_rows[t]`` keeps the smaller half of its
    union with row ``b_rows[t]`` — the low/high vs min/max orientation of
    the source :class:`CxPair` is already resolved, so the executor needs no
    keep_min branching.  For ``kind == "mirror"``, the two rows swap whole
    blocks.  ``hops[t]`` is the routing distance the pair's transfers are
    charged over.  All arrays are read-only (compiled programs are cached
    and shared across runs).
    """

    label: str
    kind: str
    a_rows: np.ndarray
    b_rows: np.ndarray
    hops: np.ndarray


@dataclass(frozen=True)
class CompiledSchedule:
    """A :class:`SortSchedule` lowered to a flat array program.

    Execution state is one ``(workers, block)`` float matrix whose row
    ``t`` is the block of processor ``output_order[t]``; every substage is
    a gather/compute/scatter over that matrix (see
    :func:`repro.kernels.compiled.run_schedule_compiled`).
    """

    n: int
    output_order: tuple[int, ...]
    substages: tuple[CompiledSubstage, ...]

    @property
    def workers(self) -> int:
        return len(self.output_order)


def lower_schedule(schedule: SortSchedule, hops_of=None) -> CompiledSchedule:
    """Lower ``schedule`` into per-substage index arrays.

    Args:
        schedule: the source schedule; every pair endpoint must appear in
            ``schedule.output_order``.
        hops_of: ``f(addr_a, addr_b) -> int`` routing metric for substages
            with ``uniform_hops=None`` (pass the executing machine's
            fault-aware :meth:`~repro.simulator.phases.PhaseMachine.hops`).
            Defaults to the Hamming distance — exact whenever no detours
            are needed (partial faults, no link faults).

    The result depends only on ``(schedule, hop metric)``, making it a
    cacheable artifact: :func:`repro.plancache.cache.cached_compiled_program`
    keys it like the schedule plus the fault set only when the metric is
    fault-dependent.
    """
    if hops_of is None:
        hops_of = hamming_distance
    row = {addr: t for t, addr in enumerate(schedule.output_order)}
    lowered = []
    for sub in schedule.substages:
        a_idx: list[int] = []
        b_idx: list[int] = []
        for pair in sub.pairs:
            if sub.kind == "cx" and not pair.keep_min:
                a_idx.append(row[pair.high])
                b_idx.append(row[pair.low])
            else:
                a_idx.append(row[pair.low])
                b_idx.append(row[pair.high])
        count = len(a_idx)
        if sub.uniform_hops is not None:
            hops = np.full(count, sub.uniform_hops, dtype=np.int64)
        else:
            hops = np.fromiter(
                (hops_of(p.low, p.high) for p in sub.pairs), dtype=np.int64, count=count
            )
        lowered.append(
            CompiledSubstage(
                label=sub.label,
                kind=sub.kind,
                a_rows=_frozen(np.asarray(a_idx, dtype=np.intp)),
                b_rows=_frozen(np.asarray(b_idx, dtype=np.intp)),
                hops=_frozen(hops),
            )
        )
    return CompiledSchedule(
        n=schedule.n, output_order=schedule.output_order, substages=tuple(lowered)
    )
