"""Selecting ``D_β`` from Ψ and determining dangling processors (Section 3).

After the partition algorithm produces the cutting set ``Ψ``, the sort must
pick one sequence.  Different sequences reindex the subcubes differently,
and *corresponding reindexed processors* of neighboring subcubes may no
longer be physical neighbors: the extra hop count between them equals the
Hamming distance of the two subcubes' faulty processors' local addresses
(``w`` parts).  The paper estimates the total extra overhead of a sequence
as ``sum_{i=0}^{m-1} max(h_i)`` — for each subcube-level dimension ``i``,
the worst pair of *faulty* subcubes adjacent along ``i`` — and selects the
``D_β`` minimizing it (Eq. 1).

A *dangling* processor is then chosen in every fault-free subcube so all
subcubes carry the same workload: the local address ``w`` that occurs most
frequently among the faulty processors is used everywhere (majority vote,
ties to the smallest ``w``), so dangling positions align with fault
positions and pairs of dead processors simply skip their exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.cube.address import hamming_distance, validate_dimension
from repro.cube.subcube import AddressSplit
from repro.faults.model import FaultSet
from repro.core.partition import PartitionResult, is_single_fault_partition

__all__ = [
    "SelectionResult",
    "choose_dangling_w",
    "extra_comm_cost",
    "select_cut_sequence",
]


def _fault_addresses(n: int, faults: FaultSet | Sequence[int]) -> tuple[int, ...]:
    if isinstance(faults, FaultSet):
        if faults.n != n:
            raise ValueError(f"fault set is for Q_{faults.n}, expected Q_{n}")
        return faults.processors
    return tuple(sorted({int(f) for f in faults}))


def fault_of_subcube(
    n: int, cut_dims: Sequence[int], faults: FaultSet | Sequence[int]
) -> dict[int, int]:
    """Map subcube address ``v`` to its faulty processor (faulty subcubes only).

    Requires ``cut_dims`` to be a single-fault partition of the faults.
    """
    addrs = _fault_addresses(n, faults)
    if not is_single_fault_partition(n, cut_dims, addrs):
        raise ValueError(
            f"cut dims {tuple(cut_dims)} do not single-fault-partition faults {list(addrs)}"
        )
    split = AddressSplit(n, cut_dims)
    return {split.v_of(f): f for f in addrs}


def extra_comm_cost(
    n: int, cut_dims: Sequence[int], faults: FaultSet | Sequence[int]
) -> int:
    """Eq. (1) objective: ``sum_i max(h_i)`` for one cutting sequence.

    ``h_i`` ranges over pairs of subcubes adjacent along subcube-dimension
    ``i`` in which *both* sides contain a fault; its value is the Hamming
    distance of the two faults' ``w`` (local) addresses.  Dimensions with no
    faulty pair contribute 0 (a fault-free side's dangling processor can be
    aligned for free).
    """
    validate_dimension(n)
    split = AddressSplit(n, cut_dims)
    by_v = fault_of_subcube(n, cut_dims, faults)
    total = 0
    for i in range(split.m):
        worst = 0
        for v, f in by_v.items():
            if (v >> i) & 1:
                continue  # count each pair once, from the v_i = 0 side
            peer = v | (1 << i)
            if peer in by_v:
                h = hamming_distance(split.w_of(f), split.w_of(by_v[peer]))
                worst = max(worst, h)
        total += worst
    return total


def choose_dangling_w(
    n: int, cut_dims: Sequence[int], faults: FaultSet | Sequence[int]
) -> int:
    """The dangling local address: most frequent fault ``w``, ties smallest.

    Every fault-free subcube idles the processor whose local address equals
    the returned ``w``, aligning dead positions across subcubes (the
    paper's heuristic for discarding dead-to-dead communication).
    """
    split = AddressSplit(n, cut_dims)
    addrs = _fault_addresses(n, faults)
    if not addrs:
        return 0
    counts: dict[int, int] = {}
    for f in addrs:
        w = split.w_of(f)
        counts[w] = counts.get(w, 0) + 1
    best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
    return best[0]


@dataclass(frozen=True)
class SelectionResult:
    """A fully resolved partition plan for the fault-tolerant sort.

    Attributes:
        n: hypercube dimension.
        cut_dims: the selected ``D_β``.
        cost: its Eq.-(1) extra-communication cost.
        faults: faulty processor addresses.
        dangling_w: the local address idled in fault-free subcubes.
        dead_of_subcube: per subcube address ``v``, the global address of
            its dead processor (the fault, or the dangling processor).
    """

    n: int
    cut_dims: tuple[int, ...]
    cost: int
    faults: tuple[int, ...]
    dangling_w: int
    dead_of_subcube: tuple[int, ...]

    @property
    def m(self) -> int:
        """Number of cutting dimensions."""
        return len(self.cut_dims)

    @property
    def s(self) -> int:
        """Dimension of each subcube."""
        return self.n - self.m

    @property
    def split(self) -> AddressSplit:
        """The ``v``/``w`` address split of ``D_β``."""
        return AddressSplit(self.n, self.cut_dims)

    @property
    def dangling_processors(self) -> tuple[int, ...]:
        """Global addresses of the dangling processors (fault-free subcubes)."""
        fset = set(self.faults)
        return tuple(sorted(d for d in self.dead_of_subcube if d not in fset))

    @property
    def working_processors(self) -> int:
        """``N' = 2**n - 2**m``."""
        return (1 << self.n) - (1 << self.m)


def select_cut_sequence(
    partition: PartitionResult, faults: FaultSet | Sequence[int] | None = None
) -> SelectionResult:
    """Resolve a :class:`PartitionResult` into a concrete plan.

    Evaluates Eq. (1) on every sequence in Ψ, picks the minimizer (first in
    DFS order on ties, as in the paper's Example 2 which "may select
    ``D_1``"), then fixes the dangling ``w`` by majority vote and
    materializes every subcube's dead processor address.
    """
    n = partition.n
    addrs = partition.faults if faults is None else _fault_addresses(n, faults)
    best_dims: tuple[int, ...] | None = None
    best_cost = 0
    for dims in partition.cutting_set:
        c = extra_comm_cost(n, dims, addrs)
        if best_dims is None or c < best_cost:
            best_dims, best_cost = dims, c
    assert best_dims is not None, "cutting set is never empty"
    split = AddressSplit(n, best_dims)
    dangling_w = choose_dangling_w(n, best_dims, addrs)
    by_v = fault_of_subcube(n, best_dims, addrs)
    dead = tuple(
        by_v[v] if v in by_v else split.combine(v, dangling_w)
        for v in range(1 << split.m)
    )
    return SelectionResult(
        n=n,
        cut_dims=best_dims,
        cost=best_cost,
        faults=tuple(addrs),
        dangling_w=dangling_w,
        dead_of_subcube=dead,
    )
