"""Bitonic sorting on a hypercube with at most one faulty processor (§2.1).

The paper's first observation: the bitonic sorting algorithm still works on
``Q_n`` with one faulty processor.  Distribute the ``M`` keys over the
``N - 1`` normal processors, treat the faulty processor as a dead node that
holds nothing, and let its compare-exchange partner skip the operation.
If the fault is not at address 0, XOR-reindex every processor with the
fault's address — the XOR relabeling maps hypercube neighbors to neighbors,
so the communication pattern is unchanged and the result lands sorted in
*reindexed* address order with the dead node first.

:func:`fault_free_bitonic_sort` is the ``r = 0`` special case (the plain
parallel bitonic sort, also used by the maximal fault-free subcube
baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import pad_and_chunk, strip_padding
from repro.cube.address import validate_address, validate_dimension
from repro.faults.model import FaultSet
from repro.kernels import resolve_backend
from repro.obs.spans import NULL_TRACER, PID_SIM, TID_ALGO
from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine
from repro.sorting.bitonic_cube import block_bitonic_sort
from repro.sorting.heapsort import heapsort_comparisons_worst_case

__all__ = ["SingleFaultSortResult", "single_fault_bitonic_sort", "fault_free_bitonic_sort"]


@dataclass(frozen=True)
class SingleFaultSortResult:
    """Outcome of a (single-fault or fault-free) hypercube bitonic sort.

    Attributes:
        sorted_keys: the input keys in ascending order (padding stripped).
        elapsed: simulated execution time (machine cost units).
        output_order: physical addresses in output (reindexed) order; the
            concatenation of their blocks is the ascending result.
        machine: the phase machine (holds final blocks and cost breakdown).
        block_size: keys per working processor (after padding).
    """

    sorted_keys: np.ndarray
    elapsed: float
    output_order: tuple[int, ...]
    machine: PhaseMachine
    block_size: int


def local_sort_blocks(
    machine: PhaseMachine,
    assignments: dict[int, np.ndarray],
    label: str = "local-heapsort",
    exact_counts: bool = False,
    kernels=None,
) -> None:
    """Install and locally sort each processor's block, charging step-3 cost.

    Args:
        machine: target machine.
        assignments: physical address -> unsorted block.
        label: phase label.
        exact_counts: count comparisons by actually running the
            from-scratch heapsort (exact, slower); otherwise charge the
            paper's worst-case formula (the paper's own analysis charges
            the worst case) and only sort values.
        kernels: kernel backend (or name); ``None`` uses the process
            default.  A batched backend sorts every equal-size block in
            one 2-D operation — with ``exact_counts``, via the masked
            vectorized heapsort whose per-block counts match the scalar
            reference exactly.
    """
    kern = resolve_backend(kernels)
    with machine.phase(label):
        live: list[tuple[int, np.ndarray]] = []
        for addr, block in assignments.items():
            if block.size == 0:
                machine.set_block(addr, block)
            else:
                live.append((addr, block))
        sizes = {b.size for _, b in live}
        if kern.batched and len(live) > 1 and len(sizes) == 1:
            stacked = np.stack([b for _, b in live])
            if exact_counts:
                rows, counts = kern.sort_blocks_counted(stacked)
            else:
                rows = kern.sort_blocks(stacked)
                counts = [heapsort_comparisons_worst_case(int(b.size)) for _, b in live]
            for t, (addr, _) in enumerate(live):
                machine.set_block(addr, rows[t])
                machine.charge_compute(addr, int(counts[t]))
        else:
            for addr, block in live:
                if exact_counts:
                    sorted_block, comps = kern.sort_block_counted(block)
                    comps = int(comps)
                else:
                    sorted_block = kern.sort_block(block)
                    comps = heapsort_comparisons_worst_case(int(block.size))
                machine.set_block(addr, sorted_block)
                machine.charge_compute(addr, comps)


def _run_cube_sort_compiled(
    keys: np.ndarray | list,
    n: int,
    faulty: int | None,
    params: MachineParams | None,
    exact_counts: bool,
    obs,
) -> SingleFaultSortResult:
    """The r <= 1 cube sort through the compiled flat-array tier.

    Same result object, phase records, clock, and obs counters as the
    interpreted path — just executed from the cached plain schedule's
    lowered program (see :mod:`repro.kernels.compiled`).
    """
    from repro.kernels.compiled import run_schedule_compiled
    from repro.plancache.cache import cached_plain_schedule

    fault_set = FaultSet(n, () if faulty is None else (faulty,))
    schedule = cached_plain_schedule(n, faulty)
    sorted_keys, machine, block_size = run_schedule_compiled(
        schedule,
        keys,
        fault_set,
        params=params,
        obs=obs,
        exact_counts=exact_counts,
        cache_kind="plain",
        cache_key=(n, faulty),
    )
    if obs.enabled:
        obs.name_thread(TID_ALGO, "algorithm steps", pid=PID_SIM)
        t_local = machine.phases[0].duration if machine.phases else 0.0
        obs.complete("step3a:local-heapsort", ts=0.0, dur=t_local,
                     cat="step", pid=PID_SIM, tid=TID_ALGO)
        obs.complete("step3b:bitonic", ts=t_local, dur=machine.elapsed - t_local,
                     cat="step", pid=PID_SIM, tid=TID_ALGO)
        obs.complete("ftsort", ts=0.0, dur=machine.elapsed, cat="step",
                     pid=PID_SIM, tid=TID_ALGO,
                     args={"n": n, "r": fault_set.r, "keys": int(np.asarray(keys).size)})
    return SingleFaultSortResult(
        sorted_keys=sorted_keys,
        elapsed=machine.elapsed,
        output_order=schedule.output_order,
        machine=machine,
        block_size=block_size,
    )


def _run_cube_sort(
    keys: np.ndarray | list,
    n: int,
    faulty: int | None,
    params: MachineParams | None,
    exact_counts: bool,
    obs=None,
    kernels=None,
) -> SingleFaultSortResult:
    validate_dimension(n)
    obs = obs if obs is not None else NULL_TRACER
    kern = resolve_backend(kernels)
    if kern.schedule_compiled:
        return _run_cube_sort_compiled(keys, n, faulty, params, exact_counts, obs)
    size = 1 << n
    fault_set = FaultSet(n, () if faulty is None else (faulty,))
    machine = PhaseMachine(n, params=params, faults=fault_set, obs=obs)
    mask = 0 if faulty is None else faulty
    # Logical position l lives on physical node l XOR mask; the fault sits
    # at logical 0 and is skipped.
    addr_of_logical = [l ^ mask for l in range(size)]
    dead_logical = frozenset() if faulty is None else frozenset({0})
    workers = size - (0 if faulty is None else 1)
    keys_arr = np.asarray(keys, dtype=float)
    chunks, block_size = pad_and_chunk(keys_arr, workers)
    assignments: dict[int, np.ndarray] = {}
    chunk_iter = iter(chunks)
    for l in range(size):
        if l in dead_logical:
            continue
        assignments[addr_of_logical[l]] = next(chunk_iter)
    obs = obs if obs is not None else NULL_TRACER
    if obs.enabled:
        obs.name_thread(TID_ALGO, "algorithm steps", pid=PID_SIM)
    t0 = machine.elapsed
    local_sort_blocks(machine, assignments, exact_counts=exact_counts, kernels=kernels)
    if obs.enabled:
        obs.complete("step3a:local-heapsort", ts=t0, dur=machine.elapsed - t0,
                     cat="step", pid=PID_SIM, tid=TID_ALGO)
    t0 = machine.elapsed
    block_bitonic_sort(machine, addr_of_logical, dead_logical=dead_logical, kernels=kernels)
    if obs.enabled:
        obs.complete("step3b:bitonic", ts=t0, dur=machine.elapsed - t0,
                     cat="step", pid=PID_SIM, tid=TID_ALGO)
        obs.complete("ftsort", ts=0.0, dur=machine.elapsed, cat="step",
                     pid=PID_SIM, tid=TID_ALGO,
                     args={"n": n, "r": fault_set.r, "keys": int(np.asarray(keys).size)})
    output_order = tuple(addr_of_logical[l] for l in range(size) if l not in dead_logical)
    gathered = np.concatenate([machine.get_block(a) for a in output_order]) if workers else np.empty(0)
    sorted_keys = strip_padding(gathered, int(keys_arr.size))
    return SingleFaultSortResult(
        sorted_keys=sorted_keys,
        elapsed=machine.elapsed,
        output_order=output_order,
        machine=machine,
        block_size=block_size,
    )


def single_fault_bitonic_sort(
    keys: np.ndarray | list,
    n: int,
    faulty: int,
    params: MachineParams | None = None,
    exact_counts: bool = False,
    obs=None,
    kernels=None,
) -> SingleFaultSortResult:
    """Sort ``keys`` on ``Q_n`` with one faulty processor (paper §2.1).

    Args:
        keys: finite keys, any order.
        n: hypercube dimension (``n >= 1`` so a normal processor exists).
        faulty: address of the faulty processor.
        params: machine cost constants (default NCUBE/7).
        exact_counts: charge exact heapsort comparison counts for the local
            sorts instead of the paper's worst-case formula.
        kernels: kernel backend (or name); ``None`` = process default.

    Returns:
        :class:`SingleFaultSortResult`; ``output_order`` starts at the
        fault's lowest reindexed neighbor and the dead node holds no keys.
    """
    validate_dimension(n)
    if n == 0:
        raise ValueError("Q_0 with a fault has no working processor")
    validate_address(faulty, n)
    return _run_cube_sort(keys, n, faulty, params, exact_counts, obs=obs, kernels=kernels)


def fault_free_bitonic_sort(
    keys: np.ndarray | list,
    n: int,
    params: MachineParams | None = None,
    exact_counts: bool = False,
    obs=None,
    kernels=None,
) -> SingleFaultSortResult:
    """Plain parallel block bitonic sort on a fault-free ``Q_n``.

    The thick-line baseline of the paper's Figure 7 (sorting on the
    maximal fault-free subcube) is this routine run on a smaller cube.
    """
    return _run_cube_sort(keys, n, None, params, exact_counts, obs=obs, kernels=kernels)
