"""Message-passing (SPMD) execution of the sorting schedules.

This is the full-fidelity realization of the paper's algorithm: every
processor runs its own program on the discrete-event machine
(:class:`repro.simulator.spmd.SpmdMachine`), holding only its local block
and exchanging real routed messages — the half-traffic compare-split
protocol of Section 2.1/Step 7 at the message level:

1. *probe*: partners swap one boundary key and both decide (with the same
   comparison) whether any payload must move;
2. *halves*: the low partner sends its bottom ``ceil(k/2)`` keys, the high
   partner its bottom ``floor(k/2)``; each side compares the keys it now
   holds pairwise (``a_i`` against ``b_{k-1-i}``);
3. *returns*: the losers travel back and each side merges its two runs.

Link contention, store-and-forward hops, fault-aware routing (VERTEX-style
pass-through for partial faults, adaptive detours for total faults) all
come from the event engine — nothing is abstracted.  The test suite runs
the same :class:`~repro.core.schedule.SortSchedule` through this backend
and through the phase engine and demands identical sorted output, which is
the cross-validation DESIGN.md promises.

``--kernels compiled`` has no whole-schedule fast path here: the SPMD
engine's point is per-processor message fidelity, which a flattened
key-matrix program would bypass.  The compiled backend therefore degrades
gracefully — it inherits the numpy backend's block primitives (local
sorts, compare-splits), and results stay identical to ``numpy``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import pad_and_chunk, strip_padding
from repro.core.ftsort import plan_partition
from repro.faults.injectors import active_comparison
from repro.core.schedule import SortSchedule
from repro.cube.address import validate_dimension
from repro.plancache.cache import cached_ft_schedule, cached_plain_schedule
from repro.faults.linkplan import absorb_link_faults
from repro.faults.model import FaultKind, FaultSet
from repro.kernels import resolve_backend
from repro.simulator.params import MachineParams
from repro.simulator.spmd import Proc, SpmdMachine

__all__ = ["SpmdSortResult", "run_schedule_spmd", "spmd_fault_tolerant_sort"]


@dataclass(frozen=True)
class SpmdSortResult:
    """Outcome of a message-level sort run.

    Attributes:
        sorted_keys: the input keys in ascending order.
        finish_time: simulated completion time (max over processor clocks).
        machine: the SPMD machine (per-rank clocks, engine statistics).
        schedule: the executed schedule.
        blocks: final block of every working processor.
    """

    sorted_keys: np.ndarray
    finish_time: float
    machine: SpmdMachine
    schedule: SortSchedule
    blocks: dict[int, np.ndarray]


def _cx_program_step(proc: Proc, block: np.ndarray, partner: int, i_am_low: bool,
                     keep_min: bool, tag_base: int):
    """Generator fragment: one compare-exchange with ``partner``.

    Returns the rank's new block.  ``keep_min`` refers to the *low* side;
    the high side keeps the complement.
    """
    k = int(block.size)
    obs = proc.obs
    # Leg 0 — probe.
    my_boundary = float(block[-1] if (i_am_low == keep_min) else block[0])
    yield proc.send(partner, payload=my_boundary, size=1, tag=tag_base)
    other_boundary = yield proc.recv(src=partner, tag=tag_base)
    yield proc.compute(1)
    if obs.enabled:
        obs.metrics.inc("sort.messages")
    if i_am_low == keep_min:
        # I keep the small side: skip if my max <= partner's min.
        skip = my_boundary <= other_boundary
    else:
        skip = other_boundary <= my_boundary
    inj = active_comparison()
    if inj is not None and inj.flip_one(
        my_boundary, other_boundary, kind="probe", record=i_am_low
    ):
        # Lying probe comparator: the flip hash is symmetric in the two
        # boundary keys, so both partners reach the same wrong verdict —
        # no protocol divergence, just a misrouted (or spurious) exchange.
        # Only the low side records the lie, mirroring the pair's logical
        # counters.
        skip = not skip
    if skip:
        # The pair's logical counters are recorded once, on the low side.
        if obs.enabled and i_am_low:
            obs.metrics.inc("sort.cx.skipped")
        return block

    # Leg 1 — halves.  Pairing: low_i against high_{k-1-i}.  The low side
    # evaluates pairs i in [h, k) (needs high's bottom k-h keys), the high
    # side pairs i in [0, h) (needs low's bottom h keys).
    h = (k + 1) // 2
    if i_am_low:
        send_part = block[:h]
        keep_part = block[h:]
    else:
        send_part = block[: k - h]
        keep_part = block[k - h :]
    # Payloads are zero-copy views: every consumer treats message arrays as
    # read-only (kernels return fresh arrays; blocks are rebound, never
    # written through), so slices of the live block ship as-is.
    yield proc.send(partner, payload=send_part, size=int(send_part.size), tag=tag_base + 1)
    received = yield proc.recv(src=partner, tag=tag_base + 1)
    if obs.enabled:
        obs.metrics.inc("sort.messages")

    # Pairwise comparisons.  For the low side: my keep_part is a[h:k]
    # ascending; partner's bottom is b[0:k-h] ascending; pair a_i with
    # b_{k-1-i} — the kernel reverses the received run internally and
    # hands back both winners and losers as ascending runs.
    mine = keep_part
    yield proc.compute(int(mine.size))
    winners_are_min = keep_min if i_am_low else not keep_min
    winners, losers = proc.kernels.cx_winners_losers(
        mine, np.asarray(received), winners_are_min
    )

    # Leg 2 — return the losers; receive the partner's losers.
    yield proc.send(partner, payload=losers, size=int(losers.size), tag=tag_base + 2)
    returned = yield proc.recv(src=partner, tag=tag_base + 2)
    if obs.enabled:
        obs.metrics.inc("sort.messages")
        if i_am_low:
            obs.metrics.inc("sort.cx.executed")

    merged = proc.kernels.merge_runs(winners, np.asarray(returned))
    yield proc.compute(max(int(merged.size) - 1, 0))  # step 7(c) merge
    return merged


def _make_program(schedule: SortSchedule, blocks: dict[int, np.ndarray], kernels=None):
    """Build the per-rank SPMD program executing ``schedule``.

    ``blocks`` maps rank -> initial unsorted block and is updated in place
    with the final blocks (the harness reads it after the run).  The local
    sorts (paper step 3, exact heapsort counts) are precomputed here — all
    blocks share one size, so a batched backend runs them as a single 2-D
    operation; each program charges its own exact count at the same point
    of its timeline as before.
    """
    kern = resolve_backend(kernels)
    live_ranks = [rank for rank in sorted(blocks) if blocks[rank].size]
    sizes = {blocks[rank].size for rank in live_ranks}
    local: dict[int, tuple[np.ndarray, int]] = {}
    if kern.batched and len(live_ranks) > 1 and len(sizes) == 1:
        rows, comps = kern.sort_blocks_counted(
            np.stack([blocks[rank] for rank in live_ranks])
        )
        for t, rank in enumerate(live_ranks):
            local[rank] = (rows[t], int(comps[t]))
    else:
        for rank in live_ranks:
            row, comps = kern.sort_block_counted(blocks[rank])
            local[rank] = (row, int(comps))

    plan: dict[int, list[tuple[int, object]]] = {rank: [] for rank in blocks}
    for idx, substage in enumerate(schedule.substages):
        for pair in substage.pairs:
            if substage.kind == "cx":
                plan[pair.low].append((idx, ("cx", pair.high, True, pair.keep_min)))
                plan[pair.high].append((idx, ("cx", pair.low, False, pair.keep_min)))
            else:
                plan[pair.low].append((idx, ("mirror", pair.high)))
                plan[pair.high].append((idx, ("mirror", pair.low)))

    def program(proc: Proc):
        block = blocks[proc.rank]
        # Local sort (paper step 3 first half) with exact heapsort counts.
        if block.size:
            block, comps = local[proc.rank]
            yield proc.compute(comps)
        for idx, op in plan[proc.rank]:
            if op[0] == "cx":
                _, partner, i_am_low, keep_min = op
                if block.size == 0:
                    continue
                block = yield from _cx_program_step(
                    proc, block, partner, i_am_low, keep_min, tag_base=idx * 4
                )
            else:
                _, partner = op
                yield proc.send(partner, payload=block, size=int(block.size),
                                tag=idx * 4)
                block = np.asarray((yield proc.recv(src=partner, tag=idx * 4)))
                if proc.obs.enabled:
                    proc.obs.metrics.inc("sort.messages")
                    if proc.rank < partner:
                        proc.obs.metrics.inc("sort.mirror.pairs")
        blocks[proc.rank] = block

    return program


def run_schedule_spmd(
    schedule: SortSchedule,
    keys: np.ndarray | list,
    faults: FaultSet,
    params: MachineParams | None = None,
    obs=None,
    kernels=None,
) -> SpmdSortResult:
    """Execute a sort schedule on the discrete-event SPMD machine.

    ``obs`` is an optional :class:`repro.obs.Tracer` shared with the SPMD
    machine and its event engine; the programs additionally accumulate the
    same logical ``sort.*`` counters as the phase engine, which is what the
    cross-backend parity tests compare.  ``kernels`` selects the execution
    backend for the inner kernels (results and charges are
    backend-independent).
    """
    kernels = resolve_backend(kernels)
    keys_arr = np.asarray(keys, dtype=float)
    chunks, _ = pad_and_chunk(keys_arr, schedule.workers)
    blocks = {rank: chunk for rank, chunk in zip(schedule.output_order, chunks)}
    machine = SpmdMachine(schedule.n, faults=faults, params=params, obs=obs,
                          kernels=kernels)
    program = _make_program(schedule, blocks, kernels=kernels)
    finish = machine.run({rank: program for rank in schedule.output_order})
    gathered = (
        np.concatenate([blocks[rank] for rank in schedule.output_order])
        if schedule.workers
        else np.empty(0)
    )
    sorted_keys = strip_padding(gathered, int(keys_arr.size))
    return SpmdSortResult(
        sorted_keys=sorted_keys,
        finish_time=finish,
        machine=machine,
        schedule=schedule,
        blocks=blocks,
    )


def spmd_fault_tolerant_sort(
    keys: np.ndarray | list,
    n: int,
    faults: FaultSet | list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    fault_kind: FaultKind = FaultKind.PARTIAL,
    obs=None,
    kernels=None,
) -> SpmdSortResult:
    """Message-level fault-tolerant sort on ``Q_n`` (mirrors the phase engine).

    Dispatches exactly like
    :func:`repro.core.ftsort.fault_tolerant_sort`: plain bitonic for
    ``r = 0``, single-fault bitonic for ``r = 1``, and the partitioned
    algorithm otherwise.
    """
    validate_dimension(n)
    if isinstance(faults, FaultSet):
        fault_set = faults
    else:
        fault_set = FaultSet(n, faults, kind=fault_kind)
    if fault_set.n != n:
        raise ValueError(f"fault set is for Q_{fault_set.n}, expected Q_{n}")
    if fault_set.links:
        fault_set = absorb_link_faults(fault_set)
    if not fault_set.satisfies_paper_model():
        raise ValueError(f"{fault_set.r} faults on Q_{n} violate the paper's model")
    r = fault_set.r
    if r == 0:
        schedule = cached_plain_schedule(n, None)
    elif r == 1:
        schedule = cached_plain_schedule(n, fault_set.processors[0])
    else:
        _, selection = plan_partition(n, fault_set)
        schedule = cached_ft_schedule(selection)
    return run_schedule_spmd(schedule, keys, fault_set, params=params, obs=obs,
                             kernels=kernels)
