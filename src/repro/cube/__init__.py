"""Hypercube topology and address algebra.

This package is the lowest layer of the reproduction: pure functions and
small immutable objects describing an ``n``-dimensional binary hypercube
``Q_n`` — processor addresses, Hamming geometry, neighbor enumeration,
subcube address spaces, and the ``v``/``w`` address split induced by a
cutting-dimension sequence (paper Section 3).

Everything here is deterministic and side-effect free; the simulator,
partitioner and sorting algorithms are all built on top of it.
"""

from repro.cube.address import (
    bit_of,
    clear_bit,
    flip_bit,
    gray_code,
    gray_rank,
    hamming_distance,
    hamming_weight,
    popcount_array,
    set_bit,
    to_bits,
    from_bits,
    validate_address,
    validate_dimension,
)
from repro.cube.topology import Hypercube, ecube_path, shortest_paths_avoiding
from repro.cube.subcube import (
    AddressSplit,
    Subcube,
    enumerate_subcubes,
    partition_by_dims,
)
from repro.cube.embedding import (
    mesh_embedding,
    mesh_node,
    ring_embedding,
    ring_position,
)

__all__ = [
    "AddressSplit",
    "Hypercube",
    "Subcube",
    "mesh_embedding",
    "mesh_node",
    "ring_embedding",
    "ring_position",
    "bit_of",
    "clear_bit",
    "ecube_path",
    "enumerate_subcubes",
    "flip_bit",
    "from_bits",
    "gray_code",
    "gray_rank",
    "hamming_distance",
    "hamming_weight",
    "partition_by_dims",
    "popcount_array",
    "set_bit",
    "shortest_paths_avoiding",
    "to_bits",
    "validate_address",
    "validate_dimension",
]
