"""Bit-level address algebra for hypercube processor addresses.

A processor of the ``n``-dimensional hypercube ``Q_n`` is identified by an
integer address in ``[0, 2**n)``; bit ``d`` of the address is the coordinate
along dimension ``d``.  Two processors are neighbors iff their addresses
differ in exactly one bit.

All functions are pure.  Scalar helpers operate on Python ints (arbitrary
precision, so any ``n`` works); :func:`popcount_array` provides a vectorized
popcount for the Monte-Carlo experiment sweeps.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bit_of",
    "clear_bit",
    "flip_bit",
    "from_bits",
    "gray_code",
    "gray_rank",
    "hamming_distance",
    "hamming_weight",
    "permute_bits",
    "popcount_array",
    "set_bit",
    "to_bits",
    "validate_address",
    "validate_dimension",
]


def validate_dimension(n: int) -> int:
    """Validate a hypercube dimension ``n`` and return it.

    Raises :class:`ValueError` for non-positive or absurdly large dimensions
    (the simulator instantiates ``2**n`` nodes, so ``n`` beyond 24 is a bug,
    not a use case).
    """
    if not isinstance(n, (int, np.integer)):
        raise TypeError(f"dimension must be an int, got {type(n).__name__}")
    n = int(n)
    if n < 0:
        raise ValueError(f"dimension must be >= 0, got {n}")
    if n > 24:
        raise ValueError(f"dimension {n} is too large (2**{n} nodes)")
    return n


def validate_address(addr: int, n: int) -> int:
    """Validate that ``addr`` is a legal node address of ``Q_n`` and return it."""
    if not isinstance(addr, (int, np.integer)):
        raise TypeError(f"address must be an int, got {type(addr).__name__}")
    addr = int(addr)
    if not 0 <= addr < (1 << n):
        raise ValueError(f"address {addr} out of range for Q_{n} (0..{(1 << n) - 1})")
    return addr


def bit_of(addr: int, d: int) -> int:
    """Return bit ``d`` (coordinate along dimension ``d``) of ``addr``."""
    return (addr >> d) & 1


def set_bit(addr: int, d: int) -> int:
    """Return ``addr`` with bit ``d`` set to 1."""
    return addr | (1 << d)


def clear_bit(addr: int, d: int) -> int:
    """Return ``addr`` with bit ``d`` cleared to 0."""
    return addr & ~(1 << d)


def flip_bit(addr: int, d: int) -> int:
    """Return the neighbor of ``addr`` along dimension ``d``."""
    return addr ^ (1 << d)


def hamming_weight(x: int) -> int:
    """Population count of a non-negative integer."""
    if x < 0:
        raise ValueError("hamming_weight is defined for non-negative ints")
    return int(x).bit_count()


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions in which ``a`` and ``b`` differ.

    This is the hop distance between processors ``a`` and ``b`` in a
    fault-free hypercube, and the paper's ``HD`` function (Eq. 1).
    """
    return hamming_weight(a ^ b)


def permute_bits(addr: int, perm: tuple[int, ...] | list[int]) -> int:
    """Relabel the dimensions of ``addr``: bit ``d`` moves to bit ``perm[d]``.

    ``perm`` must be a permutation of ``0 .. n-1`` where ``n = len(perm)``;
    ``addr`` must fit in ``n`` bits.  Dimension permutations are (together
    with XOR translations) exactly the automorphisms of ``Q_n``, which is
    what makes them the re-indexing maps of the plan cache
    (:mod:`repro.plancache`).
    """
    if addr >> len(perm):
        raise ValueError(f"address {addr} does not fit in {len(perm)} bits")
    out = 0
    for d, target in enumerate(perm):
        if (addr >> d) & 1:
            out |= 1 << target
    return out


def popcount_array(values: np.ndarray) -> np.ndarray:
    """Vectorized popcount over an integer ndarray.

    Used by the Monte-Carlo sweeps (Tables 1-2) which evaluate Hamming
    distances over tens of thousands of random fault placements.
    """
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"popcount_array needs an integer array, got {arr.dtype}")
    return np.bitwise_count(arr.astype(np.uint64, copy=False)).astype(np.int64)


def to_bits(addr: int, n: int) -> tuple[int, ...]:
    """Expand ``addr`` into an ``n``-tuple ``(u_{n-1}, ..., u_1, u_0)``.

    Matches the paper's address-space notation ``{u_{n-1} u_{n-2} ... u_0}``:
    index 0 of the returned tuple is the most significant bit ``u_{n-1}``.
    """
    validate_address(addr, n)
    return tuple((addr >> d) & 1 for d in range(n - 1, -1, -1))


def from_bits(bits: tuple[int, ...] | list[int]) -> int:
    """Inverse of :func:`to_bits`: fold ``(u_{n-1}, ..., u_0)`` into an int."""
    addr = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {b!r}")
        addr = (addr << 1) | b
    return addr


def gray_code(i: int) -> int:
    """``i``-th binary-reflected Gray code.

    Successive Gray codes differ in one bit, i.e. they trace a Hamiltonian
    path on the hypercube.  Provided as a substrate utility (ring embeddings
    for collectives and tests of the topology layer).
    """
    if i < 0:
        raise ValueError("gray_code is defined for non-negative ints")
    return i ^ (i >> 1)


def gray_rank(g: int) -> int:
    """Inverse of :func:`gray_code`."""
    if g < 0:
        raise ValueError("gray_rank is defined for non-negative ints")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i
