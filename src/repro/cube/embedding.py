"""Classic hypercube embeddings (Gray-code rings and meshes).

Substrate utilities from the hypercube toolbox the paper's generation of
algorithms drew on: a ``2**n``-node ring embeds in ``Q_n`` with dilation 1
via the binary-reflected Gray code, and a ``2**a x 2**b`` mesh embeds via a
product of Gray codes.  The sort itself doesn't need them, but the
repository's collectives and examples do (ring pipelines, mesh layouts),
and they come with cheap strong tests.
"""

from __future__ import annotations

from repro.cube.address import gray_code, gray_rank, validate_dimension

__all__ = ["ring_embedding", "ring_position", "mesh_embedding", "mesh_node"]


def ring_embedding(n: int) -> list[int]:
    """Hypercube addresses of a dilation-1 ring through all of ``Q_n``.

    ``result[i]`` and ``result[(i+1) % 2**n]`` are hypercube neighbors for
    every ``i`` (including the wrap-around).
    """
    validate_dimension(n)
    return [gray_code(i) for i in range(1 << n)]


def ring_position(addr: int, n: int) -> int:
    """Inverse of :func:`ring_embedding`: the ring index of a node."""
    validate_dimension(n)
    if not 0 <= addr < (1 << n):
        raise ValueError(f"address {addr} out of range for Q_{n}")
    return gray_rank(addr)


def mesh_embedding(rows_dim: int, cols_dim: int) -> list[list[int]]:
    """Dilation-1 embedding of a ``2**rows_dim x 2**cols_dim`` mesh.

    Returns a matrix of hypercube addresses in ``Q_{rows_dim + cols_dim}``;
    horizontally and vertically adjacent entries are hypercube neighbors
    (each coordinate Gray-coded into its own dimension group; columns use
    the low dimensions).
    """
    n = validate_dimension(rows_dim + cols_dim)
    del n
    return [
        [
            (gray_code(r) << cols_dim) | gray_code(c)
            for c in range(1 << cols_dim)
        ]
        for r in range(1 << rows_dim)
    ]


def mesh_node(r: int, c: int, rows_dim: int, cols_dim: int) -> int:
    """Hypercube address of mesh coordinate ``(r, c)``."""
    if not 0 <= r < (1 << rows_dim):
        raise ValueError(f"row {r} out of range")
    if not 0 <= c < (1 << cols_dim):
        raise ValueError(f"column {c} out of range")
    return (gray_code(r) << cols_dim) | gray_code(c)
