"""Subcube geometry and the ``v``/``w`` address split of the paper.

A *subcube* of ``Q_n`` is obtained by fixing the coordinate along some subset
of dimensions.  We represent it by a ``(fixed_mask, fixed_value)`` pair: bit
``d`` of ``fixed_mask`` is 1 iff dimension ``d`` is fixed, and then bit ``d``
of ``fixed_value`` gives the fixed coordinate.  Free dimensions span the
subcube.

The paper's partition (Section 3) cuts ``Q_n`` along an *ordered* cutting
dimension sequence ``D_beta = (d_1, ..., d_m)``.  Every resulting subcube is
identified by an ``m``-bit address ``v_{m-1} ... v_0 = u_{d_m} ... u_{d_1}``
(so ``d_1`` supplies the least significant ``v`` bit), while the remaining
``s = n - m`` bits, kept in ascending dimension order, form the local
processor address ``w_{s-1} ... w_0`` inside each subcube.
:class:`AddressSplit` implements that bidirectional mapping and is used by
the partition selection heuristic, the dangling-processor vote, and the
fault-tolerant sort itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.cube.address import (
    bit_of,
    hamming_weight,
    validate_address,
    validate_dimension,
)

__all__ = ["Subcube", "AddressSplit", "enumerate_subcubes", "partition_by_dims"]


@dataclass(frozen=True)
class Subcube:
    """An axis-aligned subcube of ``Q_n``.

    Attributes:
        n: dimension of the ambient hypercube.
        fixed_mask: bit ``d`` set iff dimension ``d`` is fixed.
        fixed_value: fixed coordinates; must satisfy
            ``fixed_value & ~fixed_mask == 0``.
    """

    n: int
    fixed_mask: int
    fixed_value: int

    def __post_init__(self) -> None:
        validate_dimension(self.n)
        full = (1 << self.n) - 1
        if not 0 <= self.fixed_mask <= full:
            raise ValueError(f"fixed_mask {self.fixed_mask:#x} out of range for Q_{self.n}")
        if self.fixed_value & ~self.fixed_mask:
            raise ValueError(
                "fixed_value has bits outside fixed_mask: "
                f"value={self.fixed_value:#x} mask={self.fixed_mask:#x}"
            )

    @property
    def dim(self) -> int:
        """Dimension of the subcube (number of free dimensions)."""
        return self.n - hamming_weight(self.fixed_mask)

    @property
    def size(self) -> int:
        """Number of processors in the subcube."""
        return 1 << self.dim

    @property
    def free_dims(self) -> tuple[int, ...]:
        """Free dimensions in ascending order."""
        return tuple(d for d in range(self.n) if not (self.fixed_mask >> d) & 1)

    @property
    def fixed_dims(self) -> tuple[int, ...]:
        """Fixed dimensions in ascending order."""
        return tuple(d for d in range(self.n) if (self.fixed_mask >> d) & 1)

    def contains(self, addr: int) -> bool:
        """Whether global address ``addr`` lies inside this subcube."""
        validate_address(addr, self.n)
        return (addr & self.fixed_mask) == self.fixed_value

    def members(self) -> Iterator[int]:
        """Iterate the global addresses of the subcube in local-address order.

        Local address ``w`` enumerates the free dimensions in ascending
        dimension order (bit 0 of ``w`` toggles the smallest free dimension).
        """
        free = self.free_dims
        for w in range(self.size):
            yield self.local_to_global(w)

    def local_to_global(self, w: int) -> int:
        """Map local address ``w`` (over free dims) to the global address."""
        if not 0 <= w < self.size:
            raise ValueError(f"local address {w} out of range for Q_{self.dim} subcube")
        addr = self.fixed_value
        for i, d in enumerate(self.free_dims):
            if (w >> i) & 1:
                addr |= 1 << d
        return addr

    def global_to_local(self, addr: int) -> int:
        """Map a member's global address to its local address ``w``."""
        if not self.contains(addr):
            raise ValueError(f"address {addr} not in subcube {self}")
        w = 0
        for i, d in enumerate(self.free_dims):
            if (addr >> d) & 1:
                w |= 1 << i
        return w

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        pat = "".join(
            str((self.fixed_value >> d) & 1) if (self.fixed_mask >> d) & 1 else "*"
            for d in range(self.n - 1, -1, -1)
        )
        return f"Subcube({pat})"


def _validate_cut_dims(n: int, dims: Sequence[int]) -> tuple[int, ...]:
    dims = tuple(int(d) for d in dims)
    for d in dims:
        if not 0 <= d < n:
            raise ValueError(f"cutting dimension {d} out of range for Q_{n}")
    if len(set(dims)) != len(dims):
        raise ValueError(f"cutting dimensions must be distinct, got {dims}")
    return dims


class AddressSplit:
    """The ``v``/``w`` coordinate split induced by a cutting sequence.

    Given ``Q_n`` and the ordered cutting sequence ``D = (d_1, ..., d_m)``
    (paper notation; ``cut_dims[0]`` is ``d_1``), every global address ``u``
    decomposes into:

    * ``v`` — the ``m``-bit subcube address, ``v_{k-1} = u_{d_k}``
      (``d_1`` gives the least significant bit of ``v``), and
    * ``w`` — the ``s = n - m``-bit local address over the remaining
      dimensions taken in ascending order.

    The split is a bijection: ``combine(v, w)`` inverts
    ``(v_of(u), w_of(u))``.
    """

    def __init__(self, n: int, cut_dims: Sequence[int]):
        self.n = validate_dimension(n)
        self.cut_dims = _validate_cut_dims(n, cut_dims)
        self.m = len(self.cut_dims)
        self.s = self.n - self.m
        self._rest_dims = tuple(d for d in range(n) if d not in set(self.cut_dims))

    @property
    def rest_dims(self) -> tuple[int, ...]:
        """Non-cut dimensions in ascending order (``w`` bit ``i`` ↔ ``rest_dims[i]``)."""
        return self._rest_dims

    def v_of(self, addr: int) -> int:
        """Subcube address of global address ``addr``."""
        validate_address(addr, self.n)
        v = 0
        for k, d in enumerate(self.cut_dims):
            v |= bit_of(addr, d) << k
        return v

    def w_of(self, addr: int) -> int:
        """Local (within-subcube) address of global address ``addr``."""
        validate_address(addr, self.n)
        w = 0
        for i, d in enumerate(self._rest_dims):
            w |= bit_of(addr, d) << i
        return w

    def combine(self, v: int, w: int) -> int:
        """Recompose a global address from subcube address ``v`` and local ``w``."""
        if not 0 <= v < (1 << self.m):
            raise ValueError(f"subcube address {v} out of range (m={self.m})")
        if not 0 <= w < (1 << self.s):
            raise ValueError(f"local address {w} out of range (s={self.s})")
        addr = 0
        for k, d in enumerate(self.cut_dims):
            if (v >> k) & 1:
                addr |= 1 << d
        for i, d in enumerate(self._rest_dims):
            if (w >> i) & 1:
                addr |= 1 << d
        return addr

    def subcube(self, v: int) -> Subcube:
        """The :class:`Subcube` with subcube address ``v``."""
        if not 0 <= v < (1 << self.m):
            raise ValueError(f"subcube address {v} out of range (m={self.m})")
        mask = 0
        value = 0
        for k, d in enumerate(self.cut_dims):
            mask |= 1 << d
            if (v >> k) & 1:
                value |= 1 << d
        return Subcube(self.n, mask, value)

    def subcubes(self) -> list[Subcube]:
        """All ``2**m`` subcubes in subcube-address order."""
        return [self.subcube(v) for v in range(1 << self.m)]

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"AddressSplit(n={self.n}, cut_dims={self.cut_dims})"


def partition_by_dims(n: int, cut_dims: Sequence[int]) -> list[Subcube]:
    """Partition ``Q_n`` into ``2**len(cut_dims)`` subcubes along ``cut_dims``."""
    return AddressSplit(n, cut_dims).subcubes()


def enumerate_subcubes(n: int, k: int) -> Iterator[Subcube]:
    """Enumerate every ``k``-dimensional subcube of ``Q_n``.

    There are ``C(n, k) * 2**(n-k)`` of them.  Used by the maximal
    fault-free subcube baseline, which must examine candidate subcubes of
    each dimension.
    """
    validate_dimension(n)
    if not 0 <= k <= n:
        raise ValueError(f"subcube dimension {k} out of range for Q_{n}")
    from itertools import combinations

    for free in combinations(range(n), k):
        free_set = set(free)
        fixed = [d for d in range(n) if d not in free_set]
        mask = 0
        for d in fixed:
            mask |= 1 << d
        for bits in range(1 << len(fixed)):
            value = 0
            for i, d in enumerate(fixed):
                if (bits >> i) & 1:
                    value |= 1 << d
            yield Subcube(n, mask, value)
