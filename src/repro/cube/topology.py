"""Hypercube topology: neighbors, links, routing paths.

:class:`Hypercube` is the static interconnect description shared by the
fault model, the discrete-event machine, and the routing layer.  Links are
undirected and identified by ``(min_endpoint, dimension)``.

Routing helpers:

* :func:`ecube_path` — classic dimension-order (e-cube) route, the scheme
  NCUBE-era machines used.
* :func:`shortest_paths_avoiding` — BFS distances avoiding a forbidden node
  set; the adaptive fault-tolerant router and its tests both use it as the
  ground-truth metric.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.cube.address import (
    flip_bit,
    hamming_distance,
    validate_address,
    validate_dimension,
)

__all__ = ["Hypercube", "ecube_path", "shortest_paths_avoiding"]


class Hypercube:
    """Static topology of the ``n``-dimensional binary hypercube ``Q_n``."""

    def __init__(self, n: int):
        self.n = validate_dimension(n)
        self.size = 1 << self.n

    # -- nodes ---------------------------------------------------------

    def nodes(self) -> range:
        """All node addresses, ``0 .. 2**n - 1``."""
        return range(self.size)

    def neighbors(self, addr: int) -> list[int]:
        """Neighbors of ``addr`` in ascending dimension order."""
        validate_address(addr, self.n)
        return [flip_bit(addr, d) for d in range(self.n)]

    def neighbor(self, addr: int, d: int) -> int:
        """The neighbor of ``addr`` along dimension ``d``."""
        validate_address(addr, self.n)
        if not 0 <= d < self.n:
            raise ValueError(f"dimension {d} out of range for Q_{self.n}")
        return flip_bit(addr, d)

    def distance(self, a: int, b: int) -> int:
        """Hop distance (= Hamming distance) between nodes ``a`` and ``b``."""
        validate_address(a, self.n)
        validate_address(b, self.n)
        return hamming_distance(a, b)

    # -- links ---------------------------------------------------------

    def links(self) -> Iterator[tuple[int, int]]:
        """All undirected links as ``(node, dimension)`` with ``bit_d(node)=0``.

        Each physical link appears exactly once; its endpoints are ``node``
        and ``node ^ (1 << dimension)``.  There are ``n * 2**(n-1)`` links.
        """
        for node in range(self.size):
            for d in range(self.n):
                if not (node >> d) & 1:
                    yield (node, d)

    def link_id(self, a: int, b: int) -> tuple[int, int]:
        """Canonical id of the link between neighbors ``a`` and ``b``."""
        validate_address(a, self.n)
        validate_address(b, self.n)
        diff = a ^ b
        if diff == 0 or diff & (diff - 1):
            raise ValueError(f"nodes {a} and {b} are not hypercube neighbors")
        return (min(a, b), diff.bit_length() - 1)

    def num_links(self) -> int:
        """Total number of undirected links."""
        return self.n * (1 << (self.n - 1)) if self.n else 0

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Hypercube(n={self.n})"


def ecube_path(src: int, dst: int, n: int) -> list[int]:
    """Dimension-order (e-cube) route from ``src`` to ``dst`` in ``Q_n``.

    Corrects differing bits from the lowest dimension upward; the returned
    list includes both endpoints and has length ``HD(src, dst) + 1``.
    """
    validate_address(src, n)
    validate_address(dst, n)
    path = [src]
    cur = src
    diff = src ^ dst
    d = 0
    while diff:
        if diff & 1:
            cur = flip_bit(cur, d)
            path.append(cur)
        diff >>= 1
        d += 1
    return path


def shortest_paths_avoiding(
    n: int, src: int, forbidden: Iterable[int] = ()
) -> dict[int, int]:
    """BFS hop distances from ``src`` in ``Q_n`` avoiding ``forbidden`` nodes.

    ``src`` itself must not be forbidden.  Returns a dict mapping each
    reachable node to its distance; unreachable nodes are absent.  This is
    the ground truth the fault-tolerant router is validated against: with
    at most ``n - 1`` total faults the faulty hypercube remains connected
    (node connectivity of ``Q_n`` is ``n``), so every fault-free node must
    appear in the result.
    """
    validate_address(src, n)
    blocked = set(forbidden)
    if src in blocked:
        raise ValueError(f"source {src} is in the forbidden set")
    dist = {src: 0}
    q: deque[int] = deque([src])
    while q:
        cur = q.popleft()
        for d in range(n):
            nxt = flip_bit(cur, d)
            if nxt in blocked or nxt in dist:
                continue
            dist[nxt] = dist[cur] + 1
            q.append(nxt)
    return dist
