"""Regenerators for every table and figure in the paper's evaluation.

* :mod:`repro.experiments.table1` — Table 1: distribution of ``mincut``
  values over random fault placements, ``3 <= n <= 6``, ``0 <= r <= n-1``.
* :mod:`repro.experiments.table2` — Table 2: processor utilization of the
  proposed scheme versus the maximum dimensional fault-free subcube method
  (best and worst case).
* :mod:`repro.experiments.figure7` — Figure 7(a)-(d): execution time versus
  number of keys for each fault count, against the fault-free-subcube
  baselines.
* :mod:`repro.experiments.report` — plain-text table/series rendering.

Each module is runnable (``python -m repro.experiments.table1``) and
exposes a pure ``compute_*`` function used by the benchmark harness and the
test suite.
"""

from repro.experiments.table1 import compute_table1, render_table1
from repro.experiments.table2 import compute_table2, render_table2
from repro.experiments.figure7 import compute_figure7, render_figure7, render_figure7_svg
from repro.experiments.modelcheck import compute_modelcheck, render_modelcheck
from repro.experiments.exact import exact_mincut_distribution, exact_utilization_extremes
from repro.experiments.report import format_table, format_series
from repro.experiments.svgplot import line_chart, save_chart
from repro.experiments.workloads import (
    compute_data_sensitivity,
    generate_workload,
    render_data_sensitivity,
    workload_names,
)
from repro.experiments.runner import run_all
from repro.experiments.cubeviz import cube_layout, partition_diagram

__all__ = [
    "compute_data_sensitivity",
    "compute_figure7",
    "cube_layout",
    "partition_diagram",
    "compute_modelcheck",
    "compute_table1",
    "compute_table2",
    "generate_workload",
    "render_data_sensitivity",
    "run_all",
    "workload_names",
    "exact_mincut_distribution",
    "exact_utilization_extremes",
    "format_series",
    "format_table",
    "line_chart",
    "render_figure7",
    "render_figure7_svg",
    "render_modelcheck",
    "render_table1",
    "render_table2",
    "save_chart",
]
