"""SVG diagrams of partitioned hypercubes (the paper's Figures 1/3/5).

The paper's structural figures show a hypercube cut into single-fault
subcubes: nodes grouped by subcube, faulty processors marked, dangling
processors marked.  This module renders the same diagrams for any plan:

* each processor is a labeled circle on a Gray-code grid layout (low
  address bits → column, high bits → row, so every hypercube edge is a
  short step),
* hypercube edges are drawn light, edges *within* a subcube darker,
* subcube membership is the fill color; faults get a cross, dangling
  processors a hollow ring.

:func:`partition_diagram` takes a :class:`~repro.core.selection.SelectionResult`
(or plain fault list) and returns an SVG string; the reproduce-all runner
ships a diagram of the paper's Example-1 partition.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.core.ftsort import plan_partition
from repro.cube.address import gray_rank, validate_dimension
from repro.cube.topology import Hypercube
from repro.core.selection import SelectionResult
from repro.experiments.svgplot import PALETTE

__all__ = ["partition_diagram", "cube_layout"]

_CELL = 86
_MARGIN = 60
_RADIUS = 17


def cube_layout(n: int) -> dict[int, tuple[float, float]]:
    """Planar coordinates for every node of ``Q_n`` (n <= 8).

    Splits the address into low/high halves and places each half by its
    Gray-code rank on a grid.  Every hypercube edge is then axis-aligned
    (it changes only the row or only the column — a bit flip touches one
    half), which keeps the diagrams readable even though edge lengths
    vary (planar drawings of hypercubes necessarily stretch some edges).
    """
    validate_dimension(n)
    if n > 8:
        raise ValueError("cube_layout supports n <= 8 (diagram legibility)")
    lo_bits = (n + 1) // 2
    hi_bits = n - lo_bits
    lo_mask = (1 << lo_bits) - 1
    coords = {}
    for addr in range(1 << n):
        col = gray_rank(addr & lo_mask)
        row = gray_rank(addr >> lo_bits) if hi_bits else 0
        coords[addr] = (
            _MARGIN + col * _CELL,
            _MARGIN + row * _CELL,
        )
    return coords


def _plan_of(n: int, plan_or_faults) -> SelectionResult | None:
    if isinstance(plan_or_faults, SelectionResult):
        return plan_or_faults
    faults = list(plan_or_faults)
    if len(faults) <= 1:
        return None
    _, selection = plan_partition(n, faults)
    return selection


def partition_diagram(n: int, plan_or_faults, title: str | None = None) -> str:
    """Render the partitioned ``Q_n`` as an SVG document string.

    ``plan_or_faults`` is a resolved :class:`SelectionResult` or a list of
    faulty addresses (the plan is computed when needed).  With zero or one
    fault no partition exists; nodes are drawn uncolored with the fault
    marked.
    """
    validate_dimension(n)
    selection = _plan_of(n, plan_or_faults)
    faults = set(selection.faults) if selection else set(
        plan_or_faults if not isinstance(plan_or_faults, SelectionResult) else []
    )
    dangling = set(selection.dangling_processors) if selection else set()
    coords = cube_layout(n)
    cube = Hypercube(n)

    width = max(x for x, _ in coords.values()) + _MARGIN
    height = max(y for _, y in coords.values()) + _MARGIN + 30
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="26" text-anchor="middle" font-size="15" '
            f'font-weight="bold">{escape(title)}</text>'
        )

    def v_of(addr: int) -> int | None:
        return selection.split.v_of(addr) if selection else None

    # Edges first (under the nodes).
    for node, d in cube.links():
        a, b = node, node | (1 << d)
        xa, ya = coords[a]
        xb, yb = coords[b]
        same_subcube = selection is not None and v_of(a) == v_of(b)
        stroke = "#555555" if same_subcube else "#dddddd"
        width_px = 2.0 if same_subcube else 1.0
        parts.append(
            f'<line x1="{xa}" y1="{ya}" x2="{xb}" y2="{yb}" '
            f'stroke="{stroke}" stroke-width="{width_px}"/>'
        )

    # Nodes.
    for addr, (x, y) in coords.items():
        if selection is not None:
            color = PALETTE[v_of(addr) % len(PALETTE)]
        else:
            color = "#bbbbbb"
        is_fault = addr in faults
        is_dangling = addr in dangling
        fill = "white" if is_dangling else color
        parts.append(
            f'<circle cx="{x}" cy="{y}" r="{_RADIUS}" fill="{fill}" '
            f'stroke="{color}" stroke-width="3"/>'
        )
        if is_fault:
            o = _RADIUS * 0.6
            for dx1, dy1, dx2, dy2 in ((-o, -o, o, o), (-o, o, o, -o)):
                parts.append(
                    f'<line x1="{x + dx1}" y1="{y + dy1}" x2="{x + dx2}" '
                    f'y2="{y + dy2}" stroke="#000000" stroke-width="2.5"/>'
                )
        parts.append(
            f'<text x="{x}" y="{y - _RADIUS - 4}" text-anchor="middle" '
            f'font-size="10" fill="#333333">{addr}</text>'
        )

    # Legend.
    legend_y = height - 14
    parts.append(
        f'<text x="{_MARGIN}" y="{legend_y}" font-size="12">'
        f'colors = subcubes; X = faulty; hollow = dangling</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)
