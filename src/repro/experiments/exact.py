"""Exact (exhaustive) versions of the Monte-Carlo tables.

For small cubes the Table-1/Table-2 statistics can be computed *exactly*
by enumerating every fault placement instead of sampling: there are
``C(2**n, r)`` placements, which is tractable through ``n = 5`` (35960
placements at ``r = 4``).  These exact numbers serve two purposes:

* they validate the Monte-Carlo regenerators (the sampled cells must agree
  within binomial noise — asserted in the test suite), and
* they turn the paper's "percentages over 10000 random cases" into the
  underlying ground truth for the small panels.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

from repro.baselines.maxsubcube import max_fault_free_dim
from repro.core.cost import utilization_max_subcube, utilization_proposed
from repro.core.partition import find_min_cuts
from repro.cube.address import validate_dimension

__all__ = ["exact_mincut_distribution", "exact_utilization_extremes", "placements"]


def placements(n: int, r: int):
    """All ``C(2**n, r)`` fault placements of ``Q_n`` (an iterator)."""
    validate_dimension(n)
    if not 0 <= r <= (1 << n):
        raise ValueError(f"cannot place {r} faults in Q_{n}")
    return combinations(range(1 << n), r)


def exact_mincut_distribution(n: int, r: int) -> dict[int, float]:
    """Exact Table-1 cell: P(mincut = m) over all fault placements, in %.

    Exhaustive: intended for ``n <= 5`` (the test suite guards larger
    inputs by runtime, not correctness).
    """
    total = comb(1 << n, r)
    counts: dict[int, int] = {}
    for faults in placements(n, r):
        m = find_min_cuts(n, faults).mincut
        counts[m] = counts.get(m, 0) + 1
    return {m: 100.0 * c / total for m, c in sorted(counts.items())}


def exact_utilization_extremes(n: int, r: int) -> tuple[float, float, float, float]:
    """Exact Table-2 cell: (proposed best, proposed worst, baseline best,
    baseline worst) utilization percentages over all fault placements."""
    prop_best = base_best = 0.0
    prop_worst = base_worst = 100.0
    for faults in placements(n, r):
        mincut = find_min_cuts(n, faults).mincut
        prop = 100.0 * utilization_proposed(n, r, mincut)
        base = 100.0 * utilization_max_subcube(n, r, max_fault_free_dim(n, faults))
        prop_best = max(prop_best, prop)
        prop_worst = min(prop_worst, prop)
        base_best = max(base_best, base)
        base_worst = min(base_worst, base)
    return (prop_best, prop_worst, base_best, base_worst)
