"""Figure 7(a)-(d): execution time vs number of keys, per fault count.

For a hypercube ``Q_n`` (``n = 6, 5, 4, 3`` for panels (a), (b), (d), (c)),
the paper plots sorting time against the number of keys ``M`` for each
fault count ``r = 1 .. n-1`` (thin lines), against plain bitonic sort on
fault-free cubes ``Q_n, Q_{n-1}, ...`` (thick lines) — the latter being
what the maximum dimensional fault-free subcube method would run in its
best/worst cases.

The headline qualitative claims this regenerates:

* ``Q_6`` with ``r = 1`` or ``2`` beats fault-free ``Q_5`` — i.e. the
  proposed method beats the baseline's *best* case;
* ``Q_6`` with ``r = 3, 4, 5`` still beats fault-free ``Q_4`` — the
  baseline's typical/worst case;
* all curves grow like ``(M/N') log(M/N')``.

Execution times come from the phase-level simulator with NCUBE/7-style
constants; fault placements are averaged over several random draws per
``r`` (seeded).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.core.ftsort import fault_tolerant_sort
from repro.core.single_fault import fault_free_bitonic_sort
from repro.experiments.report import format_series
from repro.faults.inject import random_faulty_processors
from repro.simulator.params import MachineParams

__all__ = ["Figure7Panel", "compute_figure7", "render_figure7", "default_m_values", "main"]

DEFAULT_PLACEMENTS = 5


def default_m_values(n: int, points: int = 5) -> tuple[int, ...]:
    """The paper's key-count range, scaled to the cube size.

    For ``n = 6`` the paper sweeps ``3.2e3 .. 3.2e5`` (50 to 5000 keys per
    processor on 64 nodes); we keep the same per-processor loads for
    smaller cubes: ``M = 2**n * (50 .. 5000)`` geometrically spaced.
    """
    per_proc = np.geomspace(50, 5000, num=points)
    return tuple(int(round(p * (1 << n))) for p in per_proc)


@dataclass(frozen=True)
class Figure7Panel:
    """One panel: time-vs-M series for every fault count plus baselines.

    Attributes:
        n: hypercube dimension of the panel.
        m_values: swept key counts.
        series: label -> times (same length as ``m_values``).  Labels:
            ``"ft r=K"`` for the proposed algorithm with K faults (averaged
            over placements) and ``"fault-free Q_k"`` for plain bitonic
            sort on a fault-free ``Q_k`` (the subcube baseline).
        placements: number of random fault placements averaged per point.
    """

    n: int
    m_values: tuple[int, ...]
    series: dict[str, tuple[float, ...]]
    placements: int


def compute_figure7(
    n: int,
    m_values: tuple[int, ...] | None = None,
    placements: int = DEFAULT_PLACEMENTS,
    params: MachineParams | None = None,
    seed: int = 19920407,
    baseline_dims: tuple[int, ...] | None = None,
) -> Figure7Panel:
    """Compute one Figure-7 panel for hypercube dimension ``n``.

    Keys are uniform random floats; per point the proposed algorithm's
    time is averaged over ``placements`` random fault placements (fresh
    keys per placement, like the paper's per-simulation draws).
    """
    if m_values is None:
        m_values = default_m_values(n)
    if baseline_dims is None:
        baseline_dims = tuple(range(n, max(n - 3, 0) - 1, -1))
    params = params if params is not None else MachineParams.ncube7()
    rng = np.random.default_rng(seed)
    series: dict[str, tuple[float, ...]] = {}

    for k in baseline_dims:
        times = []
        for m in m_values:
            keys = rng.random(m)
            times.append(fault_free_bitonic_sort(keys, k, params=params).elapsed)
        series[f"fault-free Q_{k}"] = tuple(times)

    for r in range(1, n):
        times = []
        for m in m_values:
            acc = 0.0
            for _ in range(placements):
                faults = random_faulty_processors(n, r, rng)
                keys = rng.random(m)
                acc += fault_tolerant_sort(keys, n, list(faults), params=params).elapsed
            times.append(acc / placements)
        series[f"ft r={r}"] = tuple(times)

    return Figure7Panel(n=n, m_values=tuple(m_values), series=series, placements=placements)


def render_figure7(panel: Figure7Panel) -> str:
    """Text rendering: one x column (M) and one column per curve."""
    return format_series(
        "M",
        list(panel.m_values),
        {k: list(v) for k, v in panel.series.items()},
        title=(
            f"Figure 7 — Q_{panel.n}: execution time (us) vs number of keys; "
            f"proposed algorithm averaged over {panel.placements} fault placements"
        ),
    )


def render_figure7_svg(panel: Figure7Panel) -> str:
    """SVG rendering (log-log), thick dashed baselines per the paper."""
    from repro.experiments.svgplot import line_chart

    return line_chart(
        list(panel.m_values),
        {k: list(v) for k, v in panel.series.items()},
        title=f"Figure 7 — Q_{panel.n}: execution time vs number of keys",
        x_label="number of keys M",
        y_label="simulated time (us)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.experiments.figure7 --n 6``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6, help="hypercube dimension (panel)")
    parser.add_argument("--points", type=int, default=5, help="M sweep points")
    parser.add_argument("--placements", type=int, default=DEFAULT_PLACEMENTS)
    parser.add_argument("--seed", type=int, default=19920407)
    parser.add_argument("--svg", type=str, default=None,
                        help="also write the panel as an SVG chart to this path")
    args = parser.parse_args(argv)
    panel = compute_figure7(
        args.n,
        m_values=default_m_values(args.n, args.points),
        placements=args.placements,
        seed=args.seed,
    )
    print(render_figure7(panel))
    if args.svg:
        from repro.experiments.svgplot import save_chart

        save_chart(args.svg, render_figure7_svg(panel))
        print(f"\nSVG written to {args.svg}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
