"""Model check: the paper's closed-form worst case vs simulated time.

Section 3 derives a worst-case execution time ``T``; the paper never plots
it against measurements.  This experiment does: for each ``(n, r)`` it
simulates the sort (startup excluded, matching the formula's terms) over
random placements and reports the measured/bound ratio.  Ratios must stay
at or below 1 (the bound is sound) and meaningfully above 0 (the bound is
not vacuous) — both asserted in the test suite and the benchmark.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import model_accuracy
from repro.experiments.report import format_table
from repro.faults.inject import random_faulty_processors
from repro.simulator.params import MachineParams

__all__ = ["ModelCheckCell", "compute_modelcheck", "render_modelcheck", "main"]


@dataclass(frozen=True)
class ModelCheckCell:
    """Measured/bound statistics for one ``(n, r)``."""

    n: int
    r: int
    keys: int
    placements: int
    mean_ratio: float
    max_ratio: float


def compute_modelcheck(
    ns: tuple[int, ...] = (4, 5, 6),
    keys_per_proc: int = 1000,
    placements: int = 5,
    params: MachineParams | None = None,
    seed: int = 19920403,
) -> list[ModelCheckCell]:
    """Measured/bound ratios over the ``(n, r)`` grid."""
    rng = np.random.default_rng(seed)
    cells: list[ModelCheckCell] = []
    for n in ns:
        m_keys = keys_per_proc * (1 << n)
        for r in range(0, n):
            ratios = []
            for _ in range(placements):
                faults = list(random_faulty_processors(n, r, rng))
                acc = model_accuracy(
                    m_keys, n, faults, params=params, seed=int(rng.integers(1 << 30))
                )
                ratios.append(acc.ratio)
            cells.append(
                ModelCheckCell(
                    n=n,
                    r=r,
                    keys=m_keys,
                    placements=placements,
                    mean_ratio=float(np.mean(ratios)),
                    max_ratio=float(np.max(ratios)),
                )
            )
    return cells


def render_modelcheck(cells: list[ModelCheckCell]) -> str:
    """Paper-style table of measured/bound ratios."""
    headers = ["n", "r", "keys", "mean measured/bound", "max measured/bound"]
    rows = [[c.n, c.r, c.keys, c.mean_ratio, c.max_ratio] for c in cells]
    return format_table(
        headers,
        rows,
        title="Model check — simulated time as a fraction of the paper's worst-case T",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.experiments.modelcheck``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keys-per-proc", type=int, default=1000)
    parser.add_argument("--placements", type=int, default=5)
    parser.add_argument("--seed", type=int, default=19920403)
    parser.add_argument("--ns", type=int, nargs="+", default=[4, 5, 6])
    args = parser.parse_args(argv)
    cells = compute_modelcheck(
        ns=tuple(args.ns),
        keys_per_proc=args.keys_per_proc,
        placements=args.placements,
        seed=args.seed,
    )
    print(render_modelcheck(cells))
    bad = [c for c in cells if c.max_ratio > 1.0]
    if bad:
        print(f"\nWARNING: bound violated for {[(c.n, c.r) for c in bad]}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
