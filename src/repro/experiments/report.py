"""Plain-text rendering of experiment results.

The paper's artifacts are tables and line plots; in a terminal-first
reproduction we print aligned tables and per-series columns that can be
diffed against EXPERIMENTS.md or piped into a plotting tool.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

__all__ = ["format_table", "format_series", "to_csv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    def cell(x: object) -> str:
        if isinstance(x, float):
            return f"{x:.2f}"
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    cols = len(headers)
    for row in str_rows:
        if len(row) != cols:
            raise ValueError(f"row {row} has {len(row)} cells, expected {cols}")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render the same (headers, rows) data as RFC-4180 CSV.

    Machine-readable companion to :func:`format_table`; the reproduce-all
    runner writes one ``.csv`` beside every ``.txt`` artifact.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {len(headers)}")
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render line-plot data as one x column plus one column per series."""
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(x_values)}"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[name][idx] for name in series)]
        for idx, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
