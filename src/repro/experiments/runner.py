"""Reproduce the whole evaluation with one command.

``repro-all --out results/`` (or ``python -m repro.experiments.runner``)
regenerates every artifact — Table 1, Table 2, all four Figure-7 panels
(text + SVG), the model check, and the reliability comparison — into an
output directory, with a MANIFEST.txt recording what was produced, the
seeds, and the trial counts.  Reduced scales are available via ``--quick``
for CI-style smoke runs.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.experiments.figure7 import (
    compute_figure7,
    default_m_values,
    render_figure7,
    render_figure7_svg,
)
from repro.experiments.modelcheck import compute_modelcheck, render_modelcheck
from repro.experiments.report import to_csv
from repro.experiments.table1 import compute_table1, render_table1
from repro.experiments.table2 import compute_table2, render_table2
from repro.experiments.svgplot import save_chart

__all__ = ["run_all", "main"]


def _table1_csv(cells) -> str:
    max_m = max((max(c.percent_by_mincut, default=0) for c in cells), default=0)
    headers = ["n", "r", *[f"pct_m{m}" for m in range(max_m + 1)]]
    rows = [[c.n, c.r, *[c.percent(m) for m in range(max_m + 1)]] for c in cells]
    return to_csv(headers, rows)


def _table2_csv(cells) -> str:
    headers = ["n", "r", "proposed_best", "proposed_worst",
               "baseline_best", "baseline_worst"]
    rows = [[c.n, c.r, c.proposed_best, c.proposed_worst,
             c.baseline_best, c.baseline_worst] for c in cells]
    return to_csv(headers, rows)


def _figure7_csv(panel) -> str:
    headers = ["M", *panel.series.keys()]
    rows = [
        [m, *(panel.series[name][idx] for name in panel.series)]
        for idx, m in enumerate(panel.m_values)
    ]
    return to_csv(headers, rows)


def _write(out_dir: str, name: str, content: str, manifest: list[str]) -> None:
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content if content.endswith("\n") else content + "\n")
    manifest.append(name)


def run_all(out_dir: str, quick: bool = False, seed: int = 1992) -> list[str]:
    """Regenerate every artifact into ``out_dir``; returns the manifest."""
    os.makedirs(out_dir, exist_ok=True)
    manifest: list[str] = []
    t0 = time.perf_counter()

    trials = 1000 if quick else 10_000
    table1 = compute_table1(trials=trials, seed=seed, method="vectorized")
    _write(out_dir, "table1.txt", render_table1(table1), manifest)
    _write(out_dir, "table1.csv", _table1_csv(table1), manifest)

    t2_trials = 500 if quick else 10_000
    table2 = compute_table2(trials=t2_trials, seed=seed + 1)
    _write(out_dir, "table2.txt", render_table2(table2), manifest)
    _write(out_dir, "table2.csv", _table2_csv(table2), manifest)

    points = 3 if quick else 5
    placements = 2 if quick else 5
    for n, panel_name in ((6, "a"), (5, "b"), (3, "c"), (4, "d")):
        panel = compute_figure7(
            n,
            m_values=default_m_values(n, points),
            placements=placements,
            seed=seed + 7,
        )
        _write(out_dir, f"figure7{panel_name}.txt", render_figure7(panel), manifest)
        _write(out_dir, f"figure7{panel_name}.csv", _figure7_csv(panel), manifest)
        save_chart(os.path.join(out_dir, f"figure7{panel_name}.svg"),
                   render_figure7_svg(panel))
        manifest.append(f"figure7{panel_name}.svg")

    mc = compute_modelcheck(
        ns=(4, 5) if quick else (4, 5, 6),
        keys_per_proc=200 if quick else 1000,
        placements=2 if quick else 5,
        seed=seed + 3,
    )
    _write(out_dir, "modelcheck.txt", render_modelcheck(mc), manifest)

    from repro.experiments.workloads import (
        compute_data_sensitivity,
        render_data_sensitivity,
    )

    sens = compute_data_sensitivity(
        m_keys=24 * (200 if quick else 1000), seed=seed + 4
    )
    _write(out_dir, "data_sensitivity.txt", render_data_sensitivity(sens), manifest)

    # Structural diagrams (the paper's Figures 3 and 5).
    from repro.experiments.cubeviz import partition_diagram

    save_chart(
        os.path.join(out_dir, "figure3_partition_q4.svg"),
        partition_diagram(4, [0, 6, 9],
                          title="Figure 3 — Q_4 partitioned, faults {0, 6, 9}"),
    )
    manifest.append("figure3_partition_q4.svg")
    save_chart(
        os.path.join(out_dir, "figure5_partition_q5.svg"),
        partition_diagram(5, [3, 5, 16, 24],
                          title="Figure 5 — Q_5 under D_beta = (0,1,3), Example 1"),
    )
    manifest.append("figure5_partition_q5.svg")

    elapsed = time.perf_counter() - t0
    lines = [
        "repro — full evaluation manifest",
        f"seed: {seed}   quick: {quick}   wall-clock: {elapsed:.1f}s",
        f"table trials: {trials} (table1, vectorized), {t2_trials} (table2)",
        f"figure7: {points} key counts x {placements} placements per r",
        "",
        *manifest,
    ]
    _write(out_dir, "MANIFEST.txt", "\n".join(lines), manifest[:0])
    return manifest


def main(argv: list[str] | None = None) -> int:
    """CLI: ``repro-all --out results [--quick]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=str, default="results")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=1992)
    args = parser.parse_args(argv)
    manifest = run_all(args.out, quick=args.quick, seed=args.seed)
    print(f"wrote {len(manifest)} artifacts to {args.out}/ (see MANIFEST.txt)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
