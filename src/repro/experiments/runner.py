"""Reproduce the whole evaluation with one command.

``repro-all --out results/`` (or ``python -m repro.experiments.runner``)
regenerates every artifact — Table 1, Table 2, all four Figure-7 panels
(text + SVG), the model check, and the reliability comparison — into an
output directory, with a MANIFEST.txt recording what was produced, the
seeds, and the trial counts.  Reduced scales are available via ``--quick``
for CI-style smoke runs, and ``--jobs`` fans the independent artifacts out
over worker processes (each artifact's seed is fixed by the top-level seed
alone, so the outputs are identical to a serial run).
"""

from __future__ import annotations

import argparse
import os
import time

from repro.experiments.figure7 import (
    compute_figure7,
    default_m_values,
    render_figure7,
    render_figure7_svg,
)
from repro.experiments.modelcheck import compute_modelcheck, render_modelcheck
from repro.experiments.report import to_csv
from repro.experiments.table1 import compute_table1, render_table1
from repro.experiments.table2 import compute_table2, render_table2
from repro.experiments.svgplot import save_chart
from repro.parallel import run_tasks

__all__ = ["run_all", "main"]


def _table1_csv(cells) -> str:
    max_m = max((max(c.percent_by_mincut, default=0) for c in cells), default=0)
    headers = ["n", "r", *[f"pct_m{m}" for m in range(max_m + 1)]]
    rows = [[c.n, c.r, *[c.percent(m) for m in range(max_m + 1)]] for c in cells]
    return to_csv(headers, rows)


def _table2_csv(cells) -> str:
    headers = ["n", "r", "proposed_best", "proposed_worst",
               "baseline_best", "baseline_worst"]
    rows = [[c.n, c.r, c.proposed_best, c.proposed_worst,
             c.baseline_best, c.baseline_worst] for c in cells]
    return to_csv(headers, rows)


def _figure7_csv(panel) -> str:
    headers = ["M", *panel.series.keys()]
    rows = [
        [m, *(panel.series[name][idx] for name in panel.series)]
        for idx, m in enumerate(panel.m_values)
    ]
    return to_csv(headers, rows)


def _write(out_dir: str, name: str, content: str, manifest: list[str]) -> None:
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content if content.endswith("\n") else content + "\n")
    manifest.append(name)


# Artifact task order fixes the MANIFEST order; each task is independent
# and carries its own seed offset, so any subset can run in any process.
_FIGURE7_PANELS = {"a": 6, "b": 5, "c": 3, "d": 4}
_TASK_NAMES = ("table1", "table2", "figure7a", "figure7b", "figure7c",
               "figure7d", "modelcheck", "sensitivity", "diagrams")


def _artifact_task(task: tuple) -> list[tuple[str, str, str]]:
    """Produce one artifact group: ``(filename, content, kind)`` triples.

    ``kind`` is ``"text"`` (newline-normalized) or ``"svg"`` (verbatim).
    Module-level and returning plain strings so it can run in a worker
    process; the parent writes the files in manifest order.
    """
    name, quick, seed = task
    if name == "table1":
        trials = 1000 if quick else 10_000
        cells = compute_table1(trials=trials, seed=seed, method="vectorized")
        return [("table1.txt", render_table1(cells), "text"),
                ("table1.csv", _table1_csv(cells), "text")]
    if name == "table2":
        t2_trials = 500 if quick else 10_000
        cells = compute_table2(trials=t2_trials, seed=seed + 1)
        return [("table2.txt", render_table2(cells), "text"),
                ("table2.csv", _table2_csv(cells), "text")]
    if name.startswith("figure7"):
        panel_name = name[len("figure7"):]
        n = _FIGURE7_PANELS[panel_name]
        points = 3 if quick else 5
        placements = 2 if quick else 5
        panel = compute_figure7(
            n,
            m_values=default_m_values(n, points),
            placements=placements,
            seed=seed + 7,
        )
        return [(f"figure7{panel_name}.txt", render_figure7(panel), "text"),
                (f"figure7{panel_name}.csv", _figure7_csv(panel), "text"),
                (f"figure7{panel_name}.svg", render_figure7_svg(panel), "svg")]
    if name == "modelcheck":
        mc = compute_modelcheck(
            ns=(4, 5) if quick else (4, 5, 6),
            keys_per_proc=200 if quick else 1000,
            placements=2 if quick else 5,
            seed=seed + 3,
        )
        return [("modelcheck.txt", render_modelcheck(mc), "text")]
    if name == "sensitivity":
        from repro.experiments.workloads import (
            compute_data_sensitivity,
            render_data_sensitivity,
        )

        sens = compute_data_sensitivity(
            m_keys=24 * (200 if quick else 1000), seed=seed + 4
        )
        return [("data_sensitivity.txt", render_data_sensitivity(sens), "text")]
    if name == "diagrams":
        # Structural diagrams (the paper's Figures 3 and 5).
        from repro.experiments.cubeviz import partition_diagram

        return [
            ("figure3_partition_q4.svg",
             partition_diagram(4, [0, 6, 9],
                               title="Figure 3 — Q_4 partitioned, faults {0, 6, 9}"),
             "svg"),
            ("figure5_partition_q5.svg",
             partition_diagram(5, [3, 5, 16, 24],
                               title="Figure 5 — Q_5 under D_beta = (0,1,3), Example 1"),
             "svg"),
        ]
    raise ValueError(f"unknown artifact task {name!r}")


def run_all(out_dir: str, quick: bool = False, seed: int = 1992,
            jobs: int = 1, executor: str | None = None) -> list[str]:
    """Regenerate every artifact into ``out_dir``; returns the manifest.

    ``jobs > 1`` computes the artifact groups in parallel workers
    (``executor`` picks the tier — serial/process/thread/shm/auto); files
    are still written by the parent, in the fixed manifest order, with
    contents identical to a serial run.
    """
    os.makedirs(out_dir, exist_ok=True)
    manifest: list[str] = []
    t0 = time.perf_counter()

    results = run_tasks(
        _artifact_task, [(name, quick, seed) for name in _TASK_NAMES],
        jobs=jobs, executor=executor,
    )
    for files in results:
        for fname, content, kind in files:
            if kind == "svg":
                save_chart(os.path.join(out_dir, fname), content)
                manifest.append(fname)
            else:
                _write(out_dir, fname, content, manifest)

    trials = 1000 if quick else 10_000
    t2_trials = 500 if quick else 10_000
    points = 3 if quick else 5
    placements = 2 if quick else 5
    elapsed = time.perf_counter() - t0
    from repro.plancache import PLAN_CACHE

    # Deterministic across jobs counts (hit/miss totals are per-process and
    # would differ between serial and fanned-out runs).
    cache_state = "enabled" if PLAN_CACHE.enabled else "disabled"
    lines = [
        "repro — full evaluation manifest",
        f"seed: {seed}   quick: {quick}   jobs: {jobs}   wall-clock: {elapsed:.1f}s",
        f"table trials: {trials} (table1, vectorized), {t2_trials} (table2)",
        f"figure7: {points} key counts x {placements} placements per r",
        f"plan cache: {cache_state}",
        "",
        *manifest,
    ]
    _write(out_dir, "MANIFEST.txt", "\n".join(lines), manifest[:0])
    return manifest


def main(argv: list[str] | None = None) -> int:
    """CLI: ``repro-all --out results [--quick] [--jobs J] [--executor E]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=str, default="results")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=1992)
    parser.add_argument("--jobs", type=str, default=None,
                        help="workers: N, 'auto'/0 = all usable CPUs "
                             "(default: $REPRO_JOBS, else 1)")
    parser.add_argument("--executor", type=str, default=None,
                        choices=("serial", "process", "thread", "shm", "auto"),
                        help="executor tier (default: $REPRO_EXECUTOR, else auto)")
    parser.add_argument("--plan-cache", choices=("on", "off"), default="on",
                        help="disable the memoizing planning layer with 'off'")
    args = parser.parse_args(argv)
    from repro.parallel import jobs_from_env, resolve_jobs

    if args.plan_cache == "off":
        from repro.plancache import PLAN_CACHE

        PLAN_CACHE.configure(enabled=False)

    jobs = resolve_jobs(args.jobs) if args.jobs is not None else jobs_from_env(1)
    manifest = run_all(args.out, quick=args.quick, seed=args.seed,
                       jobs=jobs, executor=args.executor)
    print(f"wrote {len(manifest)} artifacts to {args.out}/ (see MANIFEST.txt)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
