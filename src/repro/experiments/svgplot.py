"""Dependency-free SVG line charts for the figure regenerators.

The environment this reproduction targets has no plotting stack, so the
Figure-7 regenerator renders its panels as hand-built SVG: log-log line
chart, one polyline per series, right-hand legend, decade gridlines.  The
output is a plain string; :func:`save_chart` writes it to disk.

Only the features the figures need are implemented (log scales, line +
marker series, title/axis labels); this is a rendering utility, not a
plotting library.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from xml.sax.saxutils import escape

__all__ = ["line_chart", "save_chart", "PALETTE"]

#: Distinguishable line colors (Okabe-Ito, colorblind-safe).
PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#000000",
)

_WIDTH, _HEIGHT = 860, 520
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 80, 230, 50, 60


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Decade tick positions covering [lo, hi]."""
    start = math.floor(math.log10(lo))
    end = math.ceil(math.log10(hi))
    return [10.0 ** e for e in range(start, end + 1)]


def _fmt(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:g}M"
    if value >= 1e3:
        return f"{value / 1e3:g}k"
    return f"{value:g}"


def line_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_x: bool = True,
    log_y: bool = True,
) -> str:
    """Render a line chart as an SVG document string.

    Args:
        x_values: shared x coordinates (positive if ``log_x``).
        series: label -> y values (each the length of ``x_values``).
        title, x_label, y_label: annotations.
        log_x, log_y: logarithmic axes (the Figure-7 default).
    """
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    if len(x_values) < 2:
        raise ValueError("need at least two x points")
    all_y = [y for ys in series.values() for y in ys]
    x_lo, x_hi = min(x_values), max(x_values)
    y_lo, y_hi = min(all_y), max(all_y)
    if log_x and x_lo <= 0 or log_y and y_lo <= 0:
        raise ValueError("log axes need positive data")

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def sx(x: float) -> float:
        if log_x:
            f = (math.log10(x) - math.log10(x_lo)) / (math.log10(x_hi) - math.log10(x_lo))
        else:
            f = (x - x_lo) / (x_hi - x_lo)
        return _MARGIN_L + f * plot_w

    def sy(y: float) -> float:
        if log_y:
            f = (math.log10(y) - math.log10(y_lo)) / (math.log10(y_hi) - math.log10(y_lo))
        else:
            f = (y - y_lo) / (y_hi - y_lo)
        return _MARGIN_T + (1.0 - f) * plot_h

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}" font-family="sans-serif">'
    )
    parts.append(f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>')
    if title:
        parts.append(
            f'<text x="{_WIDTH / 2}" y="28" text-anchor="middle" font-size="16" '
            f'font-weight="bold">{escape(title)}</text>'
        )

    # Gridlines and tick labels.
    x_ticks = _log_ticks(x_lo, x_hi) if log_x else [x_lo, (x_lo + x_hi) / 2, x_hi]
    y_ticks = _log_ticks(y_lo, y_hi) if log_y else [y_lo, (y_lo + y_hi) / 2, y_hi]
    for t in x_ticks:
        if not x_lo <= t <= x_hi:
            continue
        px = sx(t)
        parts.append(
            f'<line x1="{px:.1f}" y1="{_MARGIN_T}" x2="{px:.1f}" '
            f'y2="{_MARGIN_T + plot_h}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{_MARGIN_T + plot_h + 18}" text-anchor="middle" '
            f'font-size="11">{_fmt(t)}</text>'
        )
    for t in y_ticks:
        if not y_lo <= t <= y_hi:
            continue
        py = sy(t)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{py:.1f}" x2="{_MARGIN_L + plot_w}" '
            f'y2="{py:.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{py + 4:.1f}" text-anchor="end" '
            f'font-size="11">{_fmt(t)}</text>'
        )

    # Axes frame.
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#333333"/>'
    )
    if x_label:
        parts.append(
            f'<text x="{_MARGIN_L + plot_w / 2}" y="{_HEIGHT - 14}" '
            f'text-anchor="middle" font-size="13">{escape(x_label)}</text>'
        )
    if y_label:
        cy = _MARGIN_T + plot_h / 2
        parts.append(
            f'<text x="20" y="{cy}" text-anchor="middle" font-size="13" '
            f'transform="rotate(-90 20 {cy})">{escape(y_label)}</text>'
        )

    # Series polylines + legend.
    for idx, (name, ys) in enumerate(series.items()):
        color = PALETTE[idx % len(PALETTE)]
        dashed = name.startswith("fault-free")
        pts = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(x_values, ys))
        dash = ' stroke-dasharray="7,4"' if dashed else ""
        width = 2.5 if dashed else 1.8
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"{dash}/>'
        )
        for x, y in zip(x_values, ys):
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" fill="{color}"/>'
            )
        ly = _MARGIN_T + 14 + idx * 20
        lx = _MARGIN_L + plot_w + 14
        parts.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 26}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="{width}"{dash}/>'
        )
        parts.append(
            f'<text x="{lx + 32}" y="{ly}" font-size="12">{escape(name)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_chart(path: str, svg: str) -> None:
    """Write an SVG document to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
