"""Table 1: distribution of ``mincut`` values over random fault placements.

For each hypercube dimension ``n`` and fault count ``r``, the paper draws
``r`` faulty addresses uniformly at random 10000 times and reports the
percentage of placements whose minimum cut count is each possible ``m``
(e.g. ``n = 6, r = 5``: 93.85% of placements partition with ``m = 3``).
Small ``mincut`` means few dangling processors, which is the paper's
headline utilization argument.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.core.partition import find_min_cuts
from repro.experiments.report import format_table
from repro.faults.inject import random_faulty_processors

__all__ = ["Table1Cell", "compute_table1", "render_table1", "main"]

DEFAULT_NS = (3, 4, 5, 6)
DEFAULT_TRIALS = 10000


@dataclass(frozen=True)
class Table1Cell:
    """Mincut distribution for one ``(n, r)``.

    Attributes:
        n: hypercube dimension.
        r: number of faulty processors.
        trials: number of random placements.
        percent_by_mincut: mapping mincut value -> percentage of trials.
    """

    n: int
    r: int
    trials: int
    percent_by_mincut: dict[int, float]

    def percent(self, m: int) -> float:
        """Percentage of placements with ``mincut == m`` (0.0 if none)."""
        return self.percent_by_mincut.get(m, 0.0)


def compute_table1(
    ns: tuple[int, ...] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    seed: int = 19920401,
    method: str = "dfs",
) -> list[Table1Cell]:
    """Monte-Carlo mincut distribution for every ``(n, r)`` cell.

    ``r`` ranges over ``0 .. n-1`` as in the paper.  Deterministic for a
    given seed.  ``method``: ``"dfs"`` runs the reference partition
    algorithm per placement; ``"vectorized"`` uses the numpy batch engine
    (:mod:`repro.core.partition_fast`) — ~30x faster, statistically
    identical (cross-checked in the test suite), different sampling
    stream.
    """
    if method not in ("dfs", "vectorized"):
        raise ValueError(f"method must be 'dfs' or 'vectorized', got {method!r}")
    rng = np.random.default_rng(seed)
    cells: list[Table1Cell] = []
    for n in ns:
        for r in range(0, n):
            if method == "vectorized":
                from repro.core.partition_fast import mincut_distribution_fast

                percents = mincut_distribution_fast(n, r, trials, rng)
            else:
                counts: dict[int, int] = {}
                for _ in range(trials):
                    faults = random_faulty_processors(n, r, rng)
                    m = find_min_cuts(n, faults).mincut
                    counts[m] = counts.get(m, 0) + 1
                percents = {m: 100.0 * c / trials for m, c in sorted(counts.items())}
            cells.append(Table1Cell(n=n, r=r, trials=trials, percent_by_mincut=percents))
    return cells


def render_table1(cells: list[Table1Cell]) -> str:
    """Paper-style rows: one per ``(n, r)``, columns per mincut value."""
    max_m = max((max(c.percent_by_mincut, default=0) for c in cells), default=0)
    headers = ["n", "r", *[f"m={m} (%)" for m in range(max_m + 1)]]
    rows = []
    for c in cells:
        rows.append([c.n, c.r, *[c.percent(m) for m in range(max_m + 1)]])
    return format_table(
        headers,
        rows,
        title=f"Table 1 — mincut distribution ({cells[0].trials if cells else 0} trials/cell)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.experiments.table1 [--trials N] [--seed S]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument("--seed", type=int, default=19920401)
    parser.add_argument(
        "--ns", type=int, nargs="+", default=list(DEFAULT_NS), help="hypercube dimensions"
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="use the vectorized batch engine (different sampling stream)",
    )
    args = parser.parse_args(argv)
    cells = compute_table1(
        ns=tuple(args.ns),
        trials=args.trials,
        seed=args.seed,
        method="vectorized" if args.fast else "dfs",
    )
    print(render_table1(cells))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
