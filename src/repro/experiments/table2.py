"""Table 2: processor utilization — proposed scheme vs max fault-free subcube.

Utilization is "actually running processors / normal processors".  For the
proposed scheme the partition idles ``2**mincut - r`` dangling processors
(none when ``mincut = 0``); for the baseline only the largest fault-free
subcube runs.  Per the paper's ``n = 6, r = 4`` example: proposed 100%
(best, ``m = 2``) / 93.3% (worst, ``m = 3``), baseline 53.3% / 26.6%.

Best/worst cases are taken over random fault placements, exactly like the
paper's Monte-Carlo; the analytic formulas live in :mod:`repro.core.cost`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.baselines.maxsubcube import max_fault_free_dim
from repro.core.cost import utilization_max_subcube, utilization_proposed
from repro.core.partition import find_min_cuts
from repro.experiments.report import format_table
from repro.faults.inject import random_faulty_processors

__all__ = ["Table2Cell", "compute_table2", "render_table2", "main"]

DEFAULT_NS = (3, 4, 5, 6)
DEFAULT_TRIALS = 10000


@dataclass(frozen=True)
class Table2Cell:
    """Utilization extremes for one ``(n, r)`` over random placements.

    All utilizations are percentages of the normal (non-faulty) processors.
    """

    n: int
    r: int
    trials: int
    proposed_best: float
    proposed_worst: float
    baseline_best: float
    baseline_worst: float


def compute_table2(
    ns: tuple[int, ...] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    seed: int = 19920402,
) -> list[Table2Cell]:
    """Monte-Carlo utilization extremes for every ``(n, r)`` cell."""
    rng = np.random.default_rng(seed)
    cells: list[Table2Cell] = []
    for n in ns:
        for r in range(0, n):
            prop_best = base_best = 0.0
            prop_worst = base_worst = 100.0
            for _ in range(trials):
                faults = random_faulty_processors(n, r, rng)
                mincut = find_min_cuts(n, faults).mincut
                prop = 100.0 * utilization_proposed(n, r, mincut)
                sub_dim = max_fault_free_dim(n, faults)
                base = 100.0 * utilization_max_subcube(n, r, sub_dim)
                prop_best = max(prop_best, prop)
                prop_worst = min(prop_worst, prop)
                base_best = max(base_best, base)
                base_worst = min(base_worst, base)
            cells.append(
                Table2Cell(
                    n=n,
                    r=r,
                    trials=trials,
                    proposed_best=prop_best,
                    proposed_worst=prop_worst,
                    baseline_best=base_best,
                    baseline_worst=base_worst,
                )
            )
    return cells


def render_table2(cells: list[Table2Cell]) -> str:
    """Paper-style rows: proposed and baseline utilization extremes."""
    headers = [
        "n",
        "r",
        "proposed best (%)",
        "proposed worst (%)",
        "max-subcube best (%)",
        "max-subcube worst (%)",
    ]
    rows = [
        [c.n, c.r, c.proposed_best, c.proposed_worst, c.baseline_best, c.baseline_worst]
        for c in cells
    ]
    return format_table(
        headers,
        rows,
        title=(
            "Table 2 — processor utilization, proposed vs maximum dimensional "
            f"fault-free subcube ({cells[0].trials if cells else 0} trials/cell)"
        ),
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.experiments.table2 [--trials N] [--seed S]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument("--seed", type=int, default=19920402)
    parser.add_argument(
        "--ns", type=int, nargs="+", default=list(DEFAULT_NS), help="hypercube dimensions"
    )
    args = parser.parse_args(argv)
    cells = compute_table2(ns=tuple(args.ns), trials=args.trials, seed=args.seed)
    print(render_table2(cells))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
