"""Workload generators and the data-sensitivity experiment.

The paper evaluates on uniform random keys only.  Because our
implementation (like any careful MIMD implementation) short-circuits
compare-splits whose blocks are already ordered, *time* is mildly
data-dependent even though the comparator network is oblivious — sorted
inputs skip most exchanges, adversarial patterns skip none.  This module
provides the classical workload family and an experiment quantifying the
sensitivity:

* ``uniform`` — the paper's workload;
* ``sorted`` / ``reversed`` — best/bad cases for the probe optimization;
* ``nearly-sorted`` — sorted with a small fraction of random swaps;
* ``few-distinct`` — heavy duplicates (8 distinct values);
* ``gaussian`` — clustered values;
* ``organ-pipe`` — up-down, the classic adversary for some partitions.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.ftsort import fault_tolerant_sort
from repro.experiments.report import format_table
from repro.simulator.params import MachineParams

__all__ = ["WORKLOADS", "generate_workload", "workload_names",
           "DataSensitivityRow", "compute_data_sensitivity", "render_data_sensitivity"]


def _uniform(m: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random(m)


def _sorted(m: int, rng: np.random.Generator) -> np.ndarray:
    return np.sort(rng.random(m))


def _reversed(m: int, rng: np.random.Generator) -> np.ndarray:
    return np.sort(rng.random(m))[::-1].copy()


def _nearly_sorted(m: int, rng: np.random.Generator) -> np.ndarray:
    a = np.sort(rng.random(m))
    swaps = max(m // 100, 1)
    for _ in range(swaps):
        i, j = rng.integers(0, m, size=2)
        a[i], a[j] = a[j], a[i]
    return a


def _few_distinct(m: int, rng: np.random.Generator) -> np.ndarray:
    return rng.integers(0, 8, size=m).astype(float)


def _gaussian(m: int, rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal(m)


def _organ_pipe(m: int, rng: np.random.Generator) -> np.ndarray:
    del rng
    return np.array([min(i, m - 1 - i) for i in range(m)], dtype=float)


WORKLOADS: dict[str, Callable[[int, np.random.Generator], np.ndarray]] = {
    "uniform": _uniform,
    "sorted": _sorted,
    "reversed": _reversed,
    "nearly-sorted": _nearly_sorted,
    "few-distinct": _few_distinct,
    "gaussian": _gaussian,
    "organ-pipe": _organ_pipe,
}


def workload_names() -> list[str]:
    """All registered workload names."""
    return sorted(WORKLOADS)


def generate_workload(name: str, m: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Generate ``m`` keys of the named workload."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; pick from {workload_names()}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    return factory(m, gen)


@dataclass(frozen=True)
class DataSensitivityRow:
    """Simulated time and traffic of one workload on a fixed scenario."""

    workload: str
    elapsed: float
    elements_sent: int
    relative_to_uniform: float


def compute_data_sensitivity(
    n: int = 5,
    faults: tuple[int, ...] = (3, 5, 16, 24),
    m_keys: int = 24 * 1000,
    params: MachineParams | None = None,
    seed: int = 19920405,
) -> list[DataSensitivityRow]:
    """Run every workload through the same faulty-cube scenario.

    All runs sort correctly (the network is oblivious); only time and
    traffic differ, through the probe short-circuit.
    """
    params = params if params is not None else MachineParams.ncube7()
    rng = np.random.default_rng(seed)
    results: dict[str, tuple[float, int]] = {}
    for name in workload_names():
        keys = generate_workload(name, m_keys, rng)
        res = fault_tolerant_sort(keys, n, list(faults), params=params)
        expected = np.sort(np.asarray(keys, dtype=float))
        if not np.array_equal(res.sorted_keys, expected):
            raise AssertionError(f"workload {name} mis-sorted")
        results[name] = (res.elapsed, res.machine.total_elements_sent())
    uniform_time = results["uniform"][0]
    return [
        DataSensitivityRow(
            workload=name,
            elapsed=elapsed,
            elements_sent=sent,
            relative_to_uniform=elapsed / uniform_time,
        )
        for name, (elapsed, sent) in sorted(results.items(), key=lambda kv: kv[1][0])
    ]


def render_data_sensitivity(rows: list[DataSensitivityRow]) -> str:
    """Paper-style table of the data-sensitivity experiment."""
    return format_table(
        ["workload", "time (us)", "elements sent", "vs uniform"],
        [[r.workload, r.elapsed, r.elements_sent, r.relative_to_uniform] for r in rows],
        title="Data sensitivity — same scenario, different key distributions",
    )
