"""Fault model, fault injection, and off-line diagnosis.

The paper assumes *permanent* processor faults whose locations are known
before the sort runs (off-line diagnosis per Banerjee).  This package makes
each of those assumptions an explicit, testable component:

* :mod:`repro.faults.model` — :class:`FaultSet`: which processors/links are
  faulty and whether processor faults are *total* (node and incident links
  dead) or *partial* (compute dead, message forwarding alive) in Hastad's
  terminology, which Section 4 of the paper uses verbatim.
* :mod:`repro.faults.inject` — seeded random fault-placement generators used
  by the Monte-Carlo sweeps (Tables 1-2, Figure 7).
* :mod:`repro.faults.diagnosis` — a PMC-style mutual-test diagnosis substrate
  demonstrating how fault locations become known.
"""

from repro.faults.model import FaultKind, FaultSet
from repro.faults.inject import (
    random_fault_set,
    random_faulty_processors,
    random_link_faults,
)
from repro.faults.diagnosis import DiagnosisResult, pmc_syndrome, diagnose_pmc
from repro.faults.linkplan import absorb_link_faults
from repro.faults.scenarios import SCENARIOS, make_scenario, scenario_names

__all__ = [
    "DiagnosisResult",
    "FaultKind",
    "FaultSet",
    "SCENARIOS",
    "absorb_link_faults",
    "make_scenario",
    "scenario_names",
    "diagnose_pmc",
    "pmc_syndrome",
    "random_fault_set",
    "random_faulty_processors",
    "random_link_faults",
]
