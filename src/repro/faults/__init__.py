"""Fault model, fault injection, and off-line diagnosis.

The paper assumes *permanent* processor faults whose locations are known
before the sort runs (off-line diagnosis per Banerjee).  This package makes
each of those assumptions an explicit, testable component:

* :mod:`repro.faults.model` — :class:`FaultSet`: which processors/links are
  faulty and whether processor faults are *total* (node and incident links
  dead) or *partial* (compute dead, message forwarding alive) in Hastad's
  terminology, which Section 4 of the paper uses verbatim.
* :mod:`repro.faults.inject` — seeded random fault-placement generators used
  by the Monte-Carlo sweeps (Tables 1-2, Figure 7).
* :mod:`repro.faults.diagnosis` — a PMC-style mutual-test diagnosis substrate
  demonstrating how fault locations become known, plus the hybrid
  (PMC + MM*) decoder for mixed crash/byzantine faults.
* :mod:`repro.faults.injectors` — deterministic comparison-lie and
  memory-corruption injectors consulted by every kernel backend.
* :mod:`repro.faults.oracles` — tolerance-aware disorder metrics and ABFT
  checksums that judge the injected universes.
* :mod:`repro.faults.universe` — the pluggable :class:`FaultClass`
  registry tying injectors, oracles, and recovery paths together for the
  chaos harness.
"""

from repro.faults.model import FaultKind, FaultSet
from repro.faults.inject import (
    random_fault_set,
    random_faulty_processors,
    random_link_faults,
)
from repro.faults.diagnosis import (
    DiagnosisResult,
    diagnose_hybrid,
    diagnose_pmc,
    hybrid_syndromes,
    mm_syndrome,
    pmc_syndrome,
)
from repro.faults.injectors import (
    ComparisonInjector,
    MemoryInjector,
    comparison_faults,
    memory_faults,
)
from repro.faults.linkplan import absorb_link_faults
from repro.faults.scenarios import SCENARIOS, make_scenario, scenario_names
from repro.faults.universe import (
    FaultClass,
    fault_class_names,
    fault_class_summaries,
    get_fault_class,
    register_fault_class,
)

__all__ = [
    "ComparisonInjector",
    "DiagnosisResult",
    "FaultClass",
    "FaultKind",
    "FaultSet",
    "MemoryInjector",
    "SCENARIOS",
    "absorb_link_faults",
    "comparison_faults",
    "diagnose_hybrid",
    "diagnose_pmc",
    "fault_class_names",
    "fault_class_summaries",
    "get_fault_class",
    "hybrid_syndromes",
    "make_scenario",
    "memory_faults",
    "mm_syndrome",
    "pmc_syndrome",
    "random_fault_set",
    "random_faulty_processors",
    "random_link_faults",
    "register_fault_class",
    "scenario_names",
]
