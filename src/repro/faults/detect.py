"""Incremental on-line fault diagnosis (drops the paper's off-line assumption).

The paper assumes every fault location is known *before* the sort starts
(off-line PMC diagnosis, Section 1).  This module is the on-line variant
that the runtime robustness layer feeds: when the execution engines
*suspect* a processor mid-run (a receive timed out, a reliable send gave
up), the suspicion is confirmed by actual neighbor tests instead of being
trusted blindly — a timeout can just as well mean congestion, a slow peer,
or a transitive stall behind some other fault.

Protocol (per suspicion)
------------------------
1. **Local round** — every neighbor of the suspect not already known to be
   faulty probes it.  Actually fault-free testers report the truth; faulty
   testers answer arbitrarily (sampled, the same adversary-free model as
   :func:`repro.faults.diagnosis.pmc_syndrome`).  A unanimous panel decides
   on the spot.
2. **Escalation** — any disagreement (some tester is lying) escalates to a
   full PMC syndrome over the whole cube, decoded with
   :func:`repro.faults.diagnosis.diagnose_pmc` — exact for ``|F| <= n``.
   A panel made up entirely of liars can return a unanimous wrong answer,
   but the runtime re-suspects on the next timeout and independent
   re-samples break the tie, so the protocol terminates with probability 1
   and in practice within a round or two.

The diagnoser is *incremental*: confirmed faults accumulate in
:attr:`OnlineDiagnoser.known` (and dead links in :attr:`known_links`), are
excluded from later test panels, and every decision is appended to
:attr:`log` as a :class:`DetectionRecord` — detection latency is
``confirmed_at - occurred_at`` and is what the chaos campaign reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cube.address import validate_address, validate_dimension
from repro.cube.topology import Hypercube
from repro.faults.diagnosis import diagnose_pmc, pmc_syndrome
from repro.faults.model import FaultSet

__all__ = ["DetectionRecord", "OnlineDiagnoser"]


@dataclass(frozen=True)
class DetectionRecord:
    """One confirmed-or-cleared suspicion.

    Attributes:
        kind: ``"processor"`` or ``"link"``.
        subject: processor address, or ``(a, b)`` link endpoints.
        occurred_at: when the fault actually arrived (``None`` for cleared
            false suspicions — nothing occurred).
        suspected_at: when the runtime first raised the suspicion.
        confirmed_at: when the verdict was reached (includes test time).
        faulty: the verdict.
        method: ``"local"`` (unanimous neighbor panel), ``"global"`` (full
            PMC syndrome decode), or ``"route-probe"`` (link located by
            probing a dropped message's path).
        rounds: local test rounds spent.
    """

    kind: str
    subject: int | tuple[int, int]
    occurred_at: float | None
    suspected_at: float
    confirmed_at: float
    faulty: bool
    method: str
    rounds: int = 1

    @property
    def latency(self) -> float | None:
        """Fault-arrival to confirmation, or ``None`` for false suspicions."""
        if self.occurred_at is None or not self.faulty:
            return None
        return self.confirmed_at - self.occurred_at


class OnlineDiagnoser:
    """Accumulating on-line diagnosis state shared by one supervised run.

    Args:
        n: hypercube dimension.
        known: processor addresses already known faulty (the off-line
            diagnosed set the run started with).
        known_links: links already known dead, as ``(a, b)`` endpoint pairs.
        probe_rtt: charged time of one parallel neighbor-test round
            (probe + reply); the global escalation costs two rounds plus a
            syndrome gather.
        rng: seeded generator driving the faulty testers' arbitrary reports.
    """

    def __init__(
        self,
        n: int,
        known: FaultSet | tuple[int, ...] | list[int] = (),
        known_links: tuple[tuple[int, int], ...] = (),
        probe_rtt: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ):
        self.n = validate_dimension(n)
        self.cube = Hypercube(n)
        if isinstance(known, FaultSet):
            known_links = tuple(known_links) + tuple(
                (node, node | (1 << dim)) for node, dim in known.links
            )
            known = known.processors
        self.known: set[int] = {validate_address(p, n) for p in known}
        self.known_links: set[tuple[int, int]] = {
            (min(a, b), max(a, b)) for a, b in known_links
        }
        self.probe_rtt = float(probe_rtt)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.log: list[DetectionRecord] = []

    # -- processor suspicions ------------------------------------------------

    def confirm_processor(
        self,
        suspect: int,
        truth,
        suspected_at: float,
        occurred_at: float | None = None,
    ) -> DetectionRecord:
        """Test a suspected processor; returns the appended record.

        ``truth`` is the ground-truth oracle ``truth(addr) -> bool`` the
        simulation provides (a real machine provides it by *being* the
        machine); the diagnoser only reads it through the test model —
        fault-free testers relay it, faulty testers garble it.
        """
        validate_address(suspect, self.n)
        if suspect in self.known:
            record = DetectionRecord(
                kind="processor", subject=suspect, occurred_at=occurred_at,
                suspected_at=suspected_at, confirmed_at=suspected_at,
                faulty=True, method="known", rounds=0,
            )
            self.log.append(record)
            return record
        testers = [nb for nb in self.cube.neighbors(suspect) if nb not in self.known]
        actual = bool(truth(suspect))
        verdict: bool | None = None
        method = "global"
        rounds = 1
        reports = [
            (int(self.rng.integers(0, 2)) == 1) if truth(nb) else actual
            for nb in testers
        ]
        if reports and all(r == reports[0] for r in reports):
            # Unanimous panel decides.  (A panel of nothing but liars can
            # produce a unanimous wrong answer; the runtime re-suspects on
            # the next timeout and independent resamples break the tie.)
            verdict = reports[0]
            method = "local"
        elapsed = rounds * self.probe_rtt
        if verdict is None:
            verdict = self._global_decode(suspect, truth)
            method = "global"
            elapsed += 2 * self.probe_rtt + self.n * self.probe_rtt
        if verdict:
            self.known.add(suspect)
        record = DetectionRecord(
            kind="processor", subject=suspect, occurred_at=occurred_at,
            suspected_at=suspected_at, confirmed_at=suspected_at + elapsed,
            faulty=bool(verdict), method=method, rounds=rounds,
        )
        self.log.append(record)
        return record

    def _global_decode(self, suspect: int, truth) -> bool:
        """Full PMC sweep: synthesize the whole cube's syndrome and decode."""
        hidden = FaultSet(self.n, [p for p in self.cube.nodes() if truth(p)])
        syndrome = pmc_syndrome(hidden, rng=self.rng)
        result = diagnose_pmc(self.n, syndrome, max_faults=self.n)
        return suspect in result.identified

    # -- link suspicions -----------------------------------------------------

    def confirm_link(
        self,
        a: int,
        b: int,
        suspected_at: float,
        occurred_at: float | None = None,
        confirmed_at: float | None = None,
    ) -> DetectionRecord:
        """Record a dead link located by probing a dropped message's path."""
        link = (min(a, b), max(a, b))
        already = link in self.known_links
        self.known_links.add(link)
        record = DetectionRecord(
            kind="link", subject=link, occurred_at=occurred_at,
            suspected_at=suspected_at,
            confirmed_at=suspected_at if confirmed_at is None else confirmed_at,
            faulty=True, method="known" if already else "route-probe", rounds=1,
        )
        self.log.append(record)
        return record

    # -- views ---------------------------------------------------------------

    def fault_view(self, base: FaultSet) -> FaultSet:
        """``base`` enlarged with everything confirmed so far (same kind)."""
        links = {
            (node, node | (1 << dim)) for node, dim in base.links
        } | self.known_links
        return FaultSet(
            base.n,
            sorted(set(base.processors) | self.known),
            kind=base.kind,
            links=sorted(links),
        )

    def confirmed_processors(self) -> tuple[int, ...]:
        """All processors confirmed faulty so far, ascending."""
        return tuple(sorted(self.known))

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"OnlineDiagnoser(n={self.n}, known={sorted(self.known)}, "
            f"links={sorted(self.known_links)}, decisions={len(self.log)})"
        )
