"""PMC-style off-line fault diagnosis substrate.

The paper *assumes* fault locations are known before sorting, citing
distributed diagnosis algorithms (Armstrong & Gray; Bhat) and Banerjee's
off-line diagnosis.  This module implements the assumption as a working
component: the classical PMC (Preparata-Metze-Chien) mutual-test model on
the hypercube's own links.

Model
-----
Every processor tests each of its ``n`` neighbors.  A *fault-free* tester
reports its neighbor's true status (0 = "pass", 1 = "fail"); a *faulty*
tester's report is arbitrary (we sample it).  The collected reports form the
*syndrome*.  A system is one-step ``t``-diagnosable iff every unit is tested
by more than ``t`` others and ``2t < N``; the hypercube has degree ``n``, so
up to ``t = n`` faults (more than the paper's ``n - 1``) are one-step
diagnosable for ``n >= 2``.

Decoding
--------
For ``|F| <= n`` the correct fault set is the unique set ``F`` of size
``<= t`` *consistent* with the syndrome (every 0-report by a unit outside F
points to a unit outside F, every 1-report by a unit outside F points into
F).  We decode with the classical O(N * n) sweep: a unit is provably
fault-free iff enough independent fault-free opinion supports it; here we
use the simple and exact (for the hypercube with t <= n-1) majority-of-
testers rule followed by a consistency check, falling back to exhaustive
search over candidate sets only for tiny systems in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cube.address import validate_dimension
from repro.cube.topology import Hypercube
from repro.faults.model import FaultSet

__all__ = [
    "DiagnosisResult",
    "diagnose_hybrid",
    "diagnose_pmc",
    "hybrid_syndromes",
    "mm_syndrome",
    "pmc_syndrome",
]


@dataclass(frozen=True)
class DiagnosisResult:
    """Outcome of syndrome decoding.

    Attributes:
        identified: sorted tuple of addresses declared faulty.
        consistent: whether the declared set fully explains the syndrome.
    """

    identified: tuple[int, ...]
    consistent: bool

    def matches(self, faults: FaultSet) -> bool:
        """Whether the diagnosis equals the true faulty-processor set."""
        return self.identified == faults.processors


def pmc_syndrome(
    faults: FaultSet, rng: np.random.Generator | int | None = None
) -> dict[tuple[int, int], int]:
    """Generate a PMC syndrome for the given fault configuration.

    Returns a dict mapping directed test ``(tester, tested)`` (hypercube
    neighbors) to the reported outcome: 0 pass / 1 fail.  Fault-free testers
    report truthfully; faulty testers report uniformly at random, the
    adversarial-free randomized variant standard in simulation studies.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    cube = faults.cube
    syndrome: dict[tuple[int, int], int] = {}
    for tester in cube.nodes():
        for tested in cube.neighbors(tester):
            if faults.is_faulty(tester):
                syndrome[(tester, tested)] = int(gen.integers(0, 2))
            else:
                syndrome[(tester, tested)] = 1 if faults.is_faulty(tested) else 0
    return syndrome


def _consistent(
    n: int, fault_candidates: frozenset[int], syndrome: dict[tuple[int, int], int]
) -> bool:
    """Whether declaring ``fault_candidates`` faulty explains the syndrome."""
    for (tester, tested), outcome in syndrome.items():
        if tester in fault_candidates:
            continue  # faulty tester may say anything
        truth = 1 if tested in fault_candidates else 0
        if outcome != truth:
            return False
    return True


def diagnose_pmc(
    n: int,
    syndrome: dict[tuple[int, int], int],
    max_faults: int | None = None,
) -> DiagnosisResult:
    """Decode a PMC syndrome on ``Q_n``, assuming at most ``max_faults`` faults.

    ``max_faults`` defaults to ``n - 1`` (the paper's bound).  Decoding uses
    the majority-of-testers rule: a unit accused ("fail") by a strict
    majority of its ``n`` testers is declared faulty.  With at most ``n - 1``
    faults every unit has at least one fault-free tester and every fault-free
    unit has at most ``n - 1`` faulty testers; the rule is then refined by a
    consistency-driven repair pass that is exact for ``t <= n - 1`` on the
    hypercube (validated against ground truth in the test suite).
    """
    validate_dimension(n)
    if max_faults is None:
        max_faults = max(n - 1, 0)
    cube = Hypercube(n)

    # Initial guess: majority vote of incoming test reports.
    accusations = {node: 0 for node in cube.nodes()}
    for (tester, tested), outcome in syndrome.items():
        if outcome == 1:
            accusations[tested] += 1
    guess = {node for node, acc in accusations.items() if 2 * acc > n}

    # Repair pass: iteratively enforce consistency.  A unit currently deemed
    # fault-free whose reports contradict the guess must itself be faulty
    # (fault-free units always report truthfully); move it and re-check.
    changed = True
    iterations = 0
    while changed and iterations <= cube.size:
        changed = False
        iterations += 1
        for (tester, tested), outcome in syndrome.items():
            if tester in guess:
                continue
            truth = 1 if tested in guess else 0
            if outcome != truth:
                if outcome == 1 and tested not in guess:
                    # Trusted tester accuses `tested`; with |F| <= n-1 a
                    # trusted (fault-free) tester is truthful, so `tested`
                    # must be faulty.
                    guess.add(tested)
                    changed = True
                elif outcome == 0 and tested in guess:
                    # Trusted tester clears `tested`: our guess wrongly
                    # included it, OR the tester itself is faulty.  Prefer
                    # removing from guess only if `tested` has some other
                    # trusted accuser; otherwise clear it.
                    trusted_accusers = sum(
                        1
                        for t2 in cube.neighbors(tested)
                        if t2 not in guess and syndrome.get((t2, tested)) == 1
                    )
                    if trusted_accusers == 0:
                        guess.discard(tested)
                        changed = True
                    else:
                        guess.add(tester)
                        changed = True
                if len(guess) > cube.size:  # pragma: no cover - safety valve
                    break

    # Pruning pass: the majority initialization can over-accuse — e.g. a
    # fault-free unit all of whose n testers are faulty (possible once
    # |F| = n) is unanimously accused and nothing above clears it.  Removing
    # a member is sound iff the syndrome stays consistent with the smaller
    # set (the removed unit's own reports become trusted and must then be
    # truthful); by one-step diagnosability any consistent set of size
    # <= max_faults is *the* fault set, so greedy removal cannot overshoot.
    if len(guess) > max_faults or not _consistent(n, frozenset(guess), syndrome):
        shrinking = True
        while shrinking:
            shrinking = False
            for x in sorted(guess):
                candidate = frozenset(guess) - {x}
                if _consistent(n, candidate, syndrome):
                    guess.discard(x)
                    shrinking = True
                    break

    # Last resort for small systems: exhaustive search over accused units.
    # Every faulty unit has a fault-free tester (for |F| <= n), hence at
    # least one accusation, so the true set is a subset of the accused pool.
    if (
        (len(guess) > max_faults or not _consistent(n, frozenset(guess), syndrome))
        and cube.size <= 32
    ):
        from itertools import combinations

        pool = sorted({tested for (_, tested), out in syndrome.items() if out == 1})
        found = None
        for k in range(max_faults + 1):
            for comb in combinations(pool, k):
                if _consistent(n, frozenset(comb), syndrome):
                    found = set(comb)
                    break
            if found is not None:
                break
        if found is not None:
            guess = found

    identified = tuple(sorted(guess))
    ok = _consistent(n, frozenset(guess), syndrome) and len(guess) <= max_faults
    return DiagnosisResult(identified=identified, consistent=ok)


# -- hybrid (PMC + MM*) diagnosis with mixed crash/byzantine faults --------
#
# The hybrid fault model distinguishes *how* a faulty processor misbehaves:
# a crashed unit is silent — it produces no test reports at all, and fails
# every test applied to it — while a byzantine unit answers arbitrarily
# (sampled uniformly here, the standard randomized stand-in).  Two test
# syndromes are combined:
#
# * PMC link tests as above, except crash testers contribute *no* entries
#   (their silence is itself evidence) and byzantine testers lie randomly;
# * MM*-style comparison tests: every processor ``w`` compares the
#   responses of each unordered pair ``{u, v}`` of its distinct neighbors
#   and reports 0 iff both responses agree with a fault-free computation —
#   which, under the usual MM assumption, happens iff both units are
#   fault-free.  Crash comparators are silent; byzantine comparators
#   report randomly.
#
# Decoding requires one set to explain *both* syndromes simultaneously —
# strictly more constraints than either alone, which is what lets the
# decoder pin down byzantine units whose random PMC reports happen to look
# plausible.


def hybrid_syndromes(
    faults: FaultSet, rng: np.random.Generator | int | None = None
) -> tuple[dict[tuple[int, int], int], dict[tuple[int, int, int], int]]:
    """Generate the (PMC, MM*) syndrome pair under mixed crash+byzantine faults.

    The crash/byzantine split comes from ``faults`` (see
    :class:`~repro.faults.model.FaultSet`'s ``byzantine`` parameter).
    Returns ``(pmc, mm)`` where ``pmc`` maps ``(tester, tested)`` to 0/1
    and ``mm`` maps ``(comparator, u, v)`` (``u < v`` neighbors of the
    comparator) to 0/1; silent (crashed) testers appear in neither.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    cube = faults.cube
    crash = frozenset(faults.crash)
    pmc: dict[tuple[int, int], int] = {}
    mm: dict[tuple[int, int, int], int] = {}
    for tester in cube.nodes():
        if tester in crash:
            continue  # silent: no reports of either kind
        byz_tester = faults.is_byzantine(tester)
        neighbors = list(cube.neighbors(tester))
        for tested in neighbors:
            if byz_tester:
                pmc[(tester, tested)] = int(gen.integers(0, 2))
            else:
                pmc[(tester, tested)] = 1 if faults.is_faulty(tested) else 0
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1 :]:
                a, b = (u, v) if u < v else (v, u)
                if byz_tester:
                    mm[(tester, a, b)] = int(gen.integers(0, 2))
                else:
                    mm[(tester, a, b)] = (
                        1 if faults.is_faulty(a) or faults.is_faulty(b) else 0
                    )
    return pmc, mm


def mm_syndrome(
    faults: FaultSet, rng: np.random.Generator | int | None = None
) -> dict[tuple[int, int, int], int]:
    """The MM* comparison-test syndrome alone (see :func:`hybrid_syndromes`)."""
    return hybrid_syndromes(faults, rng=rng)[1]


def _mm_consistent(
    candidates: frozenset[int], mm: dict[tuple[int, int, int], int]
) -> bool:
    """Whether declaring ``candidates`` faulty explains the MM* syndrome."""
    for (comparator, u, v), outcome in mm.items():
        if comparator in candidates:
            continue  # byzantine comparator may say anything
        truth = 1 if (u in candidates or v in candidates) else 0
        if outcome != truth:
            return False
    return True


def diagnose_hybrid(
    n: int,
    pmc: dict[tuple[int, int], int],
    mm: dict[tuple[int, int, int], int],
    max_faults: int | None = None,
) -> DiagnosisResult:
    """Decode a hybrid (PMC + MM*) syndrome pair on ``Q_n``.

    Silent units (those that produced no reports) are crashed by
    definition and enter the fault set immediately.  The remaining units
    are decoded by exact search over the accused pool for the smallest
    set that — together with the silent units — explains *both*
    syndromes; for the campaign's cube sizes (``N <= 32``) the search is
    exhaustive and the decoded set is the unique consistent one.  Larger
    systems fall back to the PMC decoder plus the silent set.
    """
    validate_dimension(n)
    if max_faults is None:
        max_faults = max(n - 1, 0)
    cube = Hypercube(n)

    reporters = {tester for tester, _ in pmc} | {w for w, _, _ in mm}
    silent = frozenset(node for node in cube.nodes() if node not in reporters)

    def explains(candidates: frozenset[int]) -> bool:
        if not silent <= candidates:
            return False
        return _consistent(n, candidates, pmc) and _mm_consistent(candidates, mm)

    if explains(silent) and len(silent) <= max_faults:
        return DiagnosisResult(identified=tuple(sorted(silent)), consistent=True)

    accused = {tested for (_, tested), out in pmc.items() if out == 1}
    accused |= {u for (_, u, _), out in mm.items() if out == 1}
    accused |= {v for (_, _, v), out in mm.items() if out == 1}
    pool = sorted(accused - silent)

    if cube.size <= 32:
        from itertools import combinations

        for k in range(max_faults - len(silent) + 1):
            for comb in combinations(pool, k):
                candidates = silent | frozenset(comb)
                if explains(candidates):
                    return DiagnosisResult(
                        identified=tuple(sorted(candidates)), consistent=True
                    )

    # Fallback: PMC decoding alone, augmented with the silent units.
    base = diagnose_pmc(n, pmc, max_faults=max_faults)
    guess = frozenset(base.identified) | silent
    ok = explains(guess) and len(guess) <= max_faults
    return DiagnosisResult(identified=tuple(sorted(guess)), consistent=ok)
