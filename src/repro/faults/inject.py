"""Seeded random fault injection.

The paper's experiments draw ``r`` faulty processor addresses uniformly at
random (without replacement) 10000 times per ``(n, r)`` cell.  These helpers
reproduce that sampling with a :class:`numpy.random.Generator` so every
experiment in this repository is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.cube.address import validate_dimension
from repro.cube.topology import Hypercube
from repro.faults.model import FaultKind, FaultSet

__all__ = ["random_faulty_processors", "random_link_faults", "random_fault_set"]


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_faulty_processors(
    n: int, r: int, rng: np.random.Generator | int | None = None
) -> tuple[int, ...]:
    """Sample ``r`` distinct faulty processor addresses of ``Q_n`` uniformly.

    Matches the paper's Monte-Carlo setup ("the addresses of r faulty
    processors are randomly generated").  Returns a sorted tuple.
    """
    validate_dimension(n)
    size = 1 << n
    if not 0 <= r <= size:
        raise ValueError(f"cannot place {r} faults in Q_{n} ({size} nodes)")
    gen = _as_rng(rng)
    picks = gen.choice(size, size=r, replace=False)
    return tuple(sorted(int(p) for p in picks))


def random_link_faults(
    n: int, count: int, rng: np.random.Generator | int | None = None
) -> tuple[tuple[int, int], ...]:
    """Sample ``count`` distinct faulty links of ``Q_n`` uniformly.

    Returned as ``(a, b)`` endpoint pairs with ``a < b`` (the form
    :class:`FaultSet` accepts).  Link faults are not part of the paper's
    evaluation but are part of its fault model statement ("failure of one
    or more processors/links"); the simulator honors them.
    """
    cube = Hypercube(n)
    all_links = [(node, node | (1 << d)) for node, d in cube.links()]
    if not 0 <= count <= len(all_links):
        raise ValueError(f"cannot place {count} link faults in Q_{n} ({len(all_links)} links)")
    gen = _as_rng(rng)
    idx = gen.choice(len(all_links), size=count, replace=False)
    return tuple(sorted(all_links[int(i)] for i in idx))


def random_fault_set(
    n: int,
    r: int,
    kind: FaultKind = FaultKind.TOTAL,
    link_faults: int = 0,
    rng: np.random.Generator | int | None = None,
) -> FaultSet:
    """Build a random :class:`FaultSet` with ``r`` processor faults.

    Convenience wrapper combining :func:`random_faulty_processors` and
    :func:`random_link_faults` under one generator so a single seed fixes
    the whole configuration.
    """
    gen = _as_rng(rng)
    procs = random_faulty_processors(n, r, gen)
    links = random_link_faults(n, link_faults, gen) if link_faults else ()
    return FaultSet(n, procs, kind=kind, links=links)
