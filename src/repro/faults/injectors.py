"""Deterministic fault injectors shared by every execution backend.

Two injector families, both *seeded and stateless per decision* so that
every backend — the pure-Python ``loop`` kernels, the vectorized ``numpy``
kernels, the whole-schedule ``compiled`` tier, and the message-level SPMD
engine — makes byte-identical fault decisions for the same seed:

* :class:`ComparisonInjector` — persistent random comparator lies (the
  Geissmann et al. model): a comparison between keys ``x`` and ``y`` is
  flipped with probability ``p``, and the *same unordered pair always
  lies the same way*, forever.  The decision is a pure hash of the pair's
  IEEE-754 bit patterns mixed with the seed, so it is symmetric in its
  operands (both SPMD partners of a compare-exchange reach the same —
  possibly wrong — conclusion, as a shared faulty comparator module
  would), and identical whether the comparison is evaluated one scalar at
  a time, as a 1-D duel, or as a batched 2-D substage.  Pairs involving
  non-finite keys never lie: the ``+inf`` padding dummies of
  :mod:`repro.core.blocks` keep comparing truthfully, which (by a 0-1
  argument: all finite keys project to 0, and equal-value flips are
  no-ops) pins them to the tail of the output where ``strip_padding``
  expects them.

* :class:`MemoryInjector` — silent memory-cell corruption at block load,
  just before the local heapsort of paper step 3: each key cell is
  independently overwritten with probability ``alpha`` by a deterministic
  replacement value (an integral float in ``[0, 10^6)``, guaranteed to
  differ from the original).  The hook point is
  :func:`repro.core.blocks.pad_and_chunk` — the single chokepoint every
  engine funnels key distribution through — so the corrupted multiset is
  identical across backends.

Injectors are activated through module-level context managers
(:func:`comparison_faults`, :func:`memory_faults`); the active injector
lives in *thread-local* slots — campaign worker processes each activate
their own, and under the thread executor tier
(:mod:`repro.parallel`, ``executor="thread"``) concurrent scenarios in
one process each see only the injector their own thread activated.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "ComparisonInjector",
    "MemoryInjector",
    "active_comparison",
    "active_memory",
    "comparison_faults",
    "memory_faults",
]

_U64 = np.uint64
_GAMMA = _U64(0x9E3779B97F4A7C15)
_MIX1 = _U64(0xBF58476D1CE4E5B9)
_MIX2 = _U64(0x94D049BB133111EB)
_FULL = float(2**64)


def _mix64(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over uint64 arrays (wrapping)."""
    with np.errstate(over="ignore"):
        z = (z + _GAMMA).astype(_U64)
        z = ((z ^ (z >> _U64(30))) * _MIX1).astype(_U64)
        z = ((z ^ (z >> _U64(27))) * _MIX2).astype(_U64)
        return z ^ (z >> _U64(31))


def _threshold(prob: float) -> np.uint64:
    """Probability as a 64-bit acceptance threshold (``hash < threshold``).

    Monotone by construction: a larger ``prob`` strictly enlarges the set
    of hashes that fire, so the decisions at ``p1 < p2`` are nested.
    """
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {prob}")
    return _U64(2**64 - 1) if prob >= 1.0 else _U64(int(prob * _FULL))


def _bits(values: np.ndarray) -> np.ndarray:
    """IEEE-754 bit patterns of a float64 array (copy when non-contiguous)."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    return arr.view(_U64)


class ComparisonInjector:
    """Persistent random comparison faults with rate ``p``.

    Attributes:
        p / seed: the configured lie rate and decision seed.
        evaluated: comparisons consulted (recorded calls only).
        fired: lies that actually fired, total.
        fired_probe: the subset fired on probe (skip-decision) comparisons
            — each of those misroutes up to a whole block, so the
            tolerance-aware oracles track them separately.
    """

    kind = "comparison"

    def __init__(self, p: float, seed: int = 0):
        self.p = float(p)
        self.seed = int(seed)
        self._thresh = _threshold(self.p)
        self._seed_mix = _mix64(np.array([self.seed], dtype=_U64))[0]
        self.evaluated = 0
        self.fired = 0
        self.fired_probe = 0

    def flip_pairs(
        self, x: np.ndarray, y: np.ndarray, kind: str = "duel",
        record: bool = True,
    ) -> np.ndarray:
        """Boolean flip mask for elementwise comparisons of ``x`` vs ``y``.

        Symmetric (``flip_pairs(x, y) == flip_pairs(y, x)``) and pure:
        the mask depends only on the unordered value pairs and the seed.
        Non-finite operands (padding) never flip.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        xb, yb = _bits(x), _bits(y)
        lo = np.minimum(xb, yb)
        hi = np.maximum(xb, yb)
        h = _mix64(_mix64(lo ^ self._seed_mix) ^ hi)
        flips = (h < self._thresh) & np.isfinite(x) & np.isfinite(y)
        if record:
            self.evaluated += int(flips.size)
            fired = int(np.count_nonzero(flips))
            self.fired += fired
            if kind == "probe":
                self.fired_probe += fired
        return flips

    def flip_one(
        self, x: float, y: float, kind: str = "probe", record: bool = True
    ) -> bool:
        """Scalar form of :meth:`flip_pairs` (same hash, same decisions)."""
        return bool(
            self.flip_pairs(
                np.array([x]), np.array([y]), kind=kind, record=record
            )[0]
        )


class MemoryInjector:
    """Silent per-cell memory corruption with rate ``alpha``.

    Each key cell's fate is a pure hash of ``(seed, flat cell index)``, so
    the corrupted multiset is identical across backends and across runs.
    Replacement values are integral floats in ``[0, 10^6)`` — the key
    domain of the seeded campaigns — and always differ from the original.

    Attributes:
        corrupted: total cells overwritten so far.
        cells: flat indices of the overwritten cells, in hook-call order.
    """

    kind = "memory"

    def __init__(self, alpha: float, seed: int = 0):
        self.alpha = float(alpha)
        self.seed = int(seed)
        self._thresh = _threshold(self.alpha)
        self._seed_mix = _mix64(np.array([self.seed], dtype=_U64))[0]
        self.corrupted = 0
        self.cells: list[int] = []

    def corrupt(self, padded: np.ndarray, real_count: int) -> int:
        """Overwrite doomed cells of ``padded[:real_count]`` in place.

        Padding cells (indices at or beyond ``real_count``) are never
        touched — a corrupted ``+inf`` dummy would break collection rather
        than model a bad key.  Returns the number of cells overwritten.
        """
        if real_count <= 0 or self._thresh == 0:
            return 0
        idx = np.arange(real_count, dtype=_U64)
        h = _mix64(idx ^ self._seed_mix)
        hits = np.nonzero(h < self._thresh)[0]
        if hits.size:
            repl = np.floor(
                (_mix64(h[hits] ^ _GAMMA) >> _U64(11)).astype(np.float64)
                / float(2**53) * 1e6
            )
            clash = repl == padded[hits]
            repl[clash] = np.mod(repl[clash] + 1.0, 1e6)
            padded[hits] = repl
            self.corrupted += int(hits.size)
            self.cells.extend(int(i) for i in hits)
        return int(hits.size)


# One slot per thread: a scenario runs synchronously inside the thread
# that activated its injectors, so thread-local storage is exactly the
# isolation the thread executor tier needs (and a no-op for the serial
# and process tiers, where each process has a single working thread).
_ACTIVE = threading.local()


def active_comparison() -> ComparisonInjector | None:
    """The comparison injector in effect *in this thread*, or ``None``
    (the common case)."""
    return getattr(_ACTIVE, "comparison", None)


def active_memory() -> MemoryInjector | None:
    """The memory injector in effect *in this thread*, or ``None`` (the
    common case)."""
    return getattr(_ACTIVE, "memory", None)


@contextmanager
def comparison_faults(injector: ComparisonInjector):
    """Activate ``injector`` for every comparison kernel in this thread."""
    previous = getattr(_ACTIVE, "comparison", None)
    _ACTIVE.comparison = injector
    try:
        yield injector
    finally:
        _ACTIVE.comparison = previous


@contextmanager
def memory_faults(injector: MemoryInjector):
    """Activate ``injector`` for block distribution in this thread."""
    previous = getattr(_ACTIVE, "memory", None)
    _ACTIVE.memory = injector
    try:
        yield injector
    finally:
        _ACTIVE.memory = previous
