"""Extending the algorithm to faulty *links* (paper's fault-model edge).

The paper's fault model statement covers "failure of one or more
processors/links", but the partition algorithm reasons about faulty
*processors* only.  The natural algorithm-level extension — noted here as
an extension, not a claim of the paper — is to *absorb* each faulty link
into a designated endpoint: treat that endpoint as logically faulty for
planning purposes (it becomes a subcube's dead processor and holds no
keys), so no compare-exchange of the sort ever needs the dead link, while
the *routing* layer keeps the true picture (the absorbed processor still
forwards messages, the dead link never carries any).

Absorption chooses endpoints greedily: prefer endpoints that are already
faulty (or already absorbed), otherwise take the endpoint covering the
most remaining faulty links (a small vertex-cover heuristic), breaking
ties toward the smaller address.  The result is minimal in the common
cases (disjoint faulty links, links sharing an endpoint) and never larger
than one processor per faulty link.
"""

from __future__ import annotations

from repro.faults.model import FaultSet

__all__ = ["absorb_link_faults"]


def absorb_link_faults(faults: FaultSet) -> FaultSet:
    """Fold faulty links into a processor-fault plan.

    Returns a new :class:`FaultSet` with the same ``kind`` and the same
    faulty links, whose processor set additionally covers every faulty
    link (each faulty link has at least one logically-faulty endpoint).
    If there are no link faults, ``faults`` is returned unchanged.
    """
    if not faults.links:
        return faults
    chosen: set[int] = set(faults.processors)
    remaining = [
        (node, node | (1 << dim))
        for node, dim in faults.links
        if node not in chosen and (node | (1 << dim)) not in chosen
    ]
    while remaining:
        # Count each endpoint's coverage of the remaining links.
        coverage: dict[int, int] = {}
        for a, b in remaining:
            coverage[a] = coverage.get(a, 0) + 1
            coverage[b] = coverage.get(b, 0) + 1
        pick = max(coverage.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        chosen.add(pick)
        remaining = [(a, b) for a, b in remaining if a != pick and b != pick]
    links_as_pairs = [(node, node | (1 << dim)) for node, dim in faults.links]
    return FaultSet(faults.n, sorted(chosen), kind=faults.kind, links=links_as_pairs)
