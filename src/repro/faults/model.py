"""Permanent-fault model for hypercube multicomputers.

Terminology follows the paper (Section 4) and Hastad et al.:

* **total** processor fault — the processor and *all incident links* are
  destroyed; messages cannot pass through the node, so routing must detour.
* **partial** processor fault — only the computational portion dies; the
  communication portion and incident links keep forwarding messages.  This
  is what the authors' NCUBE/7 VERTEX experiments actually simulate.

Link faults are modeled independently (always total: a dead link carries
nothing).  :class:`FaultSet` is immutable; algorithms never mutate the fault
configuration mid-run because faults are *permanent*.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.cube.address import validate_address, validate_dimension
from repro.cube.topology import Hypercube, shortest_paths_avoiding

__all__ = ["FaultKind", "FaultSet"]


class FaultKind(enum.Enum):
    """Severity of a processor fault (Hastad's taxonomy, paper Section 4)."""

    TOTAL = "total"
    PARTIAL = "partial"


class FaultSet:
    """An immutable set of faulty processors and links in ``Q_n``.

    Args:
        n: hypercube dimension.
        processors: faulty processor addresses (crash / fail-stop: the
            computational portion is dead and stays silent).
        kind: whether processor faults are total or partial (uniform for the
            whole set, as in the paper's two simulation modes).
        links: faulty links, each given as an ``(a, b)`` pair of neighbor
            addresses; stored canonically as ``(min_endpoint, dimension)``.
        byzantine: additionally-faulty processors whose behaviour is
            *arbitrary* rather than silent (the hybrid-diagnosis model of
            :mod:`repro.faults.diagnosis`).  Disjoint from ``processors``
            by construction — a processor cannot be both crashed and
            byzantine, and listing it as both is rejected.  The
            :attr:`processors` view covers *all* faulty processors, so
            planners and routers treat byzantine nodes as faulty too.

    Duplicate entries are rejected everywhere: a processor listed twice
    within a fault kind, across the two kinds, or a link named twice.
    """

    def __init__(
        self,
        n: int,
        processors: Iterable[int] = (),
        kind: FaultKind = FaultKind.TOTAL,
        links: Iterable[tuple[int, int]] = (),
        byzantine: Iterable[int] = (),
    ):
        self.n = validate_dimension(n)
        self.cube = Hypercube(n)
        crash = [validate_address(p, n) for p in processors]
        byz = [validate_address(p, n) for p in byzantine]
        for label, seq in (("faulty", crash), ("byzantine", byz)):
            seen: set[int] = set()
            for addr in seq:
                if addr in seen:
                    raise ValueError(
                        f"duplicate {label} processor: {addr} listed twice"
                    )
                seen.add(addr)
        contradictory = sorted(set(crash) & set(byz))
        if contradictory:
            raise ValueError(
                f"contradictory fault kinds: processor(s) {contradictory} "
                f"listed both faulty (crash) and byzantine"
            )
        self._byzantine = tuple(sorted(byz))
        self._byz_set = frozenset(byz)
        procs = sorted(set(crash) | set(byz))
        self._processors = tuple(procs)
        self._proc_set = frozenset(procs)
        if not isinstance(kind, FaultKind):
            raise TypeError(f"kind must be a FaultKind, got {kind!r}")
        self.kind = kind
        canon: set[tuple[int, int]] = set()
        for a, b in links:
            lid = self.cube.link_id(a, b)
            if lid in canon:
                raise ValueError(
                    f"duplicate link fault: ({a}, {b}) names link {lid} twice"
                )
            canon.add(lid)
        self._links = tuple(sorted(canon))
        self._link_set = frozenset(canon)

    # -- processor queries ----------------------------------------------

    @property
    def processors(self) -> tuple[int, ...]:
        """Faulty processor addresses, ascending."""
        return self._processors

    @property
    def byzantine(self) -> tuple[int, ...]:
        """The byzantine subset of :attr:`processors`, ascending."""
        return self._byzantine

    @property
    def crash(self) -> tuple[int, ...]:
        """The silent (fail-stop) subset of :attr:`processors`, ascending."""
        return tuple(p for p in self._processors if p not in self._byz_set)

    @property
    def links(self) -> tuple[tuple[int, int], ...]:
        """Faulty links as canonical ``(node, dim)`` ids, sorted."""
        return self._links

    @property
    def r(self) -> int:
        """Number of faulty processors (the paper's ``r``)."""
        return len(self._processors)

    def is_faulty(self, addr: int) -> bool:
        """Whether processor ``addr`` is faulty (crash or byzantine)."""
        return addr in self._proc_set

    def is_byzantine(self, addr: int) -> bool:
        """Whether processor ``addr`` is faulty with arbitrary behaviour."""
        return addr in self._byz_set

    def is_link_faulty(self, a: int, b: int) -> bool:
        """Whether the link between neighbors ``a`` and ``b`` is unusable.

        A link is unusable if it was injected as a link fault, or if either
        endpoint is a *total* processor fault (total faults destroy incident
        links).  Partial processor faults leave links usable.

        ``a`` and ``b`` must be neighbors; with no link faults under the
        partial model every link is usable and the query short-circuits
        without inspecting the pair (this sits on the route-BFS hot path).
        """
        link_set = self._link_set
        if not link_set and self.kind is FaultKind.PARTIAL:
            return False
        if self.cube.link_id(a, b) in link_set:
            return True
        return self.kind is FaultKind.TOTAL and (
            a in self._proc_set or b in self._proc_set
        )

    def can_route_through(self, addr: int) -> bool:
        """Whether messages may transit node ``addr``.

        Partial faults forward messages (the VERTEX behaviour the paper
        describes); total faults do not.
        """
        if not self.is_faulty(addr):
            return True
        return self.kind is FaultKind.PARTIAL

    def fault_free_processors(self) -> list[int]:
        """All non-faulty processor addresses, ascending."""
        return [p for p in self.cube.nodes() if p not in self._proc_set]

    # -- structural predicates -------------------------------------------

    def satisfies_paper_model(self) -> bool:
        """Check the paper's standing assumptions.

        Requires ``r <= n - 1`` *or* (the §2.2 closing remark) that no
        fault-free processor is surrounded entirely by faulty neighbors.
        """
        if self.r <= max(self.n - 1, 0):
            return True
        return not self.has_isolated_normal_processor()

    def has_isolated_normal_processor(self) -> bool:
        """Whether some fault-free processor has all ``n`` neighbors faulty."""
        for p in self.cube.nodes():
            if p in self._proc_set:
                continue
            if all(nb in self._proc_set for nb in self.cube.neighbors(p)):
                return True
        return False

    def is_connected(self) -> bool:
        """Whether the fault-free processors form one connected component.

        For *total* faults this decides whether every pair of working nodes
        can still exchange messages at all.  ``Q_n`` is ``n``-connected, so
        ``r <= n - 1`` guarantees connectivity.
        """
        normal = self.fault_free_processors()
        if not normal:
            return True
        forbidden = self._proc_set if self.kind is FaultKind.TOTAL else frozenset()
        src = normal[0]
        if self.kind is FaultKind.PARTIAL:
            # Partial faults forward traffic, so connectivity over normal
            # nodes is trivially that of Q_n minus nothing.
            return True
        reach = shortest_paths_avoiding(self.n, src, forbidden)
        return all(p in reach for p in normal)

    # -- dunder ------------------------------------------------------------

    def __contains__(self, addr: int) -> bool:
        return addr in self._proc_set

    def __len__(self) -> int:
        return len(self._processors)

    def __iter__(self):
        return iter(self._processors)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSet):
            return NotImplemented
        return (
            self.n == other.n
            and self._processors == other._processors
            and self.kind == other.kind
            and self._links == other._links
            and self._byzantine == other._byzantine
        )

    def __hash__(self) -> int:
        return hash(
            (self.n, self._processors, self.kind, self._links, self._byzantine)
        )

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        byz = f", byzantine={list(self._byzantine)}" if self._byzantine else ""
        return (
            f"FaultSet(n={self.n}, processors={list(self.crash)}, "
            f"kind={self.kind.value!r}, links={list(self._links)}{byz})"
        )
