"""Tolerance-aware output oracles for the fault universes.

The binary ``np.sort`` differential oracle is the right judge when the
algorithm promises exactness (permanent processor/link faults are planned
or recovered around).  Under *comparison* faults the literature's promise
is weaker — the output is a permutation of the input whose disorder is
bounded — so the campaign judges those runs by disorder *metrics* against
explicit tolerances instead:

* :func:`max_dislocation` — the largest distance between any key's
  position and its position in the truly sorted order (the figure of
  merit of Geissmann et al.'s resilient sorting line of work).
* :func:`unordered_pairs` — the number of inversions (``i < j`` with
  ``out[i] > out[j]``), the k-unordered-pairs metric.

Both are 0 exactly when the array is sorted, and both are judged against
:func:`comparison_tolerance` — an engineering bound of the theory's shape
(linear in the expected number of lies ``p·C(M)`` with a block-sized
floor; each lying probe misroutes at most one block, each lying duel at
most one key per side, and later merge stages cannot amplify a key past
the blocks it travels through).  Constants are calibrated by the seeded
campaigns in ``benchmarks/`` with a wide safety margin.

For *memory* faults the sort itself stays exact, so the oracle checks
zero inversions plus a multiset delta bounded by the injected corruption
(:func:`multiset_delta`); for ABFT, :func:`abft_checksums` carries
per-block key checksums (count, sum, sum of squares — exact in float64
for the campaigns' integral keys below ``10^6``) that the host validates
after collection.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "abft_checksums",
    "block_checksums",
    "comparison_tolerance",
    "max_dislocation",
    "multiset_delta",
    "unordered_pairs",
]


def max_dislocation(values: np.ndarray) -> int:
    """Largest |position - sorted position| over all keys (0 iff sorted).

    Ties are matched stably (equal keys keep their relative order), which
    is the assignment minimizing the metric among equal keys.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return 0
    perm = np.argsort(arr, kind="stable")
    return int(np.abs(perm - np.arange(arr.size)).max())


def unordered_pairs(values: np.ndarray, chunk: int = 512) -> int:
    """Number of inversions: pairs ``i < j`` with ``values[i] > values[j]``.

    Chunked O(M^2) — campaign arrays are at most a few hundred keys, and
    the chunking keeps the pairwise matrix small for larger inputs.
    """
    arr = np.asarray(values)
    m = int(arr.size)
    total = 0
    for start in range(0, m, chunk):
        rows = arr[start : start + chunk]
        later = arr[start + 1 :]
        cmp = rows[:, None] > later[None, :]
        # Row t (global index start+t) may only be charged against
        # strictly later columns; mask the lower wedge.
        cols = np.arange(later.size)[None, :]
        offs = np.arange(rows.size)[:, None]
        total += int(np.count_nonzero(cmp & (cols >= offs)))
    return total


def multiset_delta(a: np.ndarray, b: np.ndarray) -> int:
    """Size of the multiset symmetric difference between ``a`` and ``b``."""
    values = np.concatenate([np.asarray(a, dtype=float).ravel(),
                             np.asarray(b, dtype=float).ravel()])
    if values.size == 0:
        return 0
    uniq = np.unique(values)
    ca = np.searchsorted(uniq, np.sort(np.asarray(a, dtype=float).ravel()))
    cb = np.searchsorted(uniq, np.sort(np.asarray(b, dtype=float).ravel()))
    counts_a = np.bincount(ca, minlength=uniq.size)
    counts_b = np.bincount(cb, minlength=uniq.size)
    return int(np.abs(counts_a - counts_b).sum())


def comparison_tolerance(p: float, m: int, block: int) -> tuple[int, int]:
    """``(max_dislocation, unordered_pairs)`` budgets for lie rate ``p``.

    Shape: the sort performs ``O(M log^2 N')`` inter-processor
    comparisons, so ``p·M·log2(M)^2`` estimates the expected number of
    lies; each lie misroutes at most one block of keys by one block span
    per stage, giving a disorder budget linear in ``block`` per lie.  The
    leading constants (8 for dislocation, with a two-block floor; each
    dislocated key can contribute at most ``2·tol_d`` inversions) carry a
    generous concentration margin, calibrated against the seeded
    campaigns at the default strata.
    """
    if m <= 1:
        return 0, 0
    expected = p * m * max(1.0, math.log2(m)) ** 2
    tol_d = min(m - 1, max(2 * block, math.ceil(8.0 * block * expected / max(block, 1))))
    tol_u = min(m * (m - 1) // 2, max(8, math.ceil(2.0 * tol_d * (expected + 1.0))))
    return int(tol_d), int(tol_u)


def abft_checksums(values: np.ndarray) -> tuple[int, float, float]:
    """ABFT key checksums: ``(count, sum, sum of squares)``.

    Exact (order-independent) in float64 for integral keys below ``10^6``
    and key counts below ``~10^3`` — the campaign domain — so any single
    corrupted cell is guaranteed to perturb at least one component.
    Non-finite entries (padding dummies) are excluded.
    """
    arr = np.asarray(values, dtype=float).ravel()
    finite = arr[np.isfinite(arr)]
    return (
        int(finite.size),
        float(np.sum(finite)),
        float(np.sum(finite * finite)),
    )


def block_checksums(blocks: dict[int, np.ndarray]) -> dict[int, tuple[int, float, float]]:
    """Per-block ABFT checksums, keyed by processor address.

    The exchange-split of two blocks conserves the *pair's* combined
    checksum (keys move, never change), so the host-side total over the
    final blocks must equal the input checksum — that is the carried-
    through-merge-split invariant :class:`repro.faults.universe.AbftChecksum`
    validates.
    """
    return {int(addr): abft_checksums(block) for addr, block in blocks.items()}
