"""Named canonical fault scenarios.

Shared by tests, benchmarks and examples so "the paper's Example-1
placement" or "a worst-case clustered placement" means the same thing
everywhere.  Each scenario is a factory taking the cube dimension and
returning a :class:`FaultSet` (raising if the dimension can't host it).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cube.address import validate_dimension
from repro.faults.model import FaultKind, FaultSet

__all__ = ["SCENARIOS", "make_scenario", "scenario_names"]


def _paper_example1(n: int, kind: FaultKind) -> FaultSet:
    if n != 5:
        raise ValueError("paper-example1 is defined on Q_5")
    return FaultSet(5, [3, 5, 16, 24], kind=kind)


def _single_corner(n: int, kind: FaultKind) -> FaultSet:
    validate_dimension(n)
    if n < 1:
        raise ValueError("need n >= 1")
    return FaultSet(n, [0], kind=kind)


def _antipodal_pair(n: int, kind: FaultKind) -> FaultSet:
    if n < 2:
        raise ValueError("need n >= 2")
    return FaultSet(n, [0, (1 << n) - 1], kind=kind)


def _adjacent_pair(n: int, kind: FaultKind) -> FaultSet:
    if n < 2:
        raise ValueError("need n >= 2")
    return FaultSet(n, [0, 1], kind=kind)


def _clustered(n: int, kind: FaultKind) -> FaultSet:
    """``n - 1`` faults packed around processor 0 (0 and its low neighbors).

    The hardest shape for the partition: faults pairwise at distance <= 2
    force many cutting dimensions.
    """
    if n < 3:
        raise ValueError("need n >= 3")
    faults = [0] + [1 << d for d in range(n - 2)]
    return FaultSet(n, faults, kind=kind)


def _scattered(n: int, kind: FaultKind) -> FaultSet:
    """``n - 1`` faults spread maximally (greedy far-apart placement)."""
    if n < 3:
        raise ValueError("need n >= 3")
    size = 1 << n
    chosen = [0]
    while len(chosen) < n - 1:
        best, best_d = None, -1
        for cand in range(size):
            if cand in chosen:
                continue
            d = min(bin(cand ^ c).count("1") for c in chosen)
            if d > best_d:
                best, best_d = cand, d
        chosen.append(best)
    return FaultSet(n, chosen, kind=kind)


SCENARIOS: dict[str, Callable[[int, FaultKind], FaultSet]] = {
    "paper-example1": _paper_example1,
    "single-corner": _single_corner,
    "antipodal-pair": _antipodal_pair,
    "adjacent-pair": _adjacent_pair,
    "clustered": _clustered,
    "scattered": _scattered,
}


def scenario_names() -> list[str]:
    """All registered scenario names."""
    return sorted(SCENARIOS)


def make_scenario(name: str, n: int, kind: FaultKind = FaultKind.PARTIAL) -> FaultSet:
    """Instantiate a named scenario on ``Q_n``."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; pick from {scenario_names()}")
    return factory(n, kind)
