"""Pluggable fault universes: what can go wrong, and how to judge survival.

The chaos harness of PR 2 knows one universe — permanent processor/link
faults that arrive before or during the run and are planned or recovered
around, judged by exact ``np.sort`` equality.  This module generalizes it
into a registry of :class:`FaultClass` implementations, each bundling

* **an injection model** (what misbehaves, parameterized and seeded),
* **a tolerance-aware oracle** (what "survived" means for that model —
  exactness is the *wrong* oracle under persistent comparator lies), and
* **a recovery/verification path** (re-planning, diagnosis, or host-side
  checksum validation).

Registered classes (see docs/ROBUSTNESS.md §6 for the full taxonomy):

``baseline``
    The PR-2 universe: static + mid-run permanent faults through the
    recovery supervisor, exact differential oracle.
``comparison``
    :class:`ComparisonFaults` — persistent random comparator lies with
    rate ``p`` (Geissmann et al.), injected identically into the
    ``loop``/``numpy``/``compiled`` kernels and the SPMD probe; judged by
    the max-dislocation / unordered-pairs oracle of
    :mod:`repro.faults.oracles` against :func:`comparison_tolerance`.
``memory``
    :class:`MemoryFaults` — silent cell corruption with rate ``alpha`` at
    block load (just before the local heapsort); the sort must remain
    exact *as a sort* (zero inversions) with a multiset delta bounded by
    the injected corruption.
``hybrid``
    :class:`HybridDiagnosis` — mixed crash+byzantine processor faults
    diagnosed from combined PMC and MM* syndromes
    (:func:`repro.faults.diagnosis.diagnose_hybrid`), then sorted around;
    survival requires exact identification *and* an exact sort.
``abft``
    :class:`AbftChecksum` — algorithm-based fault tolerance: per-block
    key checksums (count / sum / sum-of-squares) carried through every
    merge-split and validated host-side; survival means corruption is
    detected exactly when the key multiset actually changed.

The module deliberately imports only the fault-layer neighbours at module
scope; the execution engines (``repro.core``) and the chaos campaign's
outcome type are imported lazily inside :meth:`FaultClass.run`, keeping
``repro.faults`` import-light for the kernels that consult the injectors.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.faults.injectors import (
    ComparisonInjector,
    MemoryInjector,
    comparison_faults,
    memory_faults,
)
from repro.faults.oracles import (
    abft_checksums,
    block_checksums,
    comparison_tolerance,
    max_dislocation,
    multiset_delta,
    unordered_pairs,
)

__all__ = [
    "AbftChecksum",
    "BaselineFaults",
    "ComparisonFaults",
    "FaultClass",
    "HybridDiagnosis",
    "MemoryFaults",
    "fault_class_names",
    "fault_class_summaries",
    "get_fault_class",
    "register_fault_class",
]


def _scenario_keys(scenario) -> np.ndarray:
    """Regenerate a scenario's keys (the wire/report never carries them)."""
    rng = np.random.default_rng(scenario.seed)
    return rng.integers(0, 10**6, scenario.keys).astype(float)


def _static_faults(scenario):
    from repro.faults.model import FaultKind, FaultSet

    return FaultSet(
        scenario.n, scenario.static_processors,
        kind=FaultKind.PARTIAL, links=scenario.static_links,
    )


def _execute_sort(scenario, keys, static, params):
    """Run the planned sort on the scenario's backend.

    Returns ``(sorted_keys, final_blocks, total_time)``; the blocks are
    what the ABFT universe computes its carried checksums from.
    """
    if scenario.backend == "spmd":
        from repro.core.spmd_sort import spmd_fault_tolerant_sort

        res = spmd_fault_tolerant_sort(keys, scenario.n, static, params=params)
        return res.sorted_keys, dict(res.blocks), float(res.finish_time)
    from repro.core.ftsort import fault_tolerant_sort

    res = fault_tolerant_sort(keys, scenario.n, static, params=params)
    return res.sorted_keys, dict(res.machine.blocks), float(res.elapsed)


class FaultClass(abc.ABC):
    """One pluggable fault universe (injection model + oracle + recovery).

    Class attributes:
        name: registry key (what ``repro chaos --fault-class`` accepts).
        summary: one-line description for ``--help`` and docs.
        oracle: label of the survival oracle (reported per outcome).
        curve_param: name of the severity parameter the survival curve is
            plotted against (``None`` for the baseline).
        strata: default severity strata the stratified generator cycles.
        needs_static: whether scenarios must carry at least one static
            processor fault (the diagnosis universe is vacuous without).
    """

    name: str = ""
    summary: str = ""
    oracle: str = "exact-np.sort"
    curve_param: str | None = None
    strata: tuple[float, ...] = ()
    needs_static: bool = False

    def draw_params(self, rng: np.random.Generator, variant: int):
        """Severity parameters for scenario ``variant`` of this class.

        Deterministic stratification: ``variant`` (the scenario's index
        within this class/backend slice) cycles :attr:`strata`, so even
        short campaigns cover every stratum of every class.  ``rng`` is
        available to subclasses needing auxiliary draws.
        """
        if self.curve_param is None or not self.strata:
            return ()
        value = self.strata[variant % len(self.strata)]
        return ((self.curve_param, float(value)),)

    @abc.abstractmethod
    def run(self, scenario, params=None, reliability=None):
        """Execute ``scenario`` under this universe; return a ChaosOutcome."""

    # -- shared outcome plumbing ------------------------------------------

    def _failure(self, scenario, exc: BaseException):
        from repro.chaos.campaign import ChaosOutcome

        return ChaosOutcome(
            scenario=scenario, sorted_correct=False, recovered=False,
            error=f"{type(exc).__name__}: {exc}",
            oracle={"kind": self.oracle},
        )


class BaselineFaults(FaultClass):
    """PR-2 semantics: permanent fault arrivals under the supervisor."""

    name = "baseline"
    summary = ("permanent processor/link faults (static + mid-run) through "
               "the recovery supervisor; exact np.sort oracle")
    oracle = "exact-np.sort"

    def run(self, scenario, params=None, reliability=None):
        from repro.chaos.campaign import run_baseline_scenario

        return run_baseline_scenario(
            scenario, params=params, reliability=reliability
        )


class ComparisonFaults(FaultClass):
    """Persistent random comparator lies with rate ``p`` (Geissmann et al.).

    Every inter-processor comparison — probe skip decisions and the
    pairwise duels of the exchange-split, in all three kernel backends
    and the SPMD message engine — consults one seeded
    :class:`~repro.faults.injectors.ComparisonInjector`; the same
    unordered key pair always lies the same way.  Local heapsorts and
    run merges stay truthful (the model faults the comparator *modules
    between* processors, not the processors' own ALUs).  Survival is the
    tolerance-aware dislocation oracle, never exact equality.
    """

    name = "comparison"
    summary = ("persistent comparator lies with probability p on every "
               "inter-processor comparison; max-dislocation oracle")
    oracle = "max-dislocation"
    curve_param = "p"
    strata = (0.0005, 0.002, 0.008)

    def __init__(self, p: float | None = None, seed: int | None = None):
        self.default_p = self.strata[0] if p is None else float(p)
        self.default_seed = seed

    def run(self, scenario, params=None, reliability=None):
        from repro.chaos.campaign import ChaosOutcome

        opts = dict(scenario.fault_params)
        p = float(opts.get("p", self.default_p))
        seed = scenario.seed if self.default_seed is None else self.default_seed
        keys = _scenario_keys(scenario)
        static = _static_faults(scenario)
        injector = ComparisonInjector(p, seed=seed)
        try:
            with comparison_faults(injector):
                out, blocks, total = _execute_sort(scenario, keys, static, params)
        except Exception as exc:
            return self._failure(scenario, exc)
        expected = np.sort(keys)
        multiset_ok = multiset_delta(out, expected) == 0
        dislocation = max_dislocation(out)
        inversions = unordered_pairs(out)
        block = max((int(b.size) for b in blocks.values()), default=1)
        tol_d, tol_u = comparison_tolerance(p, int(keys.size), block)
        verdict = multiset_ok and dislocation <= tol_d and inversions <= tol_u
        return ChaosOutcome(
            scenario=scenario, sorted_correct=verdict, recovered=True,
            total_time=total,
            oracle={
                "kind": self.oracle,
                "p": p,
                "max_dislocation": dislocation,
                "unordered_pairs": inversions,
                "tolerance_dislocation": tol_d,
                "tolerance_pairs": tol_u,
                "multiset_ok": bool(multiset_ok),
                "lies_fired": injector.fired,
                "lies_probe": injector.fired_probe,
                "comparisons": injector.evaluated,
            },
        )


class MemoryFaults(FaultClass):
    """Silent memory-cell corruption with rate ``alpha`` at block load.

    Cells are overwritten just before the local heapsort of paper step 3
    (the :func:`repro.core.blocks.pad_and_chunk` chokepoint, shared by
    the phase, SPMD, and compiled engines); everything downstream is
    truthful, so the run must still produce a perfectly *sorted* array —
    of the corrupted multiset.  Survival: zero inversions, and a multiset
    delta against the input of at most two per corrupted cell.
    """

    name = "memory"
    summary = ("silent cell corruption with probability alpha at block "
               "load (before the local heapsort); bounded-multiset oracle")
    oracle = "bounded-multiset"
    curve_param = "alpha"
    strata = (0.002, 0.01, 0.05)

    def __init__(self, alpha: float | None = None):
        self.default_alpha = self.strata[0] if alpha is None else float(alpha)

    def run(self, scenario, params=None, reliability=None):
        from repro.chaos.campaign import ChaosOutcome

        opts = dict(scenario.fault_params)
        alpha = float(opts.get("alpha", self.default_alpha))
        keys = _scenario_keys(scenario)
        static = _static_faults(scenario)
        injector = MemoryInjector(alpha, seed=scenario.seed)
        try:
            with memory_faults(injector):
                out, _, total = _execute_sort(scenario, keys, static, params)
        except Exception as exc:
            return self._failure(scenario, exc)
        inversions = unordered_pairs(out)
        delta = multiset_delta(out, keys)
        verdict = (
            inversions == 0
            and delta <= 2 * injector.corrupted
            and (injector.corrupted > 0 or bool(np.array_equal(out, np.sort(keys))))
        )
        return ChaosOutcome(
            scenario=scenario, sorted_correct=verdict, recovered=True,
            total_time=total,
            oracle={
                "kind": self.oracle,
                "alpha": alpha,
                "corrupted": injector.corrupted,
                "multiset_delta": delta,
                "unordered_pairs": inversions,
            },
        )


class HybridDiagnosis(FaultClass):
    """Mixed crash+byzantine faults, diagnosed from PMC + MM* syndromes.

    The scenario's static faults are split into silent (crash) and
    byzantine processors by the ``byz_frac`` parameter; the combined
    syndromes are decoded with
    :func:`repro.faults.diagnosis.diagnose_hybrid`, and the sort is
    planned around the *identified* set.  Survival requires the
    diagnosis to match the ground truth exactly and the sort to be
    exactly correct — the paper's "fault locations are known" assumption,
    earned rather than assumed.
    """

    name = "hybrid"
    summary = ("mixed crash+byzantine processor faults diagnosed from "
               "combined PMC and MM* test syndromes, then sorted around")
    oracle = "exact-diagnosis"
    curve_param = "byz_frac"
    strata = (0.0, 0.5, 1.0)
    needs_static = True

    def run(self, scenario, params=None, reliability=None):
        from repro.chaos.campaign import ChaosOutcome
        from repro.faults.diagnosis import diagnose_hybrid, hybrid_syndromes
        from repro.faults.model import FaultKind, FaultSet

        opts = dict(scenario.fault_params)
        frac = float(opts.get("byz_frac", 0.5))
        statics = tuple(scenario.static_processors)
        n_byz = int(round(frac * len(statics)))
        byz, crash = statics[:n_byz], statics[n_byz:]
        truth = FaultSet(
            scenario.n, crash, kind=FaultKind.PARTIAL, byzantine=byz,
        )
        rng = np.random.default_rng((scenario.seed, scenario.scenario_id, 0x4D))
        keys = _scenario_keys(scenario)
        try:
            pmc, mm = hybrid_syndromes(truth, rng)
            result = diagnose_hybrid(scenario.n, pmc, mm)
            diag_ok = (
                result.consistent and result.identified == truth.processors
            )
            planned = FaultSet(
                scenario.n, result.identified, kind=FaultKind.PARTIAL
            )
            out, _, total = _execute_sort(scenario, keys, planned, params)
        except Exception as exc:
            return self._failure(scenario, exc)
        exact = bool(np.array_equal(out, np.sort(keys)))
        return ChaosOutcome(
            scenario=scenario, sorted_correct=diag_ok and exact,
            recovered=True, total_time=total,
            oracle={
                "kind": self.oracle,
                "byz_frac": frac,
                "crash": len(crash),
                "byzantine": len(byz),
                "identified": list(result.identified),
                "diagnosis_ok": bool(diag_ok),
                "sort_exact": exact,
                "pmc_tests": len(pmc),
                "mm_tests": len(mm),
            },
        )


class AbftChecksum(FaultClass):
    """ABFT output verification via carried key checksums.

    The host records the input checksum (count / sum / sum-of-squares,
    exact in float64 for the campaign's integral key domain), lets the
    sort run under silent corruption with rate ``gamma``, then validates
    two things after collection: (a) the per-block checksums of the final
    blocks — carried through every merge-split, which conserves each
    pair's combined checksum — sum to the collected output's checksum,
    and (b) the output checksum differs from the input's exactly when the
    key multiset was actually altered.  Survival is detection
    correctness: no misses, no false alarms.
    """

    name = "abft"
    summary = ("checksum-based output verification (ABFT): per-block "
               "count/sum/sum-of-squares carried through merge-split and "
               "validated host-side; detection-correctness oracle")
    oracle = "abft-detection"
    curve_param = "gamma"
    strata = (0.0, 0.01, 0.05)

    def run(self, scenario, params=None, reliability=None):
        from repro.chaos.campaign import ChaosOutcome

        opts = dict(scenario.fault_params)
        gamma = float(opts.get("gamma", 0.01))
        keys = _scenario_keys(scenario)
        static = _static_faults(scenario)
        injector = MemoryInjector(gamma, seed=scenario.seed + 1)
        input_ck = abft_checksums(keys)
        try:
            with memory_faults(injector):
                out, blocks, total = _execute_sort(scenario, keys, static, params)
        except Exception as exc:
            return self._failure(scenario, exc)
        per_block = block_checksums(blocks)
        carried = (
            sum(ck[0] for ck in per_block.values()),
            float(sum(ck[1] for ck in per_block.values())),
            float(sum(ck[2] for ck in per_block.values())),
        )
        output_ck = abft_checksums(out)
        carried_ok = carried == output_ck
        detected = output_ck != input_ck
        altered = multiset_delta(out, keys) > 0
        verdict = carried_ok and (detected == altered) and unordered_pairs(out) == 0
        return ChaosOutcome(
            scenario=scenario, sorted_correct=verdict, recovered=True,
            total_time=total,
            oracle={
                "kind": self.oracle,
                "gamma": gamma,
                "corrupted": injector.corrupted,
                "detected": bool(detected),
                "multiset_altered": bool(altered),
                "carried_blocks_ok": bool(carried_ok),
                "input_checksum": list(input_ck),
                "output_checksum": list(output_ck),
            },
        )


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, FaultClass] = {}


def register_fault_class(instance: FaultClass, replace: bool = False) -> FaultClass:
    """Register a fault class under its ``name`` (insertion order kept)."""
    if not instance.name:
        raise ValueError("fault class needs a non-empty name")
    if instance.name in _REGISTRY and not replace:
        raise ValueError(f"fault class {instance.name!r} already registered")
    _REGISTRY[instance.name] = instance
    return instance


def get_fault_class(name: str) -> FaultClass:
    """Look up a registered fault class.

    Raises:
        ValueError: naming every registered class, for friendly CLI errors.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fault class {name!r} "
            f"(registered classes: {', '.join(_REGISTRY)})"
        ) from None


def fault_class_names() -> tuple[str, ...]:
    """Registered class names, in registration order."""
    return tuple(_REGISTRY)


def fault_class_summaries() -> dict[str, str]:
    """Name -> one-line summary, for ``--help`` and docs."""
    return {name: cls.summary for name, cls in _REGISTRY.items()}


register_fault_class(BaselineFaults())
register_fault_class(ComparisonFaults())
register_fault_class(MemoryFaults())
register_fault_class(HybridDiagnosis())
register_fault_class(AbftChecksum())
