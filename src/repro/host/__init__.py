"""Host-side workflow: distribute, sort, collect.

The paper's Step 2 says "the host processor distributes each normal
processor ``floor(M/N')`` elements"; its timing excludes that distribution
(and the final collection), as NCUBE-era measurements conventionally did.
This package makes the host a real component so the excluded cost can be
*measured* instead of ignored:

* :func:`repro.host.session.sort_session` — full workflow on the
  discrete-event machine: the host (a designated working processor)
  scatters key blocks down the binomial tree, the fault-tolerant sort
  runs, and the sorted blocks are gathered back — with separate timing for
  each segment.
* :func:`repro.host.session.supervised_sort` — the same workflow under a
  recovery supervisor: mid-run processor/link faults are detected on-line,
  victim blocks rescued, the plan enlarged, and the sort re-run until it
  completes (see docs/ROBUSTNESS.md).
"""

from repro.host.session import (
    FaultEvent,
    HostSession,
    RecoveryAttempt,
    SupervisedSort,
    sort_session,
    supervised_sort,
)

__all__ = [
    "FaultEvent",
    "HostSession",
    "RecoveryAttempt",
    "SupervisedSort",
    "sort_session",
    "supervised_sort",
]
