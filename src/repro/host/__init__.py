"""Host-side workflow: distribute, sort, collect.

The paper's Step 2 says "the host processor distributes each normal
processor ``floor(M/N')`` elements"; its timing excludes that distribution
(and the final collection), as NCUBE-era measurements conventionally did.
This package makes the host a real component so the excluded cost can be
*measured* instead of ignored:

* :func:`repro.host.session.sort_session` — full workflow on the
  discrete-event machine: the host (a designated working processor)
  scatters key blocks down the binomial tree, the fault-tolerant sort
  runs, and the sorted blocks are gathered back — with separate timing for
  each segment.
"""

from repro.host.session import HostSession, sort_session

__all__ = ["HostSession", "sort_session"]
