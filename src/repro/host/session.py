"""The full host workflow on the discrete-event machine, and its supervisor.

One combined SPMD program per working processor: receive your key block
from the host (tree scatter), run the fault-tolerant sort's comparator
schedule, return your sorted block (tree gather).  Per-segment times are
measured at the barrier-free boundaries (max over processor clocks after
each segment), which quantifies exactly the cost the paper's measurements
exclude.

:func:`supervised_sort` generalizes :mod:`repro.core.recovery` into a
full supervisor (see docs/ROBUSTNESS.md): mid-run processor and link
faults — any number within the paper's model, arriving at any point of
steps 1-8 including distribution/collection — are detected on-line
(watchdog + neighbor-test confirmation on the SPMD backend, barrier-level
cuts on the phase backend), victim blocks are rescued, the partition/
selection is re-planned for the enlarged fault set, and the sort re-runs
until it completes.  The re-run is charged in full from the original keys
(the :mod:`~repro.core.recovery` convention), so the reported recovery
overhead is an upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.ftcollect import fault_free_bfs_tree, tree_gather, tree_scatter
from repro.core.blocks import pad_and_chunk, strip_padding
from repro.core.ftsort import fault_tolerant_sort, plan_partition
from repro.core.schedule import SortSchedule
from repro.core.spmd_sort import _cx_program_step
from repro.plancache.cache import cached_ft_schedule, cached_plain_schedule
from repro.cube.address import hamming_distance, validate_address, validate_dimension
from repro.faults.detect import DetectionRecord, OnlineDiagnoser
from repro.faults.linkplan import absorb_link_faults
from repro.faults.model import FaultKind, FaultSet
from repro.obs.spans import PID_SIM, TID_ALGO
from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine
from repro.simulator.spmd import Proc, ReliabilityPolicy, SpmdMachine
from repro.sorting.heapsort import heapsort

__all__ = [
    "FaultEvent",
    "HostSession",
    "RecoveryAttempt",
    "SupervisedSort",
    "sort_session",
    "supervised_sort",
]


@dataclass(frozen=True)
class HostSession:
    """Outcome of a full distribute-sort-collect session.

    Attributes:
        sorted_keys: the ascending result, as assembled on the host
            (``None`` for a detection-aborted supervised run).
        host: the host processor's address.
        distribution_time: max processor clock after the scatter.
        sort_time: additional time spent in the sort proper.
        collection_time: additional time for the gather.
        total_time: machine finish time (= sum of the three segments up to
            overlap slack).
        machine: the SPMD machine.
        schedule: the executed comparator schedule.
    """

    sorted_keys: np.ndarray | None
    host: int
    distribution_time: float
    sort_time: float
    collection_time: float
    total_time: float
    machine: SpmdMachine
    schedule: SortSchedule


def _session_schedule(n: int, fault_set: FaultSet) -> tuple[FaultSet, SortSchedule]:
    """Absorb link faults and plan the comparator schedule for a session.

    Returns the effective fault set (links folded into designated dead
    endpoints for planning; routing still sees the true link failures) and
    the schedule.  Shared by :func:`sort_session` and the supervisor, so
    re-planning after a detection reproduces exactly what the next attempt
    will run.
    """
    if fault_set.links:
        fault_set = absorb_link_faults(fault_set)
    if not fault_set.satisfies_paper_model():
        raise ValueError(f"{fault_set.r} faults on Q_{n} violate the paper's model")
    r = fault_set.r
    if r == 0:
        schedule = cached_plain_schedule(n, None)
    elif r == 1:
        schedule = cached_plain_schedule(n, fault_set.processors[0])
    else:
        _, selection = plan_partition(n, fault_set)
        schedule = cached_ft_schedule(selection)
    return fault_set, schedule


def sort_session(
    keys: np.ndarray | list,
    n: int,
    faults: FaultSet | list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    fault_kind: FaultKind = FaultKind.PARTIAL,
    host: int | None = None,
    obs=None,
    machine_opts: dict | None = None,
    before_run=None,
    allow_abort: bool = False,
) -> HostSession:
    """Distribute ``keys`` from a host, sort fault-tolerantly, collect back.

    ``host`` defaults to the lowest-addressed working processor.  The sort
    segment reproduces :func:`repro.core.spmd_sort.spmd_fault_tolerant_sort`
    exactly; the scatter/gather segments add the tree-collective costs the
    paper excludes from its measurements.

    ``obs`` is an optional :class:`repro.obs.Tracer`: the machine records
    the full message lifecycle and the session adds one span per segment
    (``host.distribute`` / ``host.sort`` / ``host.collect``) on the
    algorithm timeline.

    Supervision hooks (used by :func:`supervised_sort`; all default to the
    plain behavior): ``machine_opts`` is forwarded to the
    :class:`SpmdMachine` constructor (``diagnoser``/``detect_timeout``/
    ``reliable``); ``before_run`` is called with the machine before it
    runs (to schedule mid-run faults); with ``allow_abort`` a
    detection-aborted run returns a :class:`HostSession` whose
    ``sorted_keys`` is ``None`` instead of raising.
    """
    validate_dimension(n)
    fault_set = faults if isinstance(faults, FaultSet) else FaultSet(n, faults, kind=fault_kind)
    if fault_set.n != n:
        raise ValueError(f"fault set is for Q_{fault_set.n}, expected Q_{n}")
    fault_set, schedule = _session_schedule(n, fault_set)

    if host is None:
        host = min(schedule.output_order)
    if host not in schedule.output_order:
        raise ValueError(f"host {host} must be a working processor")
    tree = fault_free_bfs_tree(fault_set, host)

    keys_arr = np.asarray(keys, dtype=float)
    chunks, block_size = pad_and_chunk(keys_arr, schedule.workers)
    chunk_of = {rank: chunk for rank, chunk in zip(schedule.output_order, chunks)}

    # Per-rank comparator plan, exactly as in spmd_sort.
    plan: dict[int, list[tuple[int, object]]] = {rank: [] for rank in schedule.output_order}
    for idx, substage in enumerate(schedule.substages):
        for pair in substage.pairs:
            if substage.kind == "cx":
                plan[pair.low].append((idx, ("cx", pair.high, True, pair.keep_min)))
                plan[pair.high].append((idx, ("cx", pair.low, False, pair.keep_min)))
            else:
                plan[pair.low].append((idx, ("mirror", pair.high)))
                plan[pair.high].append((idx, ("mirror", pair.low)))

    checkpoints: dict[int, tuple[float, float]] = {}
    gathered_holder: dict[str, dict[int, np.ndarray] | None] = {"blocks": None}
    workers = set(schedule.output_order)

    def program(proc: Proc):
        # Segment 1 — distribution (host-held chunks travel the tree).
        payload = chunk_of if proc.rank == tree.root else None
        my_chunk = yield from tree_scatter(proc, tree, payload, chunk_size=block_size)
        if proc.rank in workers:
            block = np.asarray(my_chunk if my_chunk is not None else np.empty(0))
        else:
            block = np.empty(0)
        t_after_scatter = proc.clock

        # Segment 2 — the sort.
        if proc.rank in workers and block.size:
            block, comps = heapsort(block)
            yield proc.compute(comps)
        for idx, op in plan.get(proc.rank, ()):
            if op[0] == "cx":
                _, partner, i_am_low, keep_min = op
                if block.size == 0:
                    continue
                block = yield from _cx_program_step(
                    proc, block, partner, i_am_low, keep_min, tag_base=1000 + idx * 4
                )
            else:
                _, partner = op
                yield proc.send(partner, payload=block, size=int(block.size),
                                tag=1000 + idx * 4)
                block = np.asarray((yield proc.recv(src=partner, tag=1000 + idx * 4)))
        t_after_sort = proc.clock
        checkpoints[proc.rank] = (t_after_scatter, t_after_sort)

        # Segment 3 — collection.
        result = yield from tree_gather(proc, tree, block, chunk_size=block_size)
        if result is not None:
            gathered_holder["blocks"] = {
                rank: np.asarray(v) for rank, v in result.items()
            }

    machine = SpmdMachine(n, faults=fault_set, params=params, obs=obs,
                          **(machine_opts or {}))
    if before_run is not None:
        before_run(machine)
    # Relay-only ranks (normal processors outside the working set, e.g.
    # dangling ones) also run the program so the tree stays connected.
    participants = sorted(tree.members())
    finish = machine.run({rank: program for rank in participants})

    if machine.aborted:
        if not allow_abort:
            raise RuntimeError(
                f"session aborted on confirmed fault {machine.abort_record}"
            )
        return HostSession(
            sorted_keys=None,
            host=host,
            distribution_time=0.0,
            sort_time=0.0,
            collection_time=0.0,
            total_time=finish,
            machine=machine,
            schedule=schedule,
        )

    blocks = gathered_holder["blocks"]
    assert blocks is not None, "gather never completed"
    flat = np.concatenate(
        [blocks[rank] for rank in schedule.output_order]
    ) if schedule.workers else np.empty(0)
    sorted_keys = strip_padding(flat, int(keys_arr.size))

    dist_t = max(t for t, _ in checkpoints.values())
    sort_t = max(t for _, t in checkpoints.values()) - dist_t
    coll_t = finish - dist_t - sort_t
    if machine.obs.enabled:
        tracer = machine.obs
        tracer.name_thread(TID_ALGO, "algorithm steps", pid=PID_SIM)
        for name, ts, dur in (
            ("host.distribute", 0.0, dist_t),
            ("host.sort", dist_t, sort_t),
            ("host.collect", dist_t + sort_t, coll_t),
        ):
            tracer.complete(name, ts=ts, dur=dur, cat="segment",
                            pid=PID_SIM, tid=TID_ALGO)
        tracer.metrics.set_gauge("host.distribution_time", dist_t)
        tracer.metrics.set_gauge("host.sort_time", sort_t)
        tracer.metrics.set_gauge("host.collection_time", coll_t)
    return HostSession(
        sorted_keys=sorted_keys,
        host=host,
        distribution_time=dist_t,
        sort_time=sort_t,
        collection_time=coll_t,
        total_time=finish,
        machine=machine,
        schedule=schedule,
    )


# -- supervised recovery -------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """A fault scheduled to arrive mid-run, on the global supervised timeline.

    Attributes:
        kind: ``"processor"`` or ``"link"``.
        subject: processor address, or ``(a, b)`` link endpoints (a cube
            edge).
        at: absolute arrival time on the supervised timeline (attempts,
            rescues and redistributions accumulate; an event whose time has
            passed when a re-run starts strikes it immediately).
    """

    kind: str
    subject: int | tuple[int, int]
    at: float

    def validate(self, n: int) -> "FaultEvent":
        if self.kind not in ("processor", "link"):
            raise ValueError(f"event kind must be 'processor' or 'link', got {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at}")
        if self.kind == "processor":
            validate_address(int(self.subject), n)
        else:
            a, b = self.subject
            validate_address(a, n)
            validate_address(b, n)
            if hamming_distance(a, b) != 1:
                raise ValueError(f"link {a}-{b} is not a hypercube edge")
        return self


@dataclass(frozen=True)
class RecoveryAttempt:
    """One supervised attempt: either the completing run or a written-off one.

    Attributes:
        processors: faulty processors the attempt planned around.
        links: dead links ``(a, b)`` the attempt planned around.
        completed: whether this attempt produced the final result.
        elapsed: time charged — the full run when completed, else wasted
            work through the detection cut plus confirmation time.
        redistribution_time: time to move blocks onto this attempt's
            working set (0 for the first attempt).
        rescue_time: time to pull the victim's block to its rescuer after
            this attempt aborted (0 when completed or no block to rescue).
        detection: the confirming :class:`DetectionRecord` of the fault
            that aborted this attempt (``None`` when completed).
    """

    processors: tuple[int, ...]
    links: tuple[tuple[int, int], ...]
    completed: bool
    elapsed: float
    redistribution_time: float = 0.0
    rescue_time: float = 0.0
    detection: DetectionRecord | None = None


@dataclass(frozen=True)
class SupervisedSort:
    """Outcome of :func:`supervised_sort`.

    Attributes:
        sorted_keys: the final (correct) ascending result.
        backend: ``"phase"`` or ``"spmd"``.
        attempts: every attempt in order; the last one completed.
        detections: the diagnoser's full decision log (confirmations,
            cleared false suspicions, probed links).
        final_faults: the fault view the completing attempt ran with.
        total_time: supervised end-to-end time (wasted attempts +
            detection + rescues + redistributions + the completing run).
    """

    sorted_keys: np.ndarray
    backend: str
    attempts: tuple[RecoveryAttempt, ...]
    detections: tuple[DetectionRecord, ...]
    final_faults: FaultSet
    total_time: float

    @property
    def recoveries(self) -> int:
        """Number of detection-triggered re-plans."""
        return sum(1 for a in self.attempts if not a.completed)

    @property
    def wasted_time(self) -> float:
        """Work written off across aborted attempts (incl. confirmation)."""
        return sum(a.elapsed for a in self.attempts if not a.completed)

    @property
    def rescue_time(self) -> float:
        return sum(a.rescue_time for a in self.attempts)

    @property
    def redistribution_time(self) -> float:
        return sum(a.redistribution_time for a in self.attempts)

    @property
    def final_sort_time(self) -> float:
        """Elapsed time of the completing attempt alone."""
        return self.attempts[-1].elapsed

    @property
    def recovery_overhead(self) -> float:
        """total / completing-run time: cost of not knowing the faults
        up front (>= 1; 1.0 when nothing struck)."""
        return self.total_time / self.final_sort_time if self.final_sort_time else 1.0


def _rescue_block(
    n: int,
    view: FaultSet,
    victim: int,
    holders: list[int],
    block_size: int,
    params: MachineParams,
) -> tuple[int, float]:
    """Nearest working survivor pulls the victim's block (partial model:
    the victim's memory and links survive).  Returns (rescuer, time)."""
    survivors = [p for p in holders if p != victim]
    rescuer = min(survivors, key=lambda p: (hamming_distance(p, victim), p))
    machine = PhaseMachine(n, params=params, faults=view)
    with machine.phase("rescue"):
        machine.charge_transfer(victim, rescuer, block_size, hops=None)
    return rescuer, machine.elapsed


def _redistribution_time(
    n: int,
    view: FaultSet,
    old_holders: list[int],
    new_holders: tuple[int, ...],
    block_size: int,
    params: MachineParams,
) -> float:
    """Time to rebalance blocks onto the new working set (one parallel
    phase, the :mod:`~repro.core.recovery` model)."""
    machine = PhaseMachine(n, params=params, faults=view)
    with machine.phase("redistribute"):
        for src, dst in zip(old_holders, new_holders):
            if src == dst:
                continue
            machine.charge_transfer(src, dst, block_size, hops=None)
    return machine.elapsed


def supervised_sort(
    keys: np.ndarray | list,
    n: int,
    faults: FaultSet | list[int] | tuple[int, ...] = (),
    events: list[FaultEvent] | tuple[FaultEvent, ...] = (),
    backend: str = "phase",
    params: MachineParams | None = None,
    obs=None,
    rng: int | np.random.Generator | None = None,
    detect_timeout: float | None = None,
    reliability: ReliabilityPolicy | None = None,
    probe_rtt: float | None = None,
    max_attempts: int | None = None,
) -> SupervisedSort:
    """Sort under mid-run faults with on-line detection and recovery.

    The supervisor runs the sort, reacts to every detection — any number
    of processor or link faults within the paper's model, arriving at any
    point including distribution/collection — by stopping at the
    consistent cut, confirming the suspect through the
    :class:`~repro.faults.detect.OnlineDiagnoser`, rescuing the victim's
    block, re-planning for the enlarged fault set and re-sorting, until an
    attempt completes.  The data plane re-sorts the original keys (the
    :mod:`~repro.core.recovery` convention: the re-run is charged in full,
    recovery overhead is an upper bound).

    Args:
        keys: finite keys, any order.
        n: hypercube dimension.
        faults: statically known (off-line diagnosed) faults; must be the
            *partial* model — recovery depends on victim memory surviving.
        events: mid-run :class:`FaultEvent` arrivals on the global
            supervised timeline.
        backend: ``"phase"`` (barrier-level cuts located by
            :meth:`~repro.simulator.phases.PhaseMachine.cut_at`) or
            ``"spmd"`` (live watchdog detection, reliable messaging, and
            abort on the discrete-event machine).
        params: machine cost constants.
        obs: optional :class:`repro.obs.Tracer`; attempts record their
            usual spans and the supervisor adds the ``robust.*`` summary
            metrics.
        rng: seed for the diagnoser's test model.
        detect_timeout: SPMD recv-watchdog timeout (default
            ``50 * t_startup``).
        reliability: SPMD ACK/retry policy (default
            :class:`~repro.simulator.spmd.ReliabilityPolicy`).
        probe_rtt: charged time of one neighbor-test round (default one
            1-element round trip).
        max_attempts: safety cap (default ``2**n + 1``).

    Returns:
        :class:`SupervisedSort` — correct sorted keys plus the complete
        recovery anatomy.
    """
    validate_dimension(n)
    if backend not in ("phase", "spmd"):
        raise ValueError(f"backend must be 'phase' or 'spmd', got {backend!r}")
    params = params if params is not None else MachineParams.ncube7()
    base = faults if isinstance(faults, FaultSet) else FaultSet(n, faults, kind=FaultKind.PARTIAL)
    if base.n != n:
        raise ValueError(f"fault set is for Q_{base.n}, expected Q_{n}")
    if base.kind is not FaultKind.PARTIAL:
        raise ValueError("supervised recovery requires the partial fault model")
    events = sorted((ev.validate(n) for ev in events), key=lambda ev: ev.at)
    if probe_rtt is None:
        probe_rtt = 2 * (params.t_startup + params.t_element)
    if detect_timeout is None:
        detect_timeout = 50.0 * params.t_startup
    if reliability is None:
        reliability = ReliabilityPolicy()
    if max_attempts is None:
        max_attempts = (1 << n) + 1
    diag = OnlineDiagnoser(n, known=base, probe_rtt=probe_rtt, rng=rng)

    keys_arr = np.asarray(keys, dtype=float)
    pending = list(events)
    dead: dict[int, float] = {}  # processor -> absolute death time (truth oracle)
    attempts: list[RecoveryAttempt] = []
    t_global = 0.0
    view = base
    prev_holders: list[int] | None = None
    prev_block = 0

    def truth_at(now: float):
        return lambda addr: base.is_faulty(addr) or dead.get(addr, float("inf")) <= now

    def finish(sorted_keys: np.ndarray) -> SupervisedSort:
        # Events arriving after completion: the result already stands;
        # confirm them for the record (detection latency bookkeeping).
        for ev in pending:
            when = max(ev.at, t_global)
            if ev.kind == "processor":
                subject = int(ev.subject)
                if subject in diag.known:
                    continue
                dead.setdefault(subject, ev.at)
                diag.confirm_processor(subject, truth_at(when),
                                       suspected_at=when, occurred_at=ev.at)
            else:
                a, b = ev.subject
                if (min(a, b), max(a, b)) in diag.known_links:
                    continue
                diag.confirm_link(a, b, suspected_at=when, occurred_at=ev.at,
                                  confirmed_at=when + probe_rtt)
        report = SupervisedSort(
            sorted_keys=sorted_keys,
            backend=backend,
            attempts=tuple(attempts),
            detections=tuple(diag.log),
            final_faults=view,
            total_time=t_global,
        )
        tracer = obs
        if tracer is not None and tracer.enabled:
            m = tracer.metrics
            m.inc("robust.recoveries", report.recoveries)
            m.set_gauge("robust.wasted_time", report.wasted_time)
            m.set_gauge("robust.recovery_overhead", report.recovery_overhead)
            m.set_gauge("robust.total_time", report.total_time)
            for rec in diag.log:
                if rec.latency is not None:
                    m.observe("robust.detect_latency", rec.latency)
        return report

    def absorb_abort(
        detection: DetectionRecord,
        holders: list[int],
        block_size: int,
        wasted: float,
        redistribution: float,
    ) -> None:
        """Shared post-abort bookkeeping: rescue, record, advance time."""
        nonlocal t_global, view, prev_holders, prev_block
        rescue = 0.0
        new_holders = list(holders)
        if detection.kind == "processor" and detection.subject in holders:
            rescuer, rescue = _rescue_block(
                n, view, int(detection.subject), holders, block_size, params
            )
            new_holders = [rescuer if p == detection.subject else p for p in holders]
        attempts.append(RecoveryAttempt(
            processors=view.processors,
            links=tuple((a, a | (1 << d)) for a, d in view.links),
            completed=False,
            elapsed=wasted,
            redistribution_time=redistribution,
            rescue_time=rescue,
            detection=detection,
        ))
        t_global += wasted + rescue
        view = diag.fault_view(base)
        prev_holders = new_holders
        prev_block = block_size

    while True:
        if len(attempts) >= max_attempts:
            raise RuntimeError(
                f"supervisor exceeded {max_attempts} attempts without completing"
            )

        if backend == "phase":
            result = fault_tolerant_sort(keys_arr, n, view, params=params, obs=obs)
            redistribution = 0.0
            if prev_holders is not None:
                redistribution = _redistribution_time(
                    n, view, prev_holders, result.output_order, prev_block, params
                )
                t_global += redistribution
            # Earliest pending event striking inside this attempt.  Events
            # whose subject the plan already avoids are confirmed as known
            # and dropped without an abort.
            strike = None
            for ev in list(pending):
                subject_known = (
                    view.is_faulty(int(ev.subject))
                    if ev.kind == "processor"
                    else view.is_link_faulty(*ev.subject)
                )
                if subject_known:
                    pending.remove(ev)
                    if ev.kind == "processor":
                        dead.setdefault(int(ev.subject), ev.at)
                    continue
                if ev.at - t_global < result.elapsed:
                    strike = ev
                    break
            if strike is None:
                attempts.append(RecoveryAttempt(
                    processors=view.processors,
                    links=tuple((a, a | (1 << d)) for a, d in view.links),
                    completed=True,
                    elapsed=result.elapsed,
                    redistribution_time=redistribution,
                ))
                t_global += result.elapsed
                return finish(result.sorted_keys)
            pending.remove(strike)
            local = max(strike.at - t_global, 0.0)
            _, wasted = result.machine.cut_at(local)
            barrier = t_global + wasted
            if strike.kind == "processor":
                subject = int(strike.subject)
                dead[subject] = strike.at
                record = diag.confirm_processor(
                    subject, truth_at(barrier),
                    suspected_at=barrier, occurred_at=strike.at,
                )
                if not record.faulty:  # pragma: no cover - defensive
                    raise RuntimeError(f"diagnoser cleared a true fault: {record}")
            else:
                a, b = strike.subject
                record = diag.confirm_link(
                    a, b, suspected_at=barrier, occurred_at=strike.at,
                    confirmed_at=barrier + probe_rtt,
                )
            absorb_abort(
                record,
                list(result.output_order),
                result.block_size,
                wasted + (record.confirmed_at - barrier),
                redistribution,
            )
            continue

        # -- spmd backend ----------------------------------------------------
        _, schedule = _session_schedule(n, view)
        block_size = pad_and_chunk(keys_arr, schedule.workers)[1] if schedule.workers else 0
        redistribution = 0.0
        if prev_holders is not None:
            redistribution = _redistribution_time(
                n, view, prev_holders, schedule.output_order, prev_block, params
            )
            t_global += redistribution
        offset = t_global

        def before_run(machine: SpmdMachine) -> None:
            for ev in pending:
                local = max(ev.at - offset, 0.0)
                if ev.kind == "processor":
                    if not machine.faults.is_faulty(int(ev.subject)):
                        machine.schedule_processor_fault(int(ev.subject), local)
                else:
                    a, b = ev.subject
                    if not machine.faults.is_link_faulty(a, b):
                        machine.schedule_link_fault(a, b, local)

        session = sort_session(
            keys_arr, n, view, params=params, obs=obs,
            machine_opts=dict(
                diagnoser=diag,
                detect_timeout=detect_timeout,
                reliable=reliability,
            ),
            before_run=before_run,
            allow_abort=True,
        )
        machine = session.machine
        for rank, local_t in machine.dead_at.items():
            dead.setdefault(rank, offset + local_t)
        if not machine.aborted:
            attempts.append(RecoveryAttempt(
                processors=view.processors,
                links=tuple((a, a | (1 << d)) for a, d in view.links),
                completed=True,
                elapsed=session.total_time,
                redistribution_time=redistribution,
            ))
            t_global += session.total_time
            # Drop events consumed during the run (confirmed links absorbed
            # by rerouting; processor deaths that never blocked anyone are
            # handled post-completion in finish()).
            pending = [
                ev for ev in pending
                if not (ev.kind == "link"
                        and (min(*ev.subject), max(*ev.subject)) in diag.known_links)
            ]
            return finish(session.sorted_keys)
        record = machine.abort_record
        pending = [
            ev for ev in pending
            if not (
                (ev.kind == "processor" and int(ev.subject) in diag.known)
                or (ev.kind == "link"
                    and (min(*ev.subject), max(*ev.subject)) in diag.known_links)
            )
        ]
        absorb_abort(
            record,
            list(schedule.output_order),
            block_size,
            record.confirmed_at,
            redistribution,
        )
