"""The full host workflow on the discrete-event machine.

One combined SPMD program per working processor: receive your key block
from the host (tree scatter), run the fault-tolerant sort's comparator
schedule, return your sorted block (tree gather).  Per-segment times are
measured at the barrier-free boundaries (max over processor clocks after
each segment), which quantifies exactly the cost the paper's measurements
exclude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.ftcollect import fault_free_bfs_tree, tree_gather, tree_scatter
from repro.core.blocks import pad_and_chunk, strip_padding
from repro.core.ftsort import plan_partition
from repro.core.schedule import SortSchedule, build_ft_schedule, build_plain_schedule
from repro.core.spmd_sort import _cx_program_step
from repro.cube.address import validate_dimension
from repro.faults.linkplan import absorb_link_faults
from repro.faults.model import FaultKind, FaultSet
from repro.obs.spans import PID_SIM, TID_ALGO
from repro.simulator.params import MachineParams
from repro.simulator.spmd import Proc, SpmdMachine
from repro.sorting.heapsort import heapsort

__all__ = ["HostSession", "sort_session"]


@dataclass(frozen=True)
class HostSession:
    """Outcome of a full distribute-sort-collect session.

    Attributes:
        sorted_keys: the ascending result, as assembled on the host.
        host: the host processor's address.
        distribution_time: max processor clock after the scatter.
        sort_time: additional time spent in the sort proper.
        collection_time: additional time for the gather.
        total_time: machine finish time (= sum of the three segments up to
            overlap slack).
        machine: the SPMD machine.
        schedule: the executed comparator schedule.
    """

    sorted_keys: np.ndarray
    host: int
    distribution_time: float
    sort_time: float
    collection_time: float
    total_time: float
    machine: SpmdMachine
    schedule: SortSchedule


def sort_session(
    keys: np.ndarray | list,
    n: int,
    faults: FaultSet | list[int] | tuple[int, ...],
    params: MachineParams | None = None,
    fault_kind: FaultKind = FaultKind.PARTIAL,
    host: int | None = None,
    obs=None,
) -> HostSession:
    """Distribute ``keys`` from a host, sort fault-tolerantly, collect back.

    ``host`` defaults to the lowest-addressed working processor.  The sort
    segment reproduces :func:`repro.core.spmd_sort.spmd_fault_tolerant_sort`
    exactly; the scatter/gather segments add the tree-collective costs the
    paper excludes from its measurements.

    ``obs`` is an optional :class:`repro.obs.Tracer`: the machine records
    the full message lifecycle and the session adds one span per segment
    (``host.distribute`` / ``host.sort`` / ``host.collect``) on the
    algorithm timeline.
    """
    validate_dimension(n)
    fault_set = faults if isinstance(faults, FaultSet) else FaultSet(n, faults, kind=fault_kind)
    if fault_set.n != n:
        raise ValueError(f"fault set is for Q_{fault_set.n}, expected Q_{n}")
    if fault_set.links:
        fault_set = absorb_link_faults(fault_set)
    if not fault_set.satisfies_paper_model():
        raise ValueError(f"{fault_set.r} faults on Q_{n} violate the paper's model")
    r = fault_set.r
    if r == 0:
        schedule = build_plain_schedule(n, None)
    elif r == 1:
        schedule = build_plain_schedule(n, fault_set.processors[0])
    else:
        _, selection = plan_partition(n, fault_set)
        schedule = build_ft_schedule(selection)

    if host is None:
        host = min(schedule.output_order)
    if host not in schedule.output_order:
        raise ValueError(f"host {host} must be a working processor")
    tree = fault_free_bfs_tree(fault_set, host)

    keys_arr = np.asarray(keys, dtype=float)
    chunks, block_size = pad_and_chunk(keys_arr, schedule.workers)
    chunk_of = {rank: chunk for rank, chunk in zip(schedule.output_order, chunks)}

    # Per-rank comparator plan, exactly as in spmd_sort.
    plan: dict[int, list[tuple[int, object]]] = {rank: [] for rank in schedule.output_order}
    for idx, substage in enumerate(schedule.substages):
        for pair in substage.pairs:
            if substage.kind == "cx":
                plan[pair.low].append((idx, ("cx", pair.high, True, pair.keep_min)))
                plan[pair.high].append((idx, ("cx", pair.low, False, pair.keep_min)))
            else:
                plan[pair.low].append((idx, ("mirror", pair.high)))
                plan[pair.high].append((idx, ("mirror", pair.low)))

    checkpoints: dict[int, tuple[float, float]] = {}
    gathered_holder: dict[str, dict[int, np.ndarray] | None] = {"blocks": None}
    workers = set(schedule.output_order)

    def program(proc: Proc):
        # Segment 1 — distribution (host-held chunks travel the tree).
        payload = chunk_of if proc.rank == tree.root else None
        my_chunk = yield from tree_scatter(proc, tree, payload, chunk_size=block_size)
        if proc.rank in workers:
            block = np.asarray(my_chunk if my_chunk is not None else np.empty(0))
        else:
            block = np.empty(0)
        t_after_scatter = proc.clock

        # Segment 2 — the sort.
        if proc.rank in workers and block.size:
            block, comps = heapsort(block)
            yield proc.compute(comps)
        for idx, op in plan.get(proc.rank, ()):
            if op[0] == "cx":
                _, partner, i_am_low, keep_min = op
                if block.size == 0:
                    continue
                block = yield from _cx_program_step(
                    proc, block, partner, i_am_low, keep_min, tag_base=1000 + idx * 4
                )
            else:
                _, partner = op
                yield proc.send(partner, payload=block.copy(), size=int(block.size),
                                tag=1000 + idx * 4)
                block = np.asarray((yield proc.recv(src=partner, tag=1000 + idx * 4)))
        t_after_sort = proc.clock
        checkpoints[proc.rank] = (t_after_scatter, t_after_sort)

        # Segment 3 — collection.
        result = yield from tree_gather(proc, tree, block, chunk_size=block_size)
        if result is not None:
            gathered_holder["blocks"] = {
                rank: np.asarray(v) for rank, v in result.items()
            }

    machine = SpmdMachine(n, faults=fault_set, params=params, obs=obs)
    # Relay-only ranks (normal processors outside the working set, e.g.
    # dangling ones) also run the program so the tree stays connected.
    participants = sorted(tree.members())
    finish = machine.run({rank: program for rank in participants})

    blocks = gathered_holder["blocks"]
    assert blocks is not None, "gather never completed"
    flat = np.concatenate(
        [blocks[rank] for rank in schedule.output_order]
    ) if schedule.workers else np.empty(0)
    sorted_keys = strip_padding(flat, int(keys_arr.size))

    dist_t = max(t for t, _ in checkpoints.values())
    sort_t = max(t for _, t in checkpoints.values()) - dist_t
    coll_t = finish - dist_t - sort_t
    if machine.obs.enabled:
        tracer = machine.obs
        tracer.name_thread(TID_ALGO, "algorithm steps", pid=PID_SIM)
        for name, ts, dur in (
            ("host.distribute", 0.0, dist_t),
            ("host.sort", dist_t, sort_t),
            ("host.collect", dist_t + sort_t, coll_t),
        ):
            tracer.complete(name, ts=ts, dur=dur, cat="segment",
                            pid=PID_SIM, tid=TID_ALGO)
        tracer.metrics.set_gauge("host.distribution_time", dist_t)
        tracer.metrics.set_gauge("host.sort_time", sort_t)
        tracer.metrics.set_gauge("host.collection_time", coll_t)
    return HostSession(
        sorted_keys=sorted_keys,
        host=host,
        distribution_time=dist_t,
        sort_time=sort_t,
        collection_time=coll_t,
        total_time=finish,
        machine=machine,
        schedule=schedule,
    )
