"""repro.kernels — pluggable vectorized kernels for the sorting hot paths.

The paper's cost model (Section 4) charges the three inner kernels
analytically — ``((M/N') - 1) log2(M/N') t_c`` for the local heapsort,
``2 (M/N') t_c`` per merge-split — but says nothing about how a host
*executes* them.  This package separates the two concerns exactly the way
the resilient-sorting literature does (comparison-count *model* vs kernel
*execution*): every execution engine routes its data movement through one
of three interchangeable backends:

* ``"numpy"`` (default) — the fast path: batched 2-D sorts, vectorized
  exchange-splits, and a masked vectorized sift-down that reproduces the
  reference heapsort's *exact* per-block comparison counts while
  processing every processor block at once;
* ``"loop"`` — the reference path: element-at-a-time pure-Python kernels
  (the textbook heapsort, two-pointer run merges) whose behavior is
  obviously the algorithm the paper describes;
* ``"compiled"`` — the schedule-compiled tier: the phase engine's whole
  oblivious :class:`~repro.core.schedule.SortSchedule` is lowered to
  per-substage index arrays over one ``(workers, block)`` key matrix and
  executed as a handful of numpy ops per substage, with comparison/traffic
  accounting computed in closed form (see :mod:`repro.kernels.compiled`);
  non-schedule paths inherit the numpy kernels.

The backends are interchangeable by construction: identical sorted output,
identical comparison/exchange accounting, identical simulated clock (the
property tests in ``tests/kernels/`` enforce all three).  The ``loop``
backend is the executable specification; ``numpy``/``compiled`` are what
production runs use, and ``benchmarks/test_kernels_speedup.py`` tracks the
speedups between them in ``BENCH_kernels.json``.

Selecting a backend
-------------------
Every entry point takes a ``kernels=`` argument (a backend name or
instance); ``None`` falls back to the process default, which is the
``REPRO_KERNELS`` environment variable or ``"numpy"``.  The CLI exposes
``repro sort/trace ... --kernels numpy|loop|compiled``.  See
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os

from repro.kernels.base import KernelBackend
from repro.kernels.compiled import CompiledBackend
from repro.kernels.loop import LoopBackend
from repro.kernels.numpy_backend import NumpyBackend

__all__ = [
    "CompiledBackend",
    "KernelBackend",
    "LoopBackend",
    "NumpyBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
]

_BACKENDS: dict[str, KernelBackend] = {
    "numpy": NumpyBackend(),
    "loop": LoopBackend(),
    "compiled": CompiledBackend(),
}

#: Process-wide override set via :func:`set_default_backend`; ``None`` means
#: "consult the ``REPRO_KERNELS`` environment variable, else ``numpy``".
_DEFAULT_OVERRIDE: str | None = None


def available_backends() -> tuple[str, ...]:
    """Names of the registered kernel backends."""
    return tuple(sorted(_BACKENDS))


def default_backend_name() -> str:
    """The name resolved when callers pass ``kernels=None``."""
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    name = os.environ.get("REPRO_KERNELS", "numpy")
    return name if name in _BACKENDS else "numpy"


def set_default_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend."""
    global _DEFAULT_OVERRIDE
    if name is not None and name not in _BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {available_backends()}"
        )
    _DEFAULT_OVERRIDE = name


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name`` (``'numpy'``, ``'loop'``, or
    ``'compiled'``)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {available_backends()}"
        ) from None


def resolve_backend(spec: "KernelBackend | str | None") -> KernelBackend:
    """Resolve a ``kernels=`` argument to a backend instance.

    ``None`` → the process default; a string → :func:`get_backend`; an
    instance passes through unchanged.
    """
    if spec is None:
        return _BACKENDS[default_backend_name()]
    if isinstance(spec, KernelBackend):
        return spec
    return get_backend(spec)
