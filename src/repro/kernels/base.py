"""Kernel backend interface.

A backend supplies the *execution* of the three inner kernels of the
fault-tolerant sort — local sort, exchange-split, and the SPMD
compare-exchange legs — while the callers keep full control of the cost
*accounting* (what the simulators charge follows the paper's model and is
backend-independent; only exact heapsort comparison counts are
data-dependent, and those every backend must reproduce identically).

Array conventions: blocks are 1-D float ndarrays sorted ascending unless
stated otherwise; batched entry points take C-contiguous 2-D arrays with
one block per row (all rows the same length).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class KernelBackend(ABC):
    """Interchangeable kernel implementations (see :mod:`repro.kernels`)."""

    #: Registry name (``"numpy"`` / ``"loop"``).
    name: str = "abstract"

    #: True when the batched entry points are genuinely vectorized (the
    #: stage-batched compare-exchange path is only worth taking then).
    batched: bool = False

    #: True when the phase engine should bypass its per-pair interpreter and
    #: execute the whole lowered :class:`~repro.core.schedule.SortSchedule`
    #: as a flat array program (see :mod:`repro.kernels.compiled`).
    schedule_compiled: bool = False

    # -- local sort -------------------------------------------------------

    @abstractmethod
    def sort_block(self, block: np.ndarray) -> np.ndarray:
        """Ascending sort of one block (values only, input untouched)."""

    @abstractmethod
    def sort_block_counted(self, block: np.ndarray) -> tuple[np.ndarray, int]:
        """Ascending sort of one block plus the *exact* heapsort comparison
        count — the number the reference heapsort performs on this data."""

    @abstractmethod
    def sort_blocks(self, blocks: np.ndarray, descending: bool = False) -> np.ndarray:
        """Row-wise sort of a 2-D batch (values only)."""

    @abstractmethod
    def sort_blocks_counted(
        self, blocks: np.ndarray, descending: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise sort plus exact per-row heapsort comparison counts."""

    # -- exchange-split ---------------------------------------------------

    @abstractmethod
    def split_pair(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Exact merge-split of two equal-length ascending blocks.

        Returns ``(low, high)``: the ``k`` smallest and ``k`` largest keys
        of the union, both ascending.
        """

    @abstractmethod
    def split_blocks(
        self, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`split_pair` over matching rows of two 2-D arrays."""

    # -- SPMD compare-exchange legs --------------------------------------

    @abstractmethod
    def cx_winners_losers(
        self, mine: np.ndarray, received: np.ndarray, want_min: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pairwise duel of the half-traffic protocol (Section 2.1 step 2).

        ``mine`` and ``received`` are equal-length ascending runs; element
        ``i`` of ``mine`` duels element ``k-1-i`` of ``received``.  Returns
        ``(winners, losers)`` — the kept and returned keys — both sorted
        ascending.
        """

    @abstractmethod
    def merge_runs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Merge two ascending runs into one ascending array (step 7(c))."""

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<KernelBackend {self.name}>"
