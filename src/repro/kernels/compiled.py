"""The ``compiled`` backend: whole-schedule execution as a flat array program.

The ``numpy`` backend vectorizes *within* a substage but the phase engine
still walks per-processor Python objects between substages — block dicts,
per-pair charge calls, per-pair probe decisions.  This tier removes that
interpreter entirely: :func:`repro.core.schedule.lower_schedule` turns the
static :class:`~repro.core.schedule.SortSchedule` into per-substage index
arrays over one ``(workers, block)`` key matrix, and
:func:`run_schedule_compiled` executes each substage as a handful of numpy
operations — gather the paired rows, one vectorized probe, one batched
exchange-split, scatter back — with the paper's comparison/traffic
accounting computed in *closed form* per substage.

Exactness is the contract, not an aspiration:

* sorted output, per-phase :class:`~repro.simulator.phases.PhaseRecord`
  counters, the ``sort.*`` observability counters, **and the simulated
  clock** are identical to the interpreted ``loop``/``numpy`` engines —
  bit-for-bit, including IEEE-754 float accumulation order (the executor
  replicates the interpreter's per-node addition sequence exactly);
* the parity suite in ``tests/kernels/`` asserts all of the above across
  dimensions, fault plans, block skews, and plan-cache warm replay.

:class:`CompiledBackend` subclasses :class:`NumpyBackend`, so every code
path that is *not* schedule-driven (the SPMD machine's per-message kernels,
``merge_split``) transparently degrades to the vectorized numpy kernels.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injectors import active_comparison
from repro.kernels.numpy_backend import NumpyBackend, heapsort_batch

__all__ = ["CompiledBackend", "run_schedule_compiled"]


class CompiledBackend(NumpyBackend):
    """Numpy kernels plus whole-schedule flat-array execution.

    The flag :attr:`schedule_compiled` is what the phase-engine entry points
    (:func:`repro.core.ftsort.fault_tolerant_sort`,
    :func:`repro.core.single_fault.single_fault_bitonic_sort`, …) test to
    route a run through :func:`run_schedule_compiled` instead of the
    per-pair interpreter.  Paths the compiler does not model (the
    ``step8="full-sort"`` ablation, per-phase ``observer`` callbacks, the
    SPMD discrete-event machine) fall back to the inherited numpy kernels.
    """

    name = "compiled"
    schedule_compiled = True


def _transfer_vec(params, elements: int, hops: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`MachineParams.transfer_time` over a hops array.

    The scalar expression is replicated term-for-term (same literals, same
    association) so each element is bit-identical to the interpreter's
    per-pair ``transfer_time`` result.
    """
    if elements == 0:
        return np.zeros(hops.shape)
    if params.switching == "cut_through":
        t = (params.t_startup + elements * params.t_element) + (hops - 1) * params.t_element
        return np.where(hops > 0, t, 0.0)
    return hops * (params.t_startup + elements * params.t_element)


def _close_phase(machine, rec) -> None:
    """Append a finished :class:`PhaseRecord` exactly as ``machine.phase``
    does on exit: advance the clock, store the record, report to obs."""
    started_at = machine.elapsed
    machine.elapsed += rec.duration
    machine.phases.append(rec)
    if machine.obs.enabled:
        machine._record_phase(rec, started_at)


def run_schedule_compiled(
    schedule,
    keys,
    faults,
    params=None,
    obs=None,
    exact_counts: bool = False,
    cache_kind: str | None = None,
    cache_key: tuple | None = None,
):
    """Execute ``schedule`` on ``keys`` as a flat array program.

    Args:
        schedule: a :class:`~repro.core.schedule.SortSchedule`.
        faults: the run's :class:`~repro.faults.model.FaultSet` (drives the
            hop metric and the machine's fault bookkeeping).
        params: machine cost constants (default NCUBE/7).
        obs: optional tracer; phase spans and the ``sort.*`` /
            ``phase.*`` counters are emitted with the interpreter's exact
            semantics.
        exact_counts: charge exact heapsort comparison counts for the local
            sort (via the batched vectorized heapsort) instead of the
            paper's closed-form worst case.
        cache_kind / cache_key: when given, the lowered program is served
            from the plan cache's ``compiled`` section under
            ``(cache_kind,) + cache_key`` (plus the fault set whenever the
            hop metric depends on it) — multi-tenant jobs sharing a plan
            also share the compiled program.

    Returns:
        ``(sorted_keys, machine, block_size)``; ``machine`` is a
        :class:`~repro.simulator.phases.PhaseMachine` carrying the final
        per-node blocks, the per-phase cost records, and the elapsed clock,
        exactly as an interpreted run would leave it.
    """
    # Core/simulator imports are deferred: this module is imported by the
    # ``repro.kernels`` package __init__, which the sorting layer imports —
    # a module-scope import of either would recurse into a half-initialized
    # package.
    from repro.core.blocks import pad_and_chunk, strip_padding
    from repro.core.schedule import lower_schedule
    from repro.plancache.cache import cached_compiled_program
    from repro.simulator.phases import PhaseMachine, PhaseRecord

    machine = PhaseMachine(schedule.n, params=params, faults=faults, obs=obs)
    par = machine.params
    t_compare = par.t_compare

    def lower() -> object:
        return lower_schedule(schedule, machine.hops)

    if cache_kind is not None and cache_key is not None:
        program = cached_compiled_program(cache_kind, cache_key, machine.faults, lower)
    else:
        program = lower()

    keys_arr = np.asarray(keys, dtype=float)
    chunks, block = pad_and_chunk(keys_arr, schedule.workers)
    k = int(block)
    key_matrix = np.stack(chunks) if chunks else np.empty((0, 0))
    obs_on = machine.obs.enabled
    met = machine.obs.metrics if obs_on else None
    # Active comparison injector (chaos fault universes): the flip mask is
    # a pure symmetric hash of the operand values, so the flipped probe
    # and duel verdicts below are byte-identical to the interpreted
    # engines' — the parity contract survives injection.
    inj = active_comparison()

    # -- local sort (step 3a) ---------------------------------------------
    rec = PhaseRecord("local-heapsort")
    if k > 0:
        if exact_counts:
            key_matrix, counts = heapsort_batch(key_matrix)
        else:
            from repro.sorting.heapsort import heapsort_comparisons_worst_case

            key_matrix = np.sort(key_matrix, axis=1, kind="stable")
            counts = np.full(
                schedule.workers, heapsort_comparisons_worst_case(k), dtype=np.int64
            )
        rec.comparisons = int(counts.sum())
        rec.duration = float((counts * t_compare).max())
    _close_phase(machine, rec)

    # -- substages ---------------------------------------------------------
    # Scratch buffers reused across substages (the allocator is measurable
    # at 100+ substages): gathered operand rows and the lo/hi result rows,
    # sorted with ONE in-place row-sort per substage (rows sort
    # independently, so batching lo and hi together changes nothing).
    max_pairs = max((int(s.a_rows.size) for s in program.substages), default=0)
    if max_pairs and k > 0:
        gather_a = np.empty((max_pairs, k))
        gather_b = np.empty((max_pairs, k))
        lohi = np.empty((2 * max_pairs, k))
    for sub in program.substages:
        rec = PhaseRecord(sub.label)
        pair_count = int(sub.a_rows.size)
        if sub.kind == "mirror":
            if pair_count and k > 0:
                swap_t = _transfer_vec(par, k, sub.hops)
                rec.duration = float(swap_t.max())
                hop_sum = int(sub.hops.sum())
                rec.elements_sent = 2 * k * pair_count
                rec.element_hops = 2 * k * hop_sum
                rec.messages = 2 * pair_count
                tmp = key_matrix[sub.a_rows].copy()
                key_matrix[sub.a_rows] = key_matrix[sub.b_rows]
                key_matrix[sub.b_rows] = tmp
            _close_phase(machine, rec)
            # The interpreter counts mirror pairs (and their two messages)
            # into the sort.* metrics even for empty blocks — the phase
            # happened, the swap was structurally real.
            if obs_on and pair_count:
                met.inc("sort.mirror.pairs", pair_count)
                met.inc("sort.messages", 2 * pair_count)
            continue

        if pair_count == 0 or k == 0:
            # Empty barrier (all comparators dead, or no keys at all):
            # zero-cost record, no obs counters — like the interpreter.
            _close_phase(machine, rec)
            continue

        # Probe: each side ships one boundary key; the pair skips the block
        # exchange when the blocks are already correctly split.
        a_last = key_matrix[sub.a_rows, k - 1]
        b_first = key_matrix[sub.b_rows, 0]
        skip = a_last <= b_first
        if inj is not None:
            skip = skip ^ inj.flip_pairs(a_last, b_first, kind="probe")
        live = ~skip
        executed = int(live.sum())
        skipped = pair_count - executed
        first_leg = (k + 1) // 2
        return_leg = k // 2
        # Per-node clock, replicating the interpreter's addition order:
        # probe transfer, probe compare, first leg, return leg, merge
        # compute.  The phase duration is the max — always attained at a
        # probed-only node or an executed pair's ceil-half node.
        probe_base = _transfer_vec(par, 1, sub.hops) + t_compare
        duration = float(probe_base[skip].max()) if skipped else 0.0
        comparisons = 2 * pair_count
        elements_sent = 2 * pair_count
        element_hops = 2 * int(sub.hops.sum())
        messages = 2 * pair_count
        if executed:
            live_a = sub.a_rows[live]
            live_b = sub.b_rows[live]
            a = np.take(key_matrix, live_a, axis=0, out=gather_a[:executed])
            b = np.take(key_matrix, live_b, axis=0, out=gather_b[:executed])
            if inj is not None:
                b_rev = b[:, ::-1]
                le = (a <= b_rev) ^ inj.flip_pairs(a, b_rev)
                lo = lohi[:executed]
                hi = lohi[executed:2 * executed]
                np.copyto(lo, np.where(le, a, b_rev))
                np.copyto(hi, np.where(le, b_rev, a))
            else:
                lo = np.minimum(a, b[:, ::-1], out=lohi[:executed])
                hi = np.maximum(a, b[:, ::-1], out=lohi[executed:2 * executed])
            # One in-place row-sort over both halves; each row is the
            # ascending-then-descending half of a bitonic merge — two runs,
            # which the stable (tim)sort merges in linear time.
            lohi[:2 * executed].sort(axis=1, kind="stable")
            key_matrix[live_a] = lo
            key_matrix[live_b] = hi
            live_hops = sub.hops[live]
            node_t = probe_base[live] + _transfer_vec(par, first_leg, live_hops)
            if return_leg:
                node_t = node_t + _transfer_vec(par, return_leg, live_hops)
            node_t = node_t + (first_leg + k - 1) * t_compare
            exec_max = float(node_t.max())
            if exec_max > duration:
                duration = exec_max
            live_hop_sum = int(live_hops.sum())
            comparisons += executed * (k + 2 * (k - 1))
            elements_sent += 2 * k * executed
            element_hops += 2 * (first_leg + return_leg) * live_hop_sum
            messages += (4 if return_leg else 2) * executed
        rec.duration = duration
        rec.comparisons = comparisons
        rec.elements_sent = elements_sent
        rec.element_hops = element_hops
        rec.messages = messages
        _close_phase(machine, rec)
        if obs_on:
            if executed:
                met.inc("sort.cx.executed", executed)
            if skipped:
                met.inc("sort.cx.skipped", skipped)
            met.inc("sort.messages", messages)

    # -- gather ------------------------------------------------------------
    # Blocks are handed out as row views of the (now final) key matrix —
    # the run is over, nothing mutates it again, and rows never alias each
    # other.  ``sorted_keys`` gets its own buffer so callers may modify it
    # freely, matching the interpreter's ``np.concatenate`` result.
    for t, addr in enumerate(schedule.output_order):
        machine.blocks[addr] = key_matrix[t]
    gathered = key_matrix.reshape(-1).copy()
    sorted_keys = strip_padding(gathered, int(keys_arr.size))
    return sorted_keys, machine, k
