"""The ``loop`` backend: element-at-a-time pure-Python reference kernels.

This is the executable specification the vectorized backend is validated
against: the textbook heapsort of :mod:`repro.sorting.heapsort` for local
sorts, an element-wise duel loop for the pairwise comparisons, and
two-pointer run merges for every merge step.  Nothing here is tuned — the
point is that each kernel visibly *is* the operation the paper describes,
one interpreted comparison at a time.

The merge helpers exploit the exchange-split structure: dueling an
ascending run against a descending run leaves the winners as a *mountain*
(ascending then descending) and the losers as a *valley* (descending then
ascending), each sortable by a single two-pointer pass from both ends.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injectors import active_comparison
from repro.kernels.base import KernelBackend
from repro.sorting.heapsort import heapsort

__all__ = ["LoopBackend"]


def _sort_mountain(seq: list) -> list:
    """Sort an ascending-then-descending sequence with one two-ended pass."""
    n = len(seq)
    out = []
    i, j = 0, n - 1
    while i <= j:
        if seq[i] <= seq[j]:
            out.append(seq[i])
            i += 1
        else:
            out.append(seq[j])
            j -= 1
    return out


def _sort_valley(seq: list) -> list:
    """Sort a descending-then-ascending sequence with one two-ended pass."""
    n = len(seq)
    out = []
    i, j = 0, n - 1
    while i <= j:
        if seq[i] >= seq[j]:
            out.append(seq[i])
            i += 1
        else:
            out.append(seq[j])
            j -= 1
    out.reverse()
    return out


def _merge_asc(a: list, b: list) -> list:
    """Classic two-pointer merge of two ascending runs."""
    out = []
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        if a[i] <= b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def _duel(
    a: list, b_rev: list, want_min: bool, flips=None
) -> tuple[list, list]:
    """Pairwise duel of ``a_i`` against ``b_rev_i``; winners per ``want_min``.

    ``flips`` (an optional boolean sequence from the active
    :class:`~repro.faults.injectors.ComparisonInjector`) inverts the
    ``x <= y`` verdict of the marked duels — the lying-comparator model.
    """
    winners = []
    losers = []
    for idx, (x, y) in enumerate(zip(a, b_rev)):
        verdict = x <= y
        if flips is not None and flips[idx]:
            verdict = not verdict
        small, large = (x, y) if verdict else (y, x)
        if want_min:
            winners.append(small)
            losers.append(large)
        else:
            winners.append(large)
            losers.append(small)
    return winners, losers


def _as_block(values: list, like: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=like.dtype)


class LoopBackend(KernelBackend):
    """Pure-Python reference kernels (see module docstring)."""

    name = "loop"
    batched = False

    # -- local sort -------------------------------------------------------

    def sort_block(self, block: np.ndarray) -> np.ndarray:
        out, _ = heapsort(block)
        return out

    def sort_block_counted(self, block: np.ndarray) -> tuple[np.ndarray, int]:
        return heapsort(block)

    def sort_blocks(self, blocks: np.ndarray, descending: bool = False) -> np.ndarray:
        out, _ = self.sort_blocks_counted(blocks, descending=descending)
        return out

    def sort_blocks_counted(
        self, blocks: np.ndarray, descending: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        blocks = np.asarray(blocks)
        if blocks.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {blocks.shape}")
        rows = []
        counts = np.zeros(blocks.shape[0], dtype=np.int64)
        for t in range(blocks.shape[0]):
            row, comps = heapsort(blocks[t], descending=descending)
            rows.append(row)
            counts[t] = comps
        stacked = (
            np.stack(rows) if rows else np.empty_like(blocks)
        )
        return stacked, counts

    # -- exchange-split ---------------------------------------------------

    def split_pair(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a_arr = np.asarray(a)
        b_arr = np.asarray(b)
        inj = active_comparison()
        if inj is not None:
            # Lying duels break the mountain/valley shape the two-pointer
            # passes rely on, so the faulty path finishes with full sorts.
            flips = inj.flip_pairs(a_arr, b_arr[::-1])
            low, high = _duel(list(a_arr), list(b_arr)[::-1], True, flips)
            return (
                np.sort(_as_block(low, a_arr), kind="stable"),
                np.sort(_as_block(high, b_arr), kind="stable"),
            )
        # Min-winners form a mountain and max-losers a valley (the
        # ascending-vs-descending pairing; see module docstring).
        low, high = _duel(list(a_arr), list(b_arr)[::-1], want_min=True)
        return (
            _as_block(_sort_mountain(low), a_arr),
            _as_block(_sort_valley(high), b_arr),
        )

    def split_blocks(
        self, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        a = np.asarray(a)
        b = np.asarray(b)
        lows = np.empty_like(a)
        highs = np.empty_like(b)
        for t in range(a.shape[0]):
            lows[t], highs[t] = self.split_pair(a[t], b[t])
        return lows, highs

    # -- SPMD compare-exchange legs --------------------------------------

    def cx_winners_losers(
        self, mine: np.ndarray, received: np.ndarray, want_min: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        mine_arr = np.asarray(mine)
        theirs = list(received)[::-1]  # descending partner run
        inj = active_comparison()
        if inj is not None:
            flips = inj.flip_pairs(mine_arr, np.asarray(received)[::-1])
            winners, losers = _duel(list(mine_arr), theirs, want_min, flips)
            return (
                np.sort(_as_block(winners, mine_arr), kind="stable"),
                np.sort(_as_block(losers, mine_arr), kind="stable"),
            )
        winners, losers = _duel(list(mine_arr), theirs, want_min=want_min)
        # Min-winners form a mountain and max-losers a valley — and vice
        # versa when the max side keeps.
        if want_min:
            return (
                _as_block(_sort_mountain(winners), mine_arr),
                _as_block(_sort_valley(losers), mine_arr),
            )
        return (
            _as_block(_sort_valley(winners), mine_arr),
            _as_block(_sort_mountain(losers), mine_arr),
        )

    def merge_runs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a_arr = np.asarray(a)
        return _as_block(_merge_asc(list(a_arr), list(np.asarray(b))), a_arr)
