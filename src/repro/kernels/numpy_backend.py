"""The ``numpy`` backend: vectorized kernels for the sorting hot paths.

Three ideas, matching the tentpole kernels:

* **Batched local sort** — when the caller only needs values (the paper's
  own analysis charges the closed-form worst case), one row-wise
  ``np.sort``; when it needs *exact* comparison accounting, a masked
  vectorized sift-down runs the reference heapsort on every block
  simultaneously: each Python-level iteration advances one sift-down step
  in *all* blocks at once, counting per-block comparisons with boolean
  masks.  The counts are exactly those of
  :func:`repro.sorting.heapsort.heapsort` because the control flow is the
  same — only the block axis is vectorized (cross-validated by the
  property tests in ``tests/kernels/``).

* **Vectorized exchange-split** — the half-traffic merge-split of two
  ascending blocks is ``min``/``max`` against the reversed partner plus
  one sort per side (the exchange-split lemma of
  :mod:`repro.sorting.merge`); the batched form does this for every
  processor pair of a bitonic substage as one 2-D array operation.

* **Vectorized compare-exchange legs** — the SPMD duel and run merges are
  ``np.minimum``/``np.maximum`` and concatenate-and-sort.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injectors import active_comparison
from repro.kernels.base import KernelBackend

__all__ = ["NumpyBackend", "heapsort_batch"]


def _sift_down_batch(a: np.ndarray, rows: np.ndarray, start: int, end: int,
                     comps: np.ndarray) -> None:
    """One sift-down from ``start`` over every row of ``a``, masked.

    Mirrors ``repro.sorting.heapsort._sift_down`` exactly, with the block
    axis vectorized: ``alive`` marks rows whose sift-down is still walking
    down the heap; per-row comparison counts accumulate into ``comps``.
    """
    nrows = a.shape[0]
    root = np.full(nrows, start, dtype=np.intp)
    alive = np.ones(nrows, dtype=bool)
    while True:
        child = 2 * root + 1
        alive &= child < end
        if not alive.any():
            return
        # Clamp dead rows to a safe index; their reads are masked out.
        child = np.where(alive, child, 0)
        has_sibling = alive & (2 * root + 2 < end)
        sibling = np.where(has_sibling, child + 1, 0)
        comps += has_sibling
        go_right = has_sibling & (a[rows, child] < a[rows, sibling])
        child = np.where(go_right, sibling, child)
        comps += alive
        swap = alive & (a[rows, root] < a[rows, child])
        srows = rows[swap]
        sroot = root[swap]
        schild = child[swap]
        tmp = a[srows, sroot].copy()
        a[srows, sroot] = a[srows, schild]
        a[srows, schild] = tmp
        root = np.where(swap, child, root)
        alive = swap


def heapsort_batch(
    blocks: np.ndarray, descending: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Heapsort every row of a 2-D batch, with exact per-row counts.

    Returns ``(sorted_rows, comparisons)`` where ``comparisons[t]`` equals
    what :func:`repro.sorting.heapsort.heapsort` reports for row ``t``.
    The input is not modified.  Python-level iterations scale with the
    block length only, so the batch axis is effectively free — this wins
    once there are more than a couple dozen blocks and is exact always.
    """
    a = np.array(blocks, copy=True)
    if a.ndim != 2:
        raise ValueError(f"heapsort_batch expects a 2-D batch, got shape {a.shape}")
    nrows, m = a.shape
    comps = np.zeros(nrows, dtype=np.int64)
    if m > 1:
        rows = np.arange(nrows)
        for start in range(m // 2 - 1, -1, -1):
            _sift_down_batch(a, rows, start, m, comps)
        for end in range(m - 1, 0, -1):
            a[:, [0, end]] = a[:, [end, 0]]
            _sift_down_batch(a, rows, 0, end, comps)
    if descending:
        a = a[:, ::-1].copy()
    return a, comps


class NumpyBackend(KernelBackend):
    """Vectorized kernels (see module docstring)."""

    name = "numpy"
    batched = True

    # -- local sort -------------------------------------------------------

    def sort_block(self, block: np.ndarray) -> np.ndarray:
        return np.sort(np.asarray(block), kind="stable")

    def sort_block_counted(self, block: np.ndarray) -> tuple[np.ndarray, int]:
        out, comps = heapsort_batch(np.asarray(block)[None, :])
        return out[0], int(comps[0])

    def sort_blocks(self, blocks: np.ndarray, descending: bool = False) -> np.ndarray:
        out = np.sort(np.asarray(blocks), axis=1, kind="stable")
        if descending:
            out = out[:, ::-1].copy()
        return out

    def sort_blocks_counted(
        self, blocks: np.ndarray, descending: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        return heapsort_batch(blocks, descending=descending)

    # -- exchange-split ---------------------------------------------------

    def split_pair(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        b_rev = np.asarray(b)[::-1]
        a = np.asarray(a)
        inj = active_comparison()
        if inj is not None:
            # Lying duels: flip the <= verdict wherever the injector says;
            # minimum/maximum(a, b) is where(a <= b, ...) elementwise, so
            # the fault-free path below is the flips-all-False case.
            le = (a <= b_rev) ^ inj.flip_pairs(a, b_rev)
            return (
                np.sort(np.where(le, a, b_rev), kind="stable"),
                np.sort(np.where(le, b_rev, a), kind="stable"),
            )
        return (
            np.sort(np.minimum(a, b_rev), kind="stable"),
            np.sort(np.maximum(a, b_rev), kind="stable"),
        )

    def split_blocks(
        self, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        a = np.asarray(a)
        b_rev = np.asarray(b)[:, ::-1]
        inj = active_comparison()
        if inj is not None:
            le = (a <= b_rev) ^ inj.flip_pairs(a, b_rev)
            return (
                np.sort(np.where(le, a, b_rev), axis=1, kind="stable"),
                np.sort(np.where(le, b_rev, a), axis=1, kind="stable"),
            )
        return (
            np.sort(np.minimum(a, b_rev), axis=1, kind="stable"),
            np.sort(np.maximum(a, b_rev), axis=1, kind="stable"),
        )

    # -- SPMD compare-exchange legs --------------------------------------

    def cx_winners_losers(
        self, mine: np.ndarray, received: np.ndarray, want_min: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        mine = np.asarray(mine)
        theirs = np.asarray(received)[::-1]
        inj = active_comparison()
        if inj is not None:
            le = (mine <= theirs) ^ inj.flip_pairs(mine, theirs)
            mins = np.where(le, mine, theirs)
            maxs = np.where(le, theirs, mine)
            winners, losers = (mins, maxs) if want_min else (maxs, mins)
        elif want_min:
            winners, losers = np.minimum(mine, theirs), np.maximum(mine, theirs)
        else:
            winners, losers = np.maximum(mine, theirs), np.minimum(mine, theirs)
        return np.sort(winners, kind="stable"), np.sort(losers, kind="stable")

    def merge_runs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.sort(np.concatenate([np.asarray(a), np.asarray(b)]), kind="stable")
