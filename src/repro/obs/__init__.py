"""repro.obs — unified observability: spans, metrics, trace export.

The instrumentation layer every other subsystem reports into:

* :mod:`repro.obs.spans` — hierarchical span tracer (:class:`Tracer`),
  context-manager and retroactive APIs, simulated-time and wall-time
  clocks, and the :data:`NULL_TRACER` disabled fast path (one attribute
  check when tracing is off);
* :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  :class:`MetricsRegistry` with ``to_dict()`` JSON export; the logical
  ``sort.*`` counters are identical across both execution backends and are
  what cross-backend validation compares;
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON export
  (``chrome://tracing`` / ui.perfetto.dev) plus text flame and per-step
  reports.

Entry points accept an ``obs`` tracer: ``fault_tolerant_sort(...,
obs=Tracer())``, ``spmd_fault_tolerant_sort(..., obs=...)``,
``sort_session(..., obs=...)``, and the ``repro trace`` CLI subcommand
runs a sort and writes ``trace.json`` + a metrics summary.  See
docs/OBSERVABILITY.md for the span taxonomy and metric names.
"""

from repro.obs.export import (
    chrome_trace_events,
    flame_report,
    span_stats,
    step_durations,
    step_report,
    write_chrome_trace,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    wall_clock_us,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "flame_report",
    "span_stats",
    "step_durations",
    "step_report",
    "wall_clock_us",
    "write_chrome_trace",
]
