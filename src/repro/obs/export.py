"""Trace export: Chrome/Perfetto ``trace_event`` JSON and text reports.

:func:`write_chrome_trace` writes a plain JSON *array* of ``trace_event``
objects — the format both ``chrome://tracing`` and https://ui.perfetto.dev
load directly.  Every span becomes a complete event (``"ph": "X"``) with
``name``/``cat``/``ts``/``dur``/``pid``/``tid`` (+ optional ``args``);
process and thread labels registered on the tracer become metadata events
(``"ph": "M"``).

Text-side, :func:`flame_report` aggregates spans by name with total/self
time (self = duration minus directly nested child spans on the same
``(pid, tid)`` row) — a one-terminal flame-style hotspot view — and
:func:`step_durations` folds the fault-tolerant sort's ``stepK:...`` spans
into per-paper-step durations (steps 1-8).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

from repro.obs.spans import Span, Tracer

__all__ = [
    "SpanStat",
    "chrome_trace_events",
    "flame_report",
    "span_stats",
    "step_durations",
    "step_report",
    "write_chrome_trace",
]

_STEP_RE = re.compile(r"^step(\d+)")


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Render a tracer's spans as Chrome ``trace_event`` dicts.

    Metadata (process/thread name) events come first, then one ``"X"``
    (complete) event per span in recording order.  All timestamps are
    microseconds, as the format requires.
    """
    events: list[dict] = []
    for pid, name in sorted(tracer.pid_names.items()):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for (pid, tid), name in sorted(tracer.tid_names.items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name},
        })
    for sp in tracer.spans:
        ev = {
            "name": sp.name,
            "cat": sp.cat or "default",
            "ph": "X",
            "ts": sp.ts,
            "dur": sp.dur,
            "pid": sp.pid,
            "tid": sp.tid,
        }
        if sp.args:
            ev["args"] = sp.args
        events.append(ev)
    return events


def write_chrome_trace(path: str, tracer: Tracer) -> int:
    """Write the trace as a JSON event array; returns the event count."""
    events = chrome_trace_events(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(events, fh, indent=None, separators=(",", ":"))
    return len(events)


@dataclass
class SpanStat:
    """Aggregated timing of all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0

    def add(self, dur: float, self_dur: float) -> None:
        self.count += 1
        self.total += dur
        self.self_time += self_dur


def _self_times(spans: list[Span]) -> list[tuple[Span, float]]:
    """Self time per span: duration minus directly nested children.

    Nesting is computed per ``(pid, tid)`` row from interval containment —
    the same rule Perfetto uses to stack ``"X"`` events.
    """
    rows: dict[tuple[int, int], list[Span]] = {}
    for sp in spans:
        rows.setdefault((sp.pid, sp.tid), []).append(sp)
    out: list[tuple[Span, float]] = []
    eps = 1e-9
    for row in rows.values():
        row.sort(key=lambda s: (s.ts, -s.dur))
        stack: list[list] = []  # [span, accumulated child duration]
        for sp in row:
            while stack and sp.ts >= stack[-1][0].end - eps:
                done, child_dur = stack.pop()
                out.append((done, max(done.dur - child_dur, 0.0)))
            if stack:
                stack[-1][1] += sp.dur
            stack.append([sp, 0.0])
        while stack:
            done, child_dur = stack.pop()
            out.append((done, max(done.dur - child_dur, 0.0)))
    return out


def span_stats(tracer: Tracer, cats: tuple[str, ...] | None = None) -> list[SpanStat]:
    """Per-name aggregation of (optionally category-filtered) spans."""
    spans = [sp for sp in tracer.spans if cats is None or sp.cat in cats]
    stats: dict[str, SpanStat] = {}
    for sp, self_dur in _self_times(spans):
        st = stats.get(sp.name)
        if st is None:
            st = stats[sp.name] = SpanStat(name=sp.name)
        st.add(sp.dur, self_dur)
    return sorted(stats.values(), key=lambda s: -s.self_time)


def flame_report(tracer: Tracer, top: int = 5,
                 cats: tuple[str, ...] | None = None) -> str:
    """Text flame-style report: the ``top`` hottest span names by self time."""
    stats = span_stats(tracer, cats=cats)
    total = sum(st.self_time for st in stats) or 1.0
    lines = [f"hottest spans (self time, {len(stats)} distinct names):"]
    for st in stats[:top]:
        share = 100.0 * st.self_time / total
        lines.append(
            f"  {st.name:<40} self {st.self_time:12.1f}us "
            f"({share:5.1f}%)  total {st.total:12.1f}us  x{st.count}"
        )
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


def step_durations(tracer: Tracer) -> dict[str, float]:
    """Fold ``stepK:...`` spans into per-paper-step total durations.

    Returns ``{"step1": ..., ..., "step8": ...}`` (only steps that emitted
    spans appear).  Sub-step spans like ``step3a:local-heapsort`` and
    ``step3b:intra-init`` fold into their parent step; ``step4`` spans
    cover whole merge stages and therefore nest steps 5-8 (the paper's
    "repeat" step).
    """
    steps: dict[str, float] = {}
    for sp in tracer.spans:
        m = _STEP_RE.match(sp.name)
        if m is None:
            continue
        key = f"step{m.group(1)}"
        steps[key] = steps.get(key, 0.0) + sp.dur
    return dict(sorted(steps.items(), key=lambda kv: int(kv[0][4:])))


def step_report(tracer: Tracer) -> str:
    """Text table of :func:`step_durations` (simulated microseconds)."""
    steps = step_durations(tracer)
    lines = ["per-step simulated durations (us):"]
    for name, dur in steps.items():
        lines.append(f"  {name:<8} {dur:14.1f}")
    if len(lines) == 1:
        lines.append("  (no step spans recorded)")
    return "\n".join(lines)
