"""Metrics registry: counters, gauges, and histograms with JSON export.

One :class:`MetricsRegistry` per traced run collects everything both
execution backends report — messages sent, elements (keys) moved per link,
compare-exchange counts, queue delays, per-phase key movement — under
dotted metric names (see docs/OBSERVABILITY.md for the taxonomy).  The
registry is the unit of comparison for cross-backend validation: the same
oblivious schedule executed on the phase engine and on the discrete-event
SPMD machine must produce identical logical counters (``sort.*``).

Instruments are created on first use::

    reg = MetricsRegistry()
    reg.inc("sort.messages", 2)
    reg.observe("engine.queue_delay", 12.5)
    reg.set_gauge("host.total_time", 3_200.0)
    print(reg.summary())
    json.dumps(reg.to_dict())

:class:`NullMetrics` is the disabled-path stand-in: every method is a
no-op, so instrumented code can call it unconditionally (though hot paths
should guard on ``tracer.enabled`` and skip the call entirely).
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
]


class Counter:
    """A monotonically increasing count (messages, comparisons, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming distribution summary: count, sum, min, max, mean.

    Constant memory — no buckets are kept; this is enough for the queue
    delay / keys-moved style questions the reports answer.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Create-on-first-use registry of named instruments.

    Instrument creation is lock-protected (updates on an already-created
    instrument are plain attribute arithmetic, safe under the GIL for the
    single-writer simulations this repo runs).
    """

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.setdefault(name, Histogram(name))
        return h

    # -- convenience write/read --------------------------------------------

    def inc(self, name: str, amount: int | float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    def value(self, name: str, default: int | float = 0) -> int | float:
        """Current value of counter ``name`` (``default`` if absent)."""
        c = self.counters.get(name)
        return c.value if c is not None else default

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.to_dict() for k, h in sorted(self.histograms.items())},
        }

    def summary(self, title: str = "metrics") -> str:
        """Human-readable text table of the whole registry."""
        lines = [f"{title}:"]
        for name, c in sorted(self.counters.items()):
            lines.append(f"  {name:<42} {c.value:>14g}")
        for name, g in sorted(self.gauges.items()):
            lines.append(f"  {name:<42} {g.value:>14g}")
        for name, h in sorted(self.histograms.items()):
            lines.append(
                f"  {name:<42} n={h.count} mean={h.mean:.2f} "
                f"min={0.0 if not h.count else h.min:.2f} "
                f"max={0.0 if not h.count else h.max:.2f}"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)


class NullMetrics:
    """No-op registry used by :class:`repro.obs.spans.NullTracer`."""

    __slots__ = ()

    _COUNTER = None  # shared inert instruments, created lazily below

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def inc(self, name: str, amount: int | float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def value(self, name: str, default: int | float = 0) -> int | float:
        return default

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def summary(self, title: str = "metrics") -> str:
        return f"{title}:\n  (disabled)"


class _InertCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _InertGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _InertHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _InertCounter("null")
_NULL_GAUGE = _InertGauge("null")
_NULL_HISTOGRAM = _InertHistogram("null")

NULL_METRICS = NullMetrics()
