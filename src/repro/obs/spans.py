"""Zero-dependency hierarchical span tracing.

A :class:`Tracer` collects :class:`Span` records — named time intervals
with a Perfetto-compatible ``(pid, tid, ts, dur)`` placement — from every
layer of the stack: algorithm steps, machine phases, link transmissions,
per-message lifecycles, host-session segments.  Two recording styles:

* ``with tracer.span("name"):`` — live context manager, timed with the
  tracer's ``clock`` (wall time in microseconds by default);
* ``tracer.complete("name", ts=..., dur=...)`` — retroactive record for
  simulated-time intervals whose duration the simulator already knows
  (phase engines learn a phase's duration only at the barrier).

Both simulated-time and wall-time spans can coexist in one tracer; the
convention in this repo is that *pid 0 carries simulated time* (the
exported trace opens in Perfetto with the simulation clock on the
timeline) and wall-clock facts ride along in span ``args``.

Disabled tracing must cost one attribute check on hot paths::

    if machine.obs.enabled:          # False on NULL_TRACER
        machine.obs.complete(...)

:data:`NULL_TRACER` (a :class:`NullTracer`) is the shared disabled
instance: ``enabled`` is ``False``, ``span()`` returns one reusable no-op
context manager, every other method is a no-op, and its ``metrics`` is
:data:`repro.obs.metrics.NULL_METRICS`.

Thread safety: span appends are lock-protected and the live-span stack is
per-thread, so concurrently traced threads interleave correctly.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PID_MESSAGES",
    "PID_NETWORK",
    "PID_SIM",
    "Span",
    "TID_ALGO",
    "TID_PHASES",
    "TID_RANK_BASE",
    "Tracer",
    "wall_clock_us",
]

#: Perfetto process/thread placement conventions used across the repo.
PID_SIM = 0  #: simulated time: algorithm steps, machine phases, SPMD ranks
PID_NETWORK = 1  #: per-directed-link transmission rows
PID_MESSAGES = 2  #: per-message lifecycle rows (one row per destination)

TID_ALGO = 0  #: algorithm-level step spans (ftsort steps 1-8, host segments)
TID_PHASES = 1  #: phase-engine barrier phases
TID_RANK_BASE = 10  #: SPMD rank ``r`` renders on tid ``TID_RANK_BASE + r``


def wall_clock_us() -> float:
    """Monotonic wall clock in microseconds (the default tracer clock)."""
    return time.perf_counter() * 1e6


@dataclass
class Span:
    """One completed named interval.

    Attributes:
        name: span name (e.g. ``"step7:inter[i=0,j=0]"``).
        ts: start timestamp (microseconds — simulated or wall, by pid
            convention).
        dur: duration in the same unit (0 for instant markers).
        cat: category tag (``"step"``, ``"phase"``, ``"link"``, ``"msg"``,
            ``"collective"``, ...).
        pid: Perfetto process row.
        tid: Perfetto thread row within ``pid``.
        args: optional JSON-able payload shown in the Perfetto detail pane.
    """

    name: str
    ts: float
    dur: float
    cat: str = ""
    pid: int = PID_SIM
    tid: int = TID_ALGO
    args: dict | None = None

    @property
    def end(self) -> float:
        return self.ts + self.dur


class _LiveSpan:
    """Context manager for one in-flight :meth:`Tracer.span` interval."""

    __slots__ = ("_tracer", "_name", "_cat", "_pid", "_tid", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, pid: int, tid: int,
                 args: dict | None):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._pid = pid
        self._tid = tid
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._t0 = self._tracer.clock()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(self)
        self._tracer.complete(
            self._name,
            ts=self._t0,
            dur=self._tracer.clock() - self._t0,
            cat=self._cat,
            pid=self._pid,
            tid=self._tid,
            args=self._args,
        )
        return False


class Tracer:
    """Collects spans and owns a :class:`~repro.obs.metrics.MetricsRegistry`.

    Args:
        clock: zero-argument callable returning the current time in
            microseconds for live ``span()`` blocks; defaults to
            :func:`wall_clock_us`.  Retroactive :meth:`complete` records
            carry their own timestamps and ignore the clock.
        metrics: registry to attach (a fresh one by default).
        pid: default Perfetto process row for spans that do not specify one.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        metrics: MetricsRegistry | None = None,
        pid: int = PID_SIM,
    ):
        self.clock = clock if clock is not None else wall_clock_us
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pid = pid
        self.spans: list[Span] = []
        self.pid_names: dict[int, str] = {}
        self.tid_names: dict[tuple[int, int], str] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- live spans ---------------------------------------------------------

    def span(self, name: str, cat: str = "", pid: int | None = None,
             tid: int = TID_ALGO, **args) -> _LiveSpan:
        """Open a live span; use as ``with tracer.span("name"): ...``."""
        return _LiveSpan(self, name, cat, self.pid if pid is None else pid,
                         tid, args or None)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, live: _LiveSpan) -> None:
        self._stack().append(live)

    def _pop(self, live: _LiveSpan) -> None:
        stack = self._stack()
        if stack and stack[-1] is live:
            stack.pop()

    @property
    def depth(self) -> int:
        """Nesting depth of live ``span()`` blocks on this thread."""
        return len(self._stack())

    # -- retroactive records ------------------------------------------------

    def complete(self, name: str, ts: float, dur: float, cat: str = "",
                 pid: int | None = None, tid: int = TID_ALGO,
                 args: dict | None = None) -> Span:
        """Record an already-finished interval (simulated-time spans)."""
        sp = Span(name=name, ts=ts, dur=max(dur, 0.0), cat=cat,
                  pid=self.pid if pid is None else pid, tid=tid, args=args)
        with self._lock:
            self.spans.append(sp)
        return sp

    def instant(self, name: str, ts: float | None = None, cat: str = "",
                pid: int | None = None, tid: int = TID_ALGO,
                args: dict | None = None) -> Span:
        """Record a zero-duration marker (``ts`` defaults to the clock)."""
        return self.complete(name, ts=self.clock() if ts is None else ts,
                             dur=0.0, cat=cat, pid=pid, tid=tid, args=args)

    # -- naming -------------------------------------------------------------

    def name_process(self, pid: int, name: str) -> None:
        """Label a Perfetto process row."""
        self.pid_names[pid] = name

    def name_thread(self, tid: int, name: str, pid: int | None = None) -> None:
        """Label a Perfetto thread row."""
        self.tid_names[(self.pid if pid is None else pid, tid)] = name

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Tracer(spans={len(self.spans)}, enabled={self.enabled})"


class _NullContext:
    """Reusable no-op context manager returned by :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CTX = _NullContext()


class NullTracer:
    """Disabled tracer: one attribute check (``enabled``) and no-ops.

    All instrumented call sites guard with ``if obs.enabled:`` so the
    disabled path never allocates; even unguarded calls bounce off the
    shared no-op context/metrics objects.
    """

    enabled = False
    depth = 0

    def __init__(self):
        self.metrics: NullMetrics = NULL_METRICS
        self.spans: tuple = ()
        self.pid_names: dict = {}
        self.tid_names: dict = {}
        self.pid = PID_SIM

    def span(self, name: str, cat: str = "", pid: int | None = None,
             tid: int = TID_ALGO, **args) -> _NullContext:
        return _NULL_CTX

    def complete(self, name: str, ts: float, dur: float, cat: str = "",
                 pid: int | None = None, tid: int = TID_ALGO,
                 args: dict | None = None) -> None:
        return None

    def instant(self, name: str, ts: float | None = None, cat: str = "",
                pid: int | None = None, tid: int = TID_ALGO,
                args: dict | None = None) -> None:
        return None

    def name_process(self, pid: int, name: str) -> None:
        return None

    def name_thread(self, tid: int, name: str, pid: int | None = None) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return "NullTracer()"


#: Shared disabled tracer — the default ``obs`` of every engine.
NULL_TRACER = NullTracer()
