"""Process-parallel task fan-out for experiment grids and chaos campaigns.

Simulated runs are embarrassingly parallel: every grid point / scenario is
a pure function of its own (deterministically derived) seed, so the only
orchestration needed is a process pool and order-stable result collection.
:func:`run_tasks` provides exactly that — tasks are submitted to a
:class:`concurrent.futures.ProcessPoolExecutor` in *chunks* (amortizing
pickling and IPC round-trips), results are returned **in task order**
regardless of completion order, and ``jobs <= 1`` degrades to a plain
serial loop in the calling process (no pool, no pickling), which is also
the byte-for-byte reference the parallel path must reproduce.

Two regressions the first cut of this runner shipped with, now guarded:

* **Auto-serial.** Pool spin-up plus per-task pickling can exceed the work
  itself.  On single-CPU hosts (:func:`effective_cpu_count` of 1) or for
  small batches (``total < 2 * jobs``) the parallel path *cannot* win, so
  the runner silently degrades to the serial loop.
* **Warm pool.** The pool persists across :func:`run_tasks` calls (keyed
  on worker count) and each worker pre-imports the heavy simulation stack
  in its initializer, so repeated campaign invocations — the shrinker, the
  benchmarks — pay the fork/import tax once.  Worker processes also keep
  their per-process :data:`repro.plancache.PLAN_CACHE` warm across calls.

Task functions must be module-level callables (picklable) and must not
share mutable state; per-task observability (e.g. a fresh
:class:`repro.obs.Tracer` per scenario) belongs *inside* the task so each
worker's tracer is isolated, with merging done by the parent.
"""

from __future__ import annotations

import atexit
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

__all__ = [
    "effective_cpu_count",
    "resolve_jobs",
    "run_tasks",
    "shutdown_pool",
    "warm_pool",
]


def effective_cpu_count() -> int:
    """CPUs this *process* may actually use.

    ``os.cpu_count()`` reports the host's cores and ignores CPU affinity
    masks — inside containerized CI a 64-core host may pin this process to
    2 cores, and sizing the pool (or deciding parallelism can't win) from
    the host count mis-detects the headroom both ways.
    ``os.sched_getaffinity(0)`` reflects the actual usable set where the
    platform provides it (Linux); elsewhere fall back to the host count.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            count = len(getaffinity(0))
        except OSError:  # pragma: no cover - platform quirk
            count = 0
        if count > 0:
            return count
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all *usable* CPUs
    (:func:`effective_cpu_count`, affinity-aware), else as given."""
    if jobs is None or jobs == 0:
        return effective_cpu_count()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _warm_worker() -> None:
    """Pool initializer: pre-import the simulation stack once per worker."""
    import repro.chaos.campaign  # noqa: F401  (pulls in core, simulator, obs)


def _run_chunk(payload: tuple) -> list:
    """Worker unit: apply ``fn`` to a contiguous chunk of tasks."""
    fn, chunk = payload
    return [fn(task) for task in chunk]


_pool: ProcessPoolExecutor | None = None
_pool_workers = 0


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    """The warm process pool, rebuilt only when the worker count changes.

    A resize *drains* the old pool — ``shutdown(wait=True)`` without
    cancelling futures — so batches already dispatched onto it (the service
    submits straight to :func:`warm_pool` via ``loop.run_in_executor``)
    finish and deliver their results before the workers retire.  The
    hard-kill teardown (``cancel_futures=True``) is reserved for
    :func:`shutdown_pool`, i.e. process exit and interrupt unwinding.
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers != workers:
        old = _pool
        _pool = None
        old.shutdown(wait=True, cancel_futures=False)
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker)
        _pool_workers = workers
    return _pool


def warm_pool(workers: int) -> ProcessPoolExecutor:
    """Public handle on the shared warm pool (``repro.service`` dispatches
    job batches onto it directly via ``loop.run_in_executor``)."""
    return _shared_pool(workers)


@atexit.register
def shutdown_pool() -> None:
    """Tear the warm pool down (workers killed, queued chunks cancelled).

    Safe to call when no pool exists; the next :func:`run_tasks` /
    :func:`warm_pool` call rebuilds one.  Registered at exit, and invoked
    by :func:`run_tasks` itself on interrupt-style exceptions so a Ctrl-C
    mid-campaign never leaves orphaned worker processes behind.
    """
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None


def run_tasks(
    fn: Callable,
    tasks: Sequence | Iterable,
    jobs: int = 1,
    progress: Callable[[int, int, object], None] | None = None,
) -> list:
    """Run ``fn(task)`` for every task, optionally in parallel processes.

    Args:
        fn: module-level (picklable) task function.
        tasks: the task descriptions; materialized to a list.
        jobs: worker processes; ``<= 1`` runs serially in-process.  The
            parallel path also auto-degrades to serial when it cannot win
            (one CPU, or fewer than ``2 * jobs`` tasks).
        progress: optional ``progress(done, total, result)`` callback fired
            in the parent as each task completes (completion order; chunked
            submission delivers a chunk's results consecutively).

    Returns:
        ``[fn(t) for t in tasks]`` — results in task order, whatever the
        completion order was.
    """
    tasks = list(tasks)
    total = len(tasks)
    serial = (
        jobs <= 1
        or total <= 1
        or effective_cpu_count() == 1
        or total < 2 * jobs
    )
    if serial:
        results = []
        for idx, task in enumerate(tasks):
            result = fn(task)
            results.append(result)
            if progress is not None:
                progress(idx + 1, total, result)
        return results

    workers = min(jobs, total)
    # ~4 chunks per worker balances pickling amortization against tail
    # latency (a straggler chunk idles at most ~1/4 of one worker's share).
    chunk_size = max(1, -(-total // (workers * 4)))
    chunks = [tasks[i : i + chunk_size] for i in range(0, total, chunk_size)]
    results: list = [None] * total
    done = 0
    pool = _shared_pool(workers)
    starts = {}
    start = 0
    for chunk in chunks:
        starts[pool.submit(_run_chunk, (fn, chunk))] = start
        start += len(chunk)
    pending = set(starts)
    try:
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                base = starts[fut]
                chunk_results = fut.result()  # re-raises worker exceptions here
                for offset, result in enumerate(chunk_results):
                    results[base + offset] = result
                    done += 1
                    if progress is not None:
                        progress(done, total, result)
    except Exception:
        # A task (or progress callback) failed: drop the queued chunks but
        # keep the warm pool — one bad task does not poison the workers.
        for fut in pending:
            fut.cancel()
        raise
    except BaseException:
        # Interrupt-style teardown (KeyboardInterrupt, SystemExit): cancel
        # everything queued and kill the pool so no worker outlives the
        # run that was aborted.
        for fut in pending:
            fut.cancel()
        shutdown_pool()
        raise
    return results
