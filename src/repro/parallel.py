"""Parallel task fan-out: serial / process / thread / shm executor tiers.

Simulated runs are embarrassingly parallel: every grid point / scenario is
a pure function of its own (deterministically derived) seed, so the only
orchestration needed is an executor and order-stable result collection.
:func:`run_tasks` provides exactly that — tasks are submitted in *chunks*
(amortizing per-dispatch overhead), results are returned **in task order**
regardless of completion order, and every tier must reproduce the serial
loop byte-for-byte.

The ``executor`` axis picks how a chunk crosses the worker boundary:

* ``serial`` — plain loop in the calling process; the reference.
* ``process`` — the warm :class:`~concurrent.futures.ProcessPoolExecutor`;
  every task and result is pickled across a pipe.
* ``thread`` — a warm :class:`~concurrent.futures.ThreadPoolExecutor`;
  zero serialization, but only wins when the kernels release the GIL
  (numpy / compiled backends do; the pure-Python loop backend does not).
* ``shm`` — the process pool, but bulk payloads (key blocks, result
  arrays) travel through :mod:`repro.shm` arenas and only tiny
  descriptors are pickled.
* ``auto`` — picks by kernel backend and payload volume against the
  measured pickling break-even (:data:`PICKLE_BREAK_EVEN_BYTES`, see
  docs/PERFORMANCE.md).

Guards the first cut of this runner shipped without, still enforced for
*every* tier:

* **Auto-serial.** Pool spin-up plus dispatch overhead can exceed the
  work itself.  On single-CPU hosts (:func:`effective_cpu_count` of 1) or
  for small batches (``total < 2 * jobs``) no parallel tier can win, so
  the runner silently degrades to the serial loop — which is also what
  lets ``--fast`` runs pass unchanged on 1-CPU hosts.
* **Warm pools.** Both pools persist across :func:`run_tasks` calls
  (keyed on worker count); process workers pre-import the simulation
  stack and keep their per-process :data:`repro.plancache.PLAN_CACHE`
  warm.  Teardown (:func:`shutdown_pool`) kills both pools *and* sweeps
  any shared-memory arenas still registered, extending the no-orphan
  guarantee to ``/dev/shm``.

Task functions must be module-level callables (picklable) and must not
share mutable state; under the thread tier they additionally must keep
any ambient state in ``threading.local`` slots (the fault injectors'
active-slot registry does — see :mod:`repro.faults.injectors`).
"""

from __future__ import annotations

import atexit
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

from repro import shm

__all__ = [
    "EXECUTORS",
    "PICKLE_BREAK_EVEN_BYTES",
    "effective_cpu_count",
    "jobs_from_env",
    "last_run_stats",
    "resolve_executor",
    "resolve_jobs",
    "run_tasks",
    "shard_slice",
    "shutdown_pool",
    "warm_pool",
    "warm_thread_pool",
]

#: The executor tiers ``run_tasks`` understands (``"auto"`` resolves to one).
EXECUTORS = ("serial", "process", "thread", "shm")

#: Per-task payload volume above which pickling dominates dispatch cost and
#: the ``auto`` policy switches away from the process pool.  Measured on the
#: executor benchmark (docs/PERFORMANCE.md, "Executor tiers"): below ~64 KiB
#: a pickle round-trip beats arena setup + descriptor dispatch.
PICKLE_BREAK_EVEN_BYTES = 1 << 16

#: How long teardown waits for already-running shm chunks to finish before
#: sweeping their arenas (a sweep racing a live packer loses data, never
#: segments — but waiting first keeps the normal path loss-free).
_TEARDOWN_WAIT_SECONDS = 30.0


def effective_cpu_count() -> int:
    """CPUs this *process* may actually use.

    ``os.cpu_count()`` reports the host's cores and ignores CPU affinity
    masks — inside containerized CI a 64-core host may pin this process to
    2 cores, and sizing the pool (or deciding parallelism can't win) from
    the host count mis-detects the headroom both ways.
    ``os.sched_getaffinity(0)`` reflects the actual usable set where the
    platform provides it (Linux); elsewhere fall back to the host count.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            count = len(getaffinity(0))
        except OSError:  # pragma: no cover - platform quirk
            count = 0
        if count > 0:
            return count
    return os.cpu_count() or 1


def shard_slice() -> int:
    """How many sibling shard processes share this machine (>= 1).

    The shard manager exports ``REPRO_SHARD_COUNT`` to every shard it
    spawns; ``--jobs auto`` inside a shard divides the machine by it so N
    shards size N pools to *their slice* of the CPUs instead of each
    claiming all of them (N x oversubscription thrashes the very caches
    sharding exists to keep warm).  Absent or malformed means standalone:
    slice of 1.
    """
    raw = os.environ.get("REPRO_SHARD_COUNT", "")
    try:
        count = int(raw)
    except ValueError:
        return 1
    return max(1, count)


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0``/``"auto"`` means all
    *usable* CPUs (:func:`effective_cpu_count`, affinity-aware, divided
    across sibling shards per :func:`shard_slice`), else as given.
    Strings are accepted so CLI flags and environment variables
    (``REPRO_JOBS``) share one parser."""
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text in ("auto", ""):
            jobs = 0
        else:
            try:
                jobs = int(text)
            except ValueError:
                raise ValueError(
                    f"jobs must be an integer or 'auto', got {text!r}"
                ) from None
    if jobs is None or jobs == 0:
        return max(1, effective_cpu_count() // shard_slice())
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def jobs_from_env(default: int | str | None = 1) -> int:
    """Worker count from ``REPRO_JOBS`` (``auto``/``0``/N), else ``default``.

    The CLI entry points consult this so ``REPRO_JOBS=auto repro chaos``
    and ``repro chaos --jobs auto`` resolve identically (flag wins when
    both are given — callers pass the flag value as ``default``-override
    by resolving it themselves first)."""
    env = os.environ.get("REPRO_JOBS")
    if env is not None and env.strip():
        return resolve_jobs(env)
    return resolve_jobs(default)


def resolve_executor(
    executor: str | None,
    *,
    jobs: int = 1,
    total: int | None = None,
    payload_hint: int | None = None,
    kernels: str | None = None,
) -> str:
    """Resolve an executor request to one of :data:`EXECUTORS`.

    ``None`` consults ``REPRO_EXECUTOR`` and falls back to ``auto``.  The
    can't-win degrade guard applies to *every* tier, explicit or not:
    with one usable CPU, ``jobs <= 1``, or fewer than ``2 * jobs`` tasks,
    the answer is ``serial`` (pass ``total=None`` to skip the guard when
    batch size is unknown, e.g. when pre-resolving for a service pool).

    The ``auto`` policy: GIL-releasing kernel backends (``numpy``,
    ``compiled``) with per-task payloads past the pickling break-even run
    on threads (zero serialization, shared memory for free); the
    pure-Python ``loop`` backend holds the GIL, so big payloads go to the
    process pool via shm arenas instead; small payloads pickle faster
    than any arena setup and stay on the plain process pool.
    """
    if executor is None:
        executor = os.environ.get("REPRO_EXECUTOR") or "auto"
    executor = str(executor).strip().lower() or "auto"
    if executor not in EXECUTORS and executor != "auto":
        raise ValueError(
            f"unknown executor {executor!r}; expected one of "
            f"{', '.join(EXECUTORS + ('auto',))}"
        )
    if executor == "serial":
        return "serial"
    if total is not None and (
        jobs <= 1
        or total <= 1
        or effective_cpu_count() == 1
        or total < 2 * jobs
    ):
        return "serial"
    if executor != "auto":
        if executor == "shm" and not shm.shm_available():  # pragma: no cover
            return "process"
        return executor
    if kernels is None:
        from repro.kernels import default_backend_name

        kernels = default_backend_name()
    hint = int(payload_hint or 0)
    if hint >= PICKLE_BREAK_EVEN_BYTES:
        if kernels in ("numpy", "compiled"):
            return "thread"
        if shm.shm_available():
            return "shm"
    return "process"


def _warm_worker() -> None:
    """Pool initializer: pre-import the simulation stack once per worker."""
    import repro.chaos.campaign  # noqa: F401  (pulls in core, simulator, obs)


def _run_chunk(payload: tuple) -> list:
    """Worker unit: apply ``fn`` to a contiguous chunk of tasks."""
    fn, chunk = payload
    return [fn(task) for task in chunk]


def _run_chunk_shm(payload: tuple) -> tuple:
    """Worker unit, shm tier: tasks arrive as arena descriptors, results
    leave through the result segment the parent named (and pre-registered,
    so an aborted run still sweeps it)."""
    fn, packed_chunk, result_name = payload
    cache = shm._AttachCache()
    try:
        chunk = [shm.unpack(task, cache) for task in packed_chunk]
    finally:
        cache.close()
    results = [fn(task) for task in chunk]
    return shm.pack_results(results, result_name)


_pool: ProcessPoolExecutor | None = None
_pool_workers = 0
_thread_pool: ThreadPoolExecutor | None = None
_thread_pool_workers = 0


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    """The warm process pool, rebuilt only when the worker count changes.

    A resize *drains* the old pool — ``shutdown(wait=True)`` without
    cancelling futures — so batches already dispatched onto it (the service
    submits straight to :func:`warm_pool` via ``loop.run_in_executor``)
    finish and deliver their results before the workers retire.  The
    hard-kill teardown (``cancel_futures=True``) is reserved for
    :func:`shutdown_pool`, i.e. process exit and interrupt unwinding.
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers != workers:
        old = _pool
        _pool = None
        old.shutdown(wait=True, cancel_futures=False)
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker)
        _pool_workers = workers
    return _pool


def _shared_thread_pool(workers: int) -> ThreadPoolExecutor:
    """The warm thread pool, mirroring :func:`_shared_pool`'s lifecycle
    (drain on resize, hard shutdown only via :func:`shutdown_pool`).
    Threads share the parent's :data:`repro.plancache.PLAN_CACHE`, so a
    thread-tier campaign also shares plan reuse across workers for free.
    """
    global _thread_pool, _thread_pool_workers
    if _thread_pool is not None and _thread_pool_workers != workers:
        old = _thread_pool
        _thread_pool = None
        old.shutdown(wait=True, cancel_futures=False)
    if _thread_pool is None:
        _thread_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-exec"
        )
        _thread_pool_workers = workers
    return _thread_pool


def warm_pool(workers: int) -> ProcessPoolExecutor:
    """Public handle on the shared warm pool (``repro.service`` dispatches
    job batches onto it directly via ``loop.run_in_executor``)."""
    return _shared_pool(workers)


def warm_thread_pool(workers: int) -> ThreadPoolExecutor:
    """Public handle on the shared warm *thread* pool (the service's
    ``executor=thread`` mode dispatches onto it)."""
    return _shared_thread_pool(workers)


@atexit.register
def shutdown_pool() -> None:
    """Tear both warm pools down and sweep any registered shm arenas.

    Safe to call when no pool exists; the next :func:`run_tasks` /
    :func:`warm_pool` call rebuilds one.  Registered at exit, and invoked
    by :func:`run_tasks` itself on interrupt-style exceptions so a Ctrl-C
    mid-campaign never leaves orphaned worker processes — or orphaned
    ``/dev/shm`` segments — behind.
    """
    global _pool, _thread_pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
    if _thread_pool is not None:
        _thread_pool.shutdown(wait=False, cancel_futures=True)
        _thread_pool = None
    shm.sweep_registered()


_last_run: dict = {"executor": "serial", "tasks": 0}


def last_run_stats() -> dict:
    """Accounting for the most recent :func:`run_tasks` call in this
    process: resolved executor, task/chunk counts, payload volume, bytes
    moved through arenas, and the estimated bytes pickled (what the
    executor benchmark reports as "pickled bytes saved")."""
    return dict(_last_run)


def _record_run(mode: str, jobs: int, tasks: list, results: list,
                chunks: int, arena_bytes: int) -> None:
    task_bytes = sum(shm.payload_nbytes(t) for t in tasks)
    result_bytes = sum(shm.payload_nbytes(r) for r in results if r is not None)
    payload = task_bytes + result_bytes
    if mode == "process":
        pickled = payload
    elif mode == "shm":
        pickled = max(0, payload - arena_bytes)
    else:  # serial / thread never serialize
        pickled = 0
    _last_run.clear()
    _last_run.update(
        executor=mode,
        jobs=jobs,
        tasks=len(tasks),
        chunks=chunks,
        payload_bytes=payload,
        task_payload_bytes=task_bytes,
        result_payload_bytes=result_bytes,
        arena_bytes=arena_bytes,
        pickled_bytes=pickled,
    )


def run_tasks(
    fn: Callable,
    tasks: Sequence | Iterable,
    jobs: int = 1,
    progress: Callable[[int, int, object], None] | None = None,
    executor: str | None = None,
    payload_hint: int | None = None,
) -> list:
    """Run ``fn(task)`` for every task, optionally in parallel.

    Args:
        fn: module-level (picklable) task function.
        tasks: the task descriptions; materialized to a list.
        jobs: worker count; ``<= 1`` runs serially in-process.  Every
            executor tier auto-degrades to serial when it cannot win
            (one CPU, or fewer than ``2 * jobs`` tasks).
        progress: optional ``progress(done, total, result)`` callback fired
            in the parent as each task completes (completion order; chunked
            submission delivers a chunk's results consecutively).
        executor: one of :data:`EXECUTORS`, ``"auto"``, or ``None``
            (consult ``REPRO_EXECUTOR``, then ``auto``) — see
            :func:`resolve_executor`.
        payload_hint: approximate per-task bulk-payload bytes, used by the
            ``auto`` policy; computed from the tasks themselves when
            omitted (results are invisible until run, so callers whose
            *output* dominates — e.g. campaigns sized by ``max_keys`` —
            should pass a hint).

    Returns:
        ``[fn(t) for t in tasks]`` — results in task order, whatever the
        completion order was, byte-for-byte identical across executors.
    """
    tasks = list(tasks)
    total = len(tasks)
    if payload_hint is None:
        payload_hint = max(
            (shm.payload_nbytes(t) for t in tasks), default=0
        )
    mode = resolve_executor(
        executor, jobs=jobs, total=total, payload_hint=payload_hint
    )
    if mode == "serial":
        results = []
        for idx, task in enumerate(tasks):
            result = fn(task)
            results.append(result)
            if progress is not None:
                progress(idx + 1, total, result)
        _record_run("serial", 1, tasks, results, chunks=0, arena_bytes=0)
        return results

    workers = min(jobs, total)
    # ~4 chunks per worker balances dispatch amortization against tail
    # latency (a straggler chunk idles at most ~1/4 of one worker's share).
    chunk_size = max(1, -(-total // (workers * 4)))
    chunks = [tasks[i : i + chunk_size] for i in range(0, total, chunk_size)]
    results: list = [None] * total
    done = 0
    arena_bytes = 0

    if mode == "thread":
        pool = _shared_thread_pool(workers)
    else:
        pool = _shared_pool(workers)

    # fut -> (base index, parent-owned task arena or None, result segment
    # name or None).  The arena names recorded here are exactly what the
    # error paths sweep.
    meta: dict = {}
    try:
        start = 0
        for chunk in chunks:
            task_arena = None
            result_name = None
            if mode == "shm":
                size = sum(shm.collect_leaf_bytes(t) for t in chunk)
                packed = chunk
                if size:
                    task_arena = shm.Arena.create("task", size)
                    packed = [shm.pack(t, task_arena) for t in chunk]
                    task_arena.close()
                    arena_bytes += task_arena.used
                result_name = shm.make_name("res")
                shm.register_name(result_name)
                fut = pool.submit(_run_chunk_shm, (fn, packed, result_name))
            else:
                fut = pool.submit(_run_chunk, (fn, chunk))
            meta[fut] = (start, task_arena, result_name)
            start += len(chunk)
        pending = set(meta)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                base, task_arena, result_name = meta[fut]
                payload = fut.result()  # re-raises worker exceptions here
                if mode == "shm":
                    chunk_results, moved = shm.unpack_results(payload)
                    arena_bytes += moved
                    shm.deregister_name(result_name)
                    if task_arena is not None:
                        task_arena.unlink()
                else:
                    chunk_results = payload
                # Only a fully consumed chunk leaves the sweep set: if
                # ``fut.result()`` raised above, this entry stays in
                # ``meta`` and the error path reclaims its arenas.
                meta.pop(fut)
                for offset, result in enumerate(chunk_results):
                    results[base + offset] = result
                    done += 1
                    if progress is not None:
                        progress(done, total, result)
    except Exception:
        # A task (or progress callback) failed: drop the queued chunks but
        # keep the warm pool — one bad task does not poison the workers.
        for fut in meta:
            fut.cancel()
        _sweep_run(meta)
        raise
    except BaseException:
        # Interrupt-style teardown (KeyboardInterrupt, SystemExit): cancel
        # everything queued, reclaim the arenas, and kill the pools so no
        # worker (or segment) outlives the run that was aborted.
        for fut in meta:
            fut.cancel()
        _sweep_run(meta)
        shutdown_pool()
        raise
    _record_run(mode, workers, tasks, results, len(chunks), arena_bytes)
    return results


def _sweep_run(meta: dict) -> None:
    """Reclaim every arena a failed/aborted run may have left behind.

    Chunks already *running* in pool workers cannot be cancelled; give
    them a bounded window to finish (so their result segments exist and
    can be unlinked rather than appearing after the sweep), then unlink
    every task arena and expected result segment that still exists.
    Wrapped against further interrupts: a second Ctrl-C skips the wait
    but never the sweep.
    """
    if not meta:
        return
    try:
        running = [f for f in meta if not f.done()]
        if running:
            wait(running, timeout=_TEARDOWN_WAIT_SECONDS)
    except BaseException:  # pragma: no cover - double interrupt
        pass
    names = []
    for _base, task_arena, result_name in meta.values():
        if task_arena is not None:
            names.append(task_arena.name)
        if result_name is not None:
            names.append(result_name)
    shm.sweep(names)
