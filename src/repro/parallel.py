"""Process-parallel task fan-out for experiment grids and chaos campaigns.

Simulated runs are embarrassingly parallel: every grid point / scenario is
a pure function of its own (deterministically derived) seed, so the only
orchestration needed is a process pool and order-stable result collection.
:func:`run_tasks` provides exactly that — tasks are submitted to a
:class:`concurrent.futures.ProcessPoolExecutor`, results are returned **in
task order** regardless of completion order, and ``jobs <= 1`` degrades to
a plain serial loop in the calling process (no pool, no pickling), which is
also the byte-for-byte reference the parallel path must reproduce.

Task functions must be module-level callables (picklable) and must not
share mutable state; per-task observability (e.g. a fresh
:class:`repro.obs.Tracer` per scenario) belongs *inside* the task so each
worker's tracer is isolated, with merging done by the parent.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

__all__ = ["resolve_jobs", "run_tasks"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all CPUs, else as given."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def run_tasks(
    fn: Callable,
    tasks: Sequence | Iterable,
    jobs: int = 1,
    progress: Callable[[int, int, object], None] | None = None,
) -> list:
    """Run ``fn(task)`` for every task, optionally in parallel processes.

    Args:
        fn: module-level (picklable) task function.
        tasks: the task descriptions; materialized to a list.
        jobs: worker processes; ``<= 1`` runs serially in-process.
        progress: optional ``progress(done, total, result)`` callback fired
            in the parent as each task completes (completion order).

    Returns:
        ``[fn(t) for t in tasks]`` — results in task order, whatever the
        completion order was.
    """
    tasks = list(tasks)
    total = len(tasks)
    if jobs <= 1 or total <= 1:
        results = []
        for idx, task in enumerate(tasks):
            result = fn(task)
            results.append(result)
            if progress is not None:
                progress(idx + 1, total, result)
        return results
    results = [None] * total
    done = 0
    with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
        pending = {pool.submit(fn, task): idx for idx, task in enumerate(tasks)}
        while pending:
            finished, _ = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                idx = pending.pop(fut)
                results[idx] = fut.result()  # re-raises worker exceptions here
                done += 1
                if progress is not None:
                    progress(done, total, results[idx])
    return results
