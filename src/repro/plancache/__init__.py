"""Memoizing planning layer keyed on hypercube-symmetry canonical forms.

See :mod:`repro.plancache.cache` for the cache itself and
:mod:`repro.plancache.canonical` for the ``Aut(Q_n)`` canonicalization.
"""

from repro.plancache.canonical import CanonicalTransform, canonical_form, orbit_signature
from repro.plancache.cache import (
    PLAN_CACHE,
    PlanCache,
    cached_ft_schedule,
    cached_plain_schedule,
    cached_route_table,
    plan_with_cache,
)

__all__ = [
    "PLAN_CACHE",
    "CanonicalTransform",
    "PlanCache",
    "cached_ft_schedule",
    "cached_plain_schedule",
    "cached_route_table",
    "canonical_form",
    "orbit_signature",
    "plan_with_cache",
]
