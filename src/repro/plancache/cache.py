"""The memoizing planning layer: canonical plan cache + route/nominal memos.

One process-wide :class:`PlanCache` (:data:`PLAN_CACHE`) serves every
planning-pipeline consumer:

* ``plan`` — :func:`repro.core.partition.find_min_cuts` + the Eq.-(1)
  per-sequence costs.  Entries come in two flavors: exact-keyed resolved
  plans (the lazy cold path — a fault set whose orbit signature has never
  been seen is planned directly, with no canonicalization at all) and
  orbit-keyed canonical plans replayed through the inverse transform once
  a signature recurs (see :func:`plan_with_cache`);
* ``canon`` — exact fault-tuple -> canonical form, so one real fault set is
  canonicalized at most once — and, since canonicalization is lazy, only
  when its orbit signature has been sighted more than once;
* ``sched`` — built :class:`~repro.core.schedule.SortSchedule` objects
  (frozen, safely shared) keyed on the resolved plan;
* ``routes`` — fault-aware BFS distance tables of the phase machine's hop
  metric, keyed ``(n, fault set, source)``.  Scenario supervisors build
  many short-lived machines over the same fault view; sharing the tables
  across machines is where most of the campaign's planning time goes;
* ``nominal`` — the chaos campaign's nominal run duration per scenario
  statics (the denominator every arrival fraction is scaled by);
* ``compiled`` — lowered :class:`~repro.core.schedule.CompiledSchedule`
  programs for the ``--kernels compiled`` tier, keyed like their source
  schedules plus the fault set only when the hop metric is
  fault-dependent (detour routing) — multi-tenant jobs sharing an orbit
  share the compiled program too.

Everything cached is either immutable (frozen dataclasses, tuples, floats)
or treated as read-only by every consumer (the distance dicts).  Replay is
exact: cache-on and cache-off produce byte-identical plans, schedules and
sorted outputs — property-tested in ``tests/plancache/``.

Disable with ``PLAN_CACHE.configure(enabled=False)``, the
``REPRO_PLAN_CACHE=off`` environment variable, or ``repro chaos
--plan-cache off``.  Invalidation is never needed: keys are pure values
(fault sets, dimensions, machine parameters) and the mapped functions are
deterministic; restarting the process empties the cache.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from threading import Lock

# NOTE: nothing from repro.core (or anything that reaches the simulator /
# sorting layers) may be imported at module scope here: the phase machine
# imports this module for its route-table cache, and repro.core reaches the
# phase machine through the sorting layer.  Core imports stay inside the
# functions that need them.
from repro.cube.subcube import AddressSplit
from repro.plancache.canonical import CanonicalTransform, canonical_form, orbit_signature

__all__ = [
    "PLAN_CACHE",
    "PlanCache",
    "cached_compiled_program",
    "cached_ft_schedule",
    "cached_plain_schedule",
    "cached_route_table",
    "plan_with_cache",
]

_SECTIONS = ("plan", "canon", "sched", "routes", "nominal", "compiled")

#: Sentinel distinguishing "no entry" from a cached ``None``.
_MISS = object()

#: Bound on the orbit-entry gossip log (oldest entries drop first; export
#: cursors stay valid via a dropped-count offset).
ORBIT_LOG_MAX = 4096


class PlanCache:
    """LRU-evicting memo store with per-section hit/miss/eviction counters.

    Args:
        capacity: maximum number of entries across all sections; the least
            recently used entry is evicted beyond it.
        enabled: start enabled/disabled (overridable per process via the
            ``REPRO_PLAN_CACHE`` environment variable: ``off``/``0`` or
            ``on``/``1``).
    """

    def __init__(self, capacity: int = 65_536, enabled: bool = True):
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        self._store: OrderedDict = OrderedDict()
        self._lock = Lock()
        self._sigs: OrderedDict = OrderedDict()
        self.hits = {s: 0 for s in _SECTIONS}
        self.misses = {s: 0 for s in _SECTIONS}
        self.evictions = 0
        self.canonicalizations = 0
        self._orbit_log: list[dict] = []
        self._orbit_dropped = 0

    # -- configuration -----------------------------------------------------

    def configure(self, enabled: bool | None = None, capacity: int | None = None) -> None:
        """Flip the cache on/off and/or resize it (shrinking evicts LRU)."""
        if enabled is not None:
            self.enabled = bool(enabled)
        if capacity is not None:
            if capacity < 1:
                raise ValueError(f"capacity must be >= 1, got {capacity}")
            self.capacity = int(capacity)
            with self._lock:
                while len(self._store) > self.capacity:
                    self._store.popitem(last=False)
                    self.evictions += 1

    def clear(self, reset_counters: bool = False) -> None:
        """Drop every entry (and optionally the counters)."""
        with self._lock:
            self._store.clear()
            self._sigs.clear()
            self._orbit_log.clear()
            self._orbit_dropped = 0
            if reset_counters:
                self.hits = {s: 0 for s in _SECTIONS}
                self.misses = {s: 0 for s in _SECTIONS}
                self.evictions = 0
                self.canonicalizations = 0

    # -- core memo ---------------------------------------------------------

    def memo(self, section: str, key: tuple, compute):
        """Return the cached value for ``(section, key)`` or compute+store it.

        With the cache disabled this is a transparent call of ``compute``
        (no counters, no storage) — the contract every consumer relies on
        for cache-on/cache-off equivalence.
        """
        if not self.enabled:
            return compute()
        full = (section, key)
        with self._lock:
            entry = self._store.get(full)
            if entry is not None or full in self._store:
                self._store.move_to_end(full)
                self.hits[section] += 1
                return entry
            self.misses[section] += 1
        value = compute()
        with self._lock:
            self._store[full] = value
            self._store.move_to_end(full)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1
        return value

    def get(self, section: str, key: tuple):
        """Counted lookup: the cached value, or :data:`_MISS` when absent.

        The split get/put pair exists for consumers whose miss path is not
        a single ``compute()`` — :func:`plan_with_cache` decides *how* to
        plan (directly, or through canonicalization) only after it knows
        the exact entry is missing.  Disabled caches always miss, uncounted,
        mirroring :meth:`memo`'s transparency contract.
        """
        if not self.enabled:
            return _MISS
        full = (section, key)
        with self._lock:
            if full in self._store:
                self._store.move_to_end(full)
                self.hits[section] += 1
                return self._store[full]
            self.misses[section] += 1
            return _MISS

    def put(self, section: str, key: tuple, value) -> None:
        """Store ``value`` (no counters; pairs with a prior :meth:`get`)."""
        if not self.enabled:
            return
        with self._lock:
            self._store[(section, key)] = value
            self._store.move_to_end((section, key))
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1

    def note_signature(self, sig) -> int:
        """Record one sighting of an orbit signature; return the new count.

        Drives lazy canonicalization: the first sighting of a signature
        plans directly on the real fault set (no canonicalization), later
        sightings — a second fault set that *may* share the orbit — switch
        to the canonical path so the whole orbit converges on one cached
        plan.  The sighting table is LRU-bounded by the cache capacity.
        """
        with self._lock:
            count = self._sigs.get(sig, 0) + 1
            self._sigs[sig] = count
            self._sigs.move_to_end(sig)
            while len(self._sigs) > self.capacity:
                self._sigs.popitem(last=False)
            return count

    # -- orbit-entry gossip ------------------------------------------------
    #
    # Orbit-keyed plan entries — ``("plan", ("orbit", n, canon)) ->
    # (mincut, Ψ, costs)`` — are the one cache section worth shipping
    # between processes: they are expensive (the DFS + per-sequence Eq.-(1)
    # costs, computed once per automorphism orbit), pure values (ints and
    # int tuples, hence JSON-clean), and universally replayable (every
    # shard replays them through its own inverse transform).  Each compute
    # appends a serializable record to an append-only log; exporters walk
    # it with a cursor, importers install entries idempotently *and* seed
    # the orbit-signature sighting count so the very first local sighting
    # of an imported orbit takes the canonical path and hits the entry
    # (instead of re-planning directly under lazy canonicalization).

    def record_orbit_entry(self, n, canon, mincut, psi, costs) -> None:
        """Log one freshly computed orbit entry for export (JSON-ready)."""
        entry = {
            "n": int(n),
            "canon": [int(a) for a in canon],
            "mincut": int(mincut),
            "psi": [[int(d) for d in seq] for seq in psi],
            "costs": [int(c) for c in costs],
        }
        with self._lock:
            self._orbit_log.append(entry)
            while len(self._orbit_log) > ORBIT_LOG_MAX:
                self._orbit_log.pop(0)
                self._orbit_dropped += 1

    def export_orbit_entries(self, cursor: int = 0) -> tuple[list[dict], int]:
        """Entries logged since ``cursor``; returns ``(entries, new_cursor)``."""
        with self._lock:
            idx = max(0, int(cursor) - self._orbit_dropped)
            entries = [dict(e) for e in self._orbit_log[idx:]]
            return entries, self._orbit_dropped + len(self._orbit_log)

    def import_orbit_entries(self, entries) -> int:
        """Install gossiped orbit entries; returns how many were new.

        Malformed entries are skipped (gossip peers are same-version but
        the wire is JSON — be strict anyway).  New entries re-enter this
        process's log so gossip is transitive: worker -> shard server ->
        router -> every other shard.
        """
        if not self.enabled:
            return 0
        imported = 0
        for raw in entries or ():
            try:
                n = int(raw["n"])
                canon = tuple(int(a) for a in raw["canon"])
                mincut = int(raw["mincut"])
                psi = tuple(tuple(int(d) for d in seq) for seq in raw["psi"])
                costs = tuple(int(c) for c in raw["costs"])
            except (KeyError, TypeError, ValueError):
                continue
            sig = orbit_signature(n, canon)
            key = ("plan", ("orbit", n, canon))
            with self._lock:
                if key in self._store:
                    continue
                self._store[key] = (mincut, psi, costs)
                self._store.move_to_end(key)
                while len(self._store) > self.capacity:
                    self._store.popitem(last=False)
                    self.evictions += 1
                self._sigs[sig] = max(self._sigs.get(sig, 0), 2)
                self._sigs.move_to_end(sig)
            self.record_orbit_entry(n, canon, mincut, psi, costs)
            imported += 1
        return imported

    # -- reporting ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        """JSON-ready snapshot of the counters and sizes."""
        return {
            "enabled": self.enabled,
            "entries": self.size,
            "capacity": self.capacity,
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "total_hits": sum(self.hits.values()),
            "total_misses": sum(self.misses.values()),
            "evictions": self.evictions,
            "canonicalizations": self.canonicalizations,
            "signatures": len(self._sigs),
            "orbit_log": len(self._orbit_log) + self._orbit_dropped,
        }

    def summary(self) -> str:
        """Human-readable stats table (``repro chaos --plan-cache stats``)."""
        s = self.stats()
        lines = [
            f"plan cache: {'enabled' if s['enabled'] else 'disabled'}, "
            f"{s['entries']}/{s['capacity']} entries, "
            f"{s['evictions']} evictions, "
            f"{s['canonicalizations']} canonicalizations"
        ]
        for section in _SECTIONS:
            h, m = s["hits"][section], s["misses"][section]
            rate = h / (h + m) if h + m else 0.0
            lines.append(f"  {section:<8} hits {h:>8}  misses {m:>8}  ({rate:.1%})")
        return "\n".join(lines)

    def export_metrics(self, registry, baseline: dict | None = None) -> None:
        """Fold the counters into a :class:`repro.obs` metrics registry.

        ``baseline`` (a previous :meth:`stats` snapshot) turns the export
        into a delta — what *this* run contributed — which is how the chaos
        campaign attributes cache traffic to individual scenarios.
        """
        s = self.stats()
        base = baseline or {}

        def delta(path: str, value):
            prev = base
            for part in path.split("."):
                prev = prev.get(part, {}) if isinstance(prev, dict) else 0
            return value - (prev if isinstance(prev, (int, float)) else 0)

        registry.inc("plancache.hits", delta("total_hits", s["total_hits"]))
        registry.inc("plancache.misses", delta("total_misses", s["total_misses"]))
        registry.inc("plancache.evictions", delta("evictions", s["evictions"]))
        registry.inc(
            "plancache.canonicalizations",
            delta("canonicalizations", s["canonicalizations"]),
        )
        for section in _SECTIONS:
            registry.inc(
                f"plancache.hits.{section}", delta(f"hits.{section}", s["hits"][section])
            )
            registry.inc(
                f"plancache.misses.{section}",
                delta(f"misses.{section}", s["misses"][section]),
            )
        registry.set_gauge("plancache.entries", s["entries"])


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_PLAN_CACHE", "on").strip().lower()
    return raw not in ("off", "0", "false", "no", "disabled")


#: The process-wide plan cache.  Worker processes each get their own
#: (module state is per process); the warm pool of
#: :mod:`repro.parallel` keeps them alive across tasks.
PLAN_CACHE = PlanCache(enabled=_env_enabled())


# -- canonical plan (partition + selection) --------------------------------


def _canonical(n: int, procs: tuple[int, ...]) -> tuple[tuple[int, ...], CanonicalTransform]:
    def compute():
        PLAN_CACHE.canonicalizations += 1
        return canonical_form(n, procs)

    return PLAN_CACHE.memo("canon", (n, procs), compute)


def plan_with_cache(n: int, faults):
    """Partition + Eq.-(1) selection, served from the canonical plan cache.

    Cache-off (or for the trivial ``r <= 1`` case) this is exactly
    ``find_min_cuts`` + ``select_cut_sequence``.  Cache-on, canonicalization
    is **lazy**: the first sighting of an orbit signature (a cheap
    ``Aut(Q_n)``-invariant pre-hash, :func:`~repro.plancache.canonical.
    orbit_signature`) plans directly on the real fault set and stores the
    resolved plan under an exact key — a cold, never-repeating workload
    therefore pays essentially nothing over cache-off.  Only when a
    signature recurs (a likely second orbit member, or a hash collision)
    does the set get canonicalized, after which the DFS and the
    per-sequence Eq.-(1) costs are computed once per automorphism orbit on
    the canonical fault set, then replayed:

    * Ψ maps sequence-by-sequence through the inverse dimension relabeling;
      re-sorting (within each sequence and across the set) restores the
      DFS's lexicographic order, so the replayed Ψ is *identical* to a cold
      run's (the map is a bijection between the two complete sets);
    * Eq.-(1) costs are automorphism-invariant (Hamming distances of local
      addresses are preserved; the objective is an unordered sum over cut
      dimensions), so each replayed sequence inherits its canonical twin's
      cost and the paper's first-minimum tie-break runs on the replayed
      (cold-order) list — same ``D_β``, same cost;
    * the dangling ``w`` and per-subcube dead addresses are recomputed
      directly on the real fault set (``O(r + 2**m)``, far below the DFS).
    """
    from repro.core.partition import PartitionResult, _fault_addresses, find_min_cuts
    from repro.core.selection import (
        SelectionResult,
        choose_dangling_w,
        extra_comm_cost,
        fault_of_subcube,
        select_cut_sequence,
    )

    procs = _fault_addresses(n, faults)
    if len(procs) <= 1 or not PLAN_CACHE.enabled:
        partition = find_min_cuts(n, procs)
        return partition, select_cut_sequence(partition)

    # Exact fast path: this precise fault set has been fully resolved
    # before (keys are namespaced by a leading tag so they can never
    # collide with orbit-keyed entries below).
    exact_key = ("exact", n, procs)
    resolved = PLAN_CACHE.get("plan", exact_key)
    if resolved is not _MISS:
        return resolved

    if PLAN_CACHE.note_signature(orbit_signature(n, procs)) <= 1:
        # Lazy canonicalization: first sighting of this orbit signature —
        # plan directly, exactly as cache-off would, and defer the
        # canonical-form search until the orbit proves it recurs.
        partition = find_min_cuts(n, procs)
        selection = select_cut_sequence(partition)
        PLAN_CACHE.put("plan", exact_key, (partition, selection))
        return partition, selection

    canon, tf = _canonical(n, procs)

    # get/put instead of memo: a fresh orbit entry must also be logged for
    # the gossip tier (record_orbit_entry), which memo's opaque compute
    # callback can't signal.
    orbit_key = ("orbit", n, canon)
    cached = PLAN_CACHE.get("plan", orbit_key)
    if cached is _MISS:
        canon_part = find_min_cuts(n, canon)
        costs = tuple(
            extra_comm_cost(n, dims, canon) for dims in canon_part.cutting_set
        )
        cached = (canon_part.mincut, canon_part.cutting_set, costs)
        PLAN_CACHE.put("plan", orbit_key, cached)
        PLAN_CACHE.record_orbit_entry(n, canon, *cached)
    mincut, canon_psi, costs = cached

    pairs = sorted(
        (tuple(sorted(tf.dim_to_real(d) for d in seq)), cost)
        for seq, cost in zip(canon_psi, costs)
    )
    psi = tuple(seq for seq, _ in pairs)
    partition = PartitionResult(n=n, faults=procs, mincut=mincut, cutting_set=psi)

    best_dims, best_cost = pairs[0]
    for dims, cost in pairs[1:]:
        if cost < best_cost:
            best_dims, best_cost = dims, cost

    split = AddressSplit(n, best_dims)
    dangling_w = choose_dangling_w(n, best_dims, procs)
    by_v = fault_of_subcube(n, best_dims, procs)
    dead = tuple(
        by_v[v] if v in by_v else split.combine(v, dangling_w)
        for v in range(1 << len(best_dims))
    )
    selection = SelectionResult(
        n=n,
        cut_dims=best_dims,
        cost=best_cost,
        faults=procs,
        dangling_w=dangling_w,
        dead_of_subcube=dead,
    )
    PLAN_CACHE.put("plan", exact_key, (partition, selection))
    return partition, selection


# -- schedules -------------------------------------------------------------


def cached_ft_schedule(selection: SelectionResult):
    """Memoized :func:`repro.core.schedule.build_ft_schedule`.

    The schedule depends only on ``(n, cut_dims, dead_of_subcube)``;
    :class:`~repro.core.schedule.SortSchedule` is frozen, so one instance is
    safely shared.  ``repro.core.schedule`` is imported lazily: it reaches
    :mod:`repro.simulator.phases` through the sorting layer, and the phase
    machine imports this module for its route table cache.
    """
    from repro.core.schedule import build_ft_schedule

    key = (selection.n, selection.cut_dims, selection.dead_of_subcube)
    return PLAN_CACHE.memo("sched", ("ft",) + key, lambda: build_ft_schedule(selection))


def cached_plain_schedule(n: int, faulty: int | None):
    """Memoized :func:`repro.core.schedule.build_plain_schedule`."""
    from repro.core.schedule import build_plain_schedule

    return PLAN_CACHE.memo(
        "sched", ("plain", n, faulty), lambda: build_plain_schedule(n, faulty)
    )


# -- fault-aware route tables ---------------------------------------------


def cached_compiled_program(kind: str, key: tuple, faults, build):
    """Memoized :func:`repro.core.schedule.lower_schedule` program.

    ``kind``/``key`` mirror the schedule-section key (``"ft"`` with
    ``(n, cut_dims, dead_of_subcube)``, ``"plain"`` with ``(n, faulty)``).
    The lowered program additionally bakes in per-pair hop counts, which
    depend on the fault set exactly when routes must detour (link faults,
    or total-model processor faults); only then does the fault set join the
    key — partial-fault runs over the same plan share one program.
    ``build`` computes the lowering on a miss.
    """
    from repro.faults.model import FaultKind

    detours = bool(faults.links) or (faults.r > 0 and faults.kind is FaultKind.TOTAL)
    full_key = (kind,) + tuple(key) + (faults if detours else None,)
    return PLAN_CACHE.memo("compiled", full_key, build)


def cached_route_table(faults: FaultSet, src: int, compute):
    """Shared BFS distance table from ``src`` under ``faults``.

    ``compute`` runs the machine's own BFS on a miss.  The returned table
    (an address-indexed ``array('h')``, ``-1`` = unreachable) is shared
    across machines and MUST be treated as read-only.
    """
    return PLAN_CACHE.memo("routes", (faults.n, faults, src), compute)
