"""Canonical forms of fault sets under hypercube automorphisms.

``Aut(Q_n)`` is the semidirect product of the ``2**n`` XOR translations and
the ``n!`` dimension permutations.  The partition algorithm (paper §2.2),
the Eq.-(1) sequence selection and the comparator schedules are all
*equivariant* under this group: solving the planning problem for a fault
set ``F`` and mapping the answer through an automorphism gives exactly the
answer for the mapped fault set.  Canonicalizing a fault set therefore lets
one cached plan serve every isomorphic placement — the same "amortize the
recovery math" move as ABFT checkpoint reuse.

The canonical representative is computed as:

1. **translation** — XOR the whole set by each of its own members in turn
   (so the canonical set always contains address 0, the paper's own Step-1
   re-indexing convention);
2. **dimension permutation** — for each translated image, a canonical
   column order of the ``r x n`` fault/bit matrix, found by Weisfeiler-
   Leman-style color refinement of the columns (seeded by column popcount,
   refined against the row profile) followed by exhaustive enumeration of
   the orderings *within* tied color classes (identical columns are
   interchangeable and enumerated once);
3. the lexicographically smallest sorted address tuple over all candidates
   wins, together with the transform that produced it.

Because every step only consults permutation-invariant data (multisets of
colors) and ties are broken by exhausting the whole tied class, the result
is invariant: ``canonical_form(sigma(F)) == canonical_form(F)`` for every
automorphism ``sigma``.  A safety cap bounds the within-class enumeration;
if it is ever exceeded (astronomically unlikely for the paper's ``r <= n-1``
regime) the form degrades to a *deterministic but non-canonical* choice,
which can only cost cache hits, never correctness — every transform
returned is a genuine automorphism, and plan replay holds for any of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.cube.address import permute_bits

__all__ = ["CanonicalTransform", "canonical_form", "orbit_signature"]

#: Upper bound on candidate column orderings enumerated per translation.
#: Tied color classes beyond this fall back to a deterministic order.
MAX_ORDERINGS = 20_160  # 8!/2


@dataclass(frozen=True)
class CanonicalTransform:
    """One automorphism of ``Q_n``: ``sigma(u) = permute_bits(u ^ translate)``.

    ``perm[d]`` is the image dimension of source dimension ``d``.  The
    forward direction maps *real* addresses to *canonical* addresses; the
    inverse replays cached (canonical-space) plans in real space.
    """

    n: int
    translate: int
    perm: tuple[int, ...]

    def apply(self, addr: int) -> int:
        """Real address -> canonical address."""
        return permute_bits(addr ^ self.translate, self.perm)

    def invert(self, addr: int) -> int:
        """Canonical address -> real address."""
        inv = [0] * self.n
        for d, target in enumerate(self.perm):
            inv[target] = d
        return permute_bits(addr, inv) ^ self.translate

    def dim_to_real(self, d: int) -> int:
        """Canonical dimension -> real dimension (inverse of ``perm``)."""
        return self.perm.index(d)

    @property
    def is_identity(self) -> bool:
        return self.translate == 0 and all(p == d for d, p in enumerate(self.perm))


def _column_colors(n: int, addrs: tuple[int, ...]) -> list:
    """Stable permutation-invariant color per dimension (WL refinement).

    Columns of the ``r x n`` bit matrix start colored by popcount and are
    refined against the rows' color profiles until a fixed point; rows are
    symmetrically refined against the columns.  All colors are built from
    sorted multisets only, so relabeling dimensions permutes the color
    vector without changing any color's value.
    """
    col_color = {d: (sum((a >> d) & 1 for a in addrs),) for d in range(n)}
    row_color = {a: (a.bit_count(),) for a in addrs}  # popcount is invariant
    for _ in range(n + len(addrs)):
        new_col = {
            d: (
                col_color[d],
                tuple(sorted(((a >> d) & 1, row_color[a]) for a in addrs)),
            )
            for d in range(n)
        }
        new_row = {
            a: (
                row_color[a],
                tuple(sorted(((a >> d) & 1, col_color[d]) for d in range(n))),
            )
            for a in addrs
        }
        stable = len(set(new_col.values())) == len(set(col_color.values())) and len(
            set(new_row.values())
        ) == len(set(row_color.values()))
        col_color, row_color = new_col, new_row
        if stable:
            break
    return [col_color[d] for d in range(n)]


def _orderings(n: int, addrs: tuple[int, ...]):
    """Candidate source-dimension orders, grouped by canonical column color.

    Yields tuples ``order`` (source dims listed in target order: target
    dimension ``k`` is ``order[k]``).  Dimensions in distinct color classes
    keep the class order (classes sorted by color, an invariant); within a
    class all orders are tried, except that dimensions with *identical
    columns* (equal bit vectors over the fault set) are interchangeable and
    only one representative order is enumerated.
    """
    colors = _column_colors(n, addrs)
    classes: dict = {}
    for d in range(n):
        classes.setdefault(repr(colors[d]), []).append(d)
    ordered_classes = [dims for _, dims in sorted(classes.items())]

    def content(d: int) -> tuple[int, ...]:
        return tuple((a >> d) & 1 for a in addrs)

    per_class: list[list[tuple[int, ...]]] = []
    total = 1
    for dims in ordered_classes:
        if len(dims) == 1:
            per_class.append([tuple(dims)])
            continue
        seen: set = set()
        options: list[tuple[int, ...]] = []
        for p in permutations(dims):
            key = tuple(content(d) for d in p)
            if key in seen:
                continue
            seen.add(key)
            options.append(p)
            if total * len(options) > MAX_ORDERINGS:
                options = [tuple(sorted(dims))]  # deterministic fallback
                break
        per_class.append(options)
        total *= len(options)

    def product(idx: int, prefix: tuple[int, ...]):
        if idx == len(per_class):
            yield prefix
            return
        for opt in per_class[idx]:
            yield from product(idx + 1, prefix + opt)

    yield from product(0, ())


def orbit_signature(n: int, processors: tuple[int, ...] | list[int]) -> tuple:
    """Cheap ``Aut(Q_n)``-invariant pre-hash of a fault set.

    Automorphisms preserve Hamming distance, so the sorted multiset of each
    fault's distance profile to the other faults is constant on an orbit.
    The signature is *not* a complete invariant — distinct orbits may
    collide — but collisions are harmless for the lazy-canonicalization
    protocol (they only trigger a canonicalization one sighting early);
    what matters is that two fault sets in the same orbit always share a
    signature, which the distance argument guarantees.  Cost is ``O(r^2)``
    popcounts versus the full canonicalization's translation x permutation
    search.
    """
    procs = tuple(sorted(set(processors)))
    profiles = sorted(
        tuple(sorted((a ^ b).bit_count() for b in procs if b != a))
        for a in procs
    )
    return (n, len(procs), tuple(profiles))


def canonical_form(
    n: int, processors: tuple[int, ...] | list[int]
) -> tuple[tuple[int, ...], CanonicalTransform]:
    """Canonical representative of a fault set and the transform reaching it.

    Returns ``(canonical, tf)`` with ``canonical = sorted(map(tf.apply,
    processors))``; ``canonical`` is identical for every fault set in the
    same ``Aut(Q_n)`` orbit (up to the :data:`MAX_ORDERINGS` cap, see the
    module docstring), and always contains address 0 when non-empty.
    """
    procs = tuple(sorted(set(processors)))
    identity = tuple(range(n))
    if not procs:
        return (), CanonicalTransform(n, 0, identity)

    best: tuple[tuple[int, ...], int, tuple[int, ...]] | None = None
    for t in procs:
        translated = tuple(sorted(p ^ t for p in procs))
        for order in _orderings(n, translated):
            # order[k] is the source dim landing at target dim k, i.e.
            # perm[order[k]] = k.
            perm = [0] * n
            for k, d in enumerate(order):
                perm[d] = k
            image = tuple(sorted(permute_bits(p, perm) for p in translated))
            if best is None or image < best[0]:
                best = (image, t, tuple(perm))
    assert best is not None
    return best[0], CanonicalTransform(n, best[1], best[2])
