"""repro.service: sorting-as-a-service job server (S28).

The package turns the library's one-shot entry points — fault-tolerant
sorts, partition planning, chaos scenarios — into a long-lived multi-tenant
job server sharing one warm worker pool and one process-wide plan cache
across every client:

* :mod:`repro.service.protocol` — the JSONL wire protocol and
  :class:`JobSpec` validation (the admission boundary for untrusted input).
* :mod:`repro.service.queue` — bounded admission and round-robin
  per-tenant fair queueing with compatible-job batching.
* :mod:`repro.service.jobs` — picklable job runners with per-job
  plan-cache delta attribution.
* :mod:`repro.service.server` — the asyncio server: dispatchers, metrics,
  backpressure, graceful drain (SIGTERM-safe).
* :mod:`repro.service.client` — asyncio client used by ``repro submit``,
  the tests, and the load benchmark.

CLI: ``repro serve`` / ``repro submit``.  Protocol and operational
semantics: docs/SERVICE.md.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import run_job, run_job_batch
from repro.service.protocol import (
    JOB_KINDS,
    JobSpec,
    ProtocolError,
    batch_signature,
    decode_line,
    encode,
)
from repro.service.queue import FairQueue, QueueFull, QueuedJob
from repro.service.server import SortingService, serve

__all__ = [
    "JOB_KINDS",
    "FairQueue",
    "JobSpec",
    "ProtocolError",
    "QueueFull",
    "QueuedJob",
    "ServiceClient",
    "SortingService",
    "batch_signature",
    "decode_line",
    "encode",
    "run_job",
    "run_job_batch",
    "serve",
]
