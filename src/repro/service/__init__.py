"""repro.service: sorting-as-a-service job server (S28, sharded in S30).

The package turns the library's one-shot entry points — fault-tolerant
sorts, partition planning, chaos scenarios — into a long-lived multi-tenant
job server sharing one warm worker pool and one process-wide plan cache
across every client, and scales it horizontally as N such servers behind
a consistent-hash tenant router:

* :mod:`repro.service.protocol` — the JSONL wire protocol and
  :class:`JobSpec` validation (the admission boundary for untrusted input).
* :mod:`repro.service.queue` — bounded admission, round-robin per-tenant
  fair queueing with compatible-job batching, and the per-tenant
  :class:`TokenBucket` rate limiter.
* :mod:`repro.service.jobs` — picklable job runners with per-job
  plan-cache delta attribution and orbit-entry gossip piggybacking.
* :mod:`repro.service.streams` — result streaming: frame planning,
  per-frame count/sum ABFT checksums, bounded-window flow control.
* :mod:`repro.service.server` — the asyncio server: dispatchers, metrics,
  backpressure, arena-backed result streams, graceful drain (SIGTERM-safe).
* :mod:`repro.service.client` — asyncio client used by ``repro submit``,
  the tests, and the load benchmark (jittered backoff, stream consumption).
* :mod:`repro.service.shard` — shard subprocess lifecycle (spawn, ready,
  drain, crash reclamation of shm segments by name prefix).
* :mod:`repro.service.router` — the ``--shards N`` front end: consistent-
  hash tenant placement, zero-copy stream relay, shard failover, orbit
  gossip between shard-local plan caches.

CLI: ``repro serve [--shards N]`` / ``repro submit [--stream]``.  Protocol
and operational semantics: docs/SERVICE.md.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import run_job, run_job_batch
from repro.service.protocol import (
    JOB_KINDS,
    JobSpec,
    ProtocolError,
    batch_signature,
    decode_line,
    encode,
)
from repro.service.queue import FairQueue, QueueFull, QueuedJob, TokenBucket
from repro.service.router import HashRing, ShardRouter, serve_sharded
from repro.service.server import SortingService, serve
from repro.service.shard import ShardInfo, ShardManager
from repro.service.streams import (
    StreamChecksumError,
    StreamError,
    frame_checksum,
    plan_frames,
    verify_frame,
)

__all__ = [
    "JOB_KINDS",
    "FairQueue",
    "HashRing",
    "JobSpec",
    "ProtocolError",
    "QueueFull",
    "QueuedJob",
    "ServiceClient",
    "ShardInfo",
    "ShardManager",
    "ShardRouter",
    "SortingService",
    "StreamChecksumError",
    "StreamError",
    "TokenBucket",
    "batch_signature",
    "decode_line",
    "encode",
    "frame_checksum",
    "plan_frames",
    "run_job",
    "run_job_batch",
    "serve",
    "serve_sharded",
    "verify_frame",
]
