"""Asyncio client for the sorting service (used by the CLI, tests, bench).

A :class:`ServiceClient` owns one connection and one background reader
task.  The reader demultiplexes the two message streams the server
produces on a single socket: request *replies* (matched to their waiting
coroutine by the client-chosen ``id``) and pushed job *results* (matched
by server-assigned ``job_id``, stashed until someone awaits them — a
result may legally arrive before the submitting coroutine has even seen
its ack).

The submit helper exercises the protocol the way a well-behaved tenant
should: a ``queue_full`` rejection is not an error but a scheduling hint,
so ``submit(..., retry=True)`` sleeps for the server's ``retry_after_ms``
and resubmits, which is exactly the closed loop the load benchmark runs
at full queue depth.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.service.protocol import JobSpec, ProtocolError, decode_line, encode

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a :class:`~repro.service.server.SortingService`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._seq = itertools.count()
        self._pending: dict[str, asyncio.Future] = {}  # request id -> reply
        self._waiters: dict[str, asyncio.Future] = {}  # job_id -> result
        self._results: dict[str, dict] = {}  # results nobody awaits yet
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="repro-client-reader")

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # -- demultiplexing ------------------------------------------------------

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    msg = decode_line(line)
                except ProtocolError:  # pragma: no cover - server is trusted
                    continue
                self._route(msg)
        except (ConnectionError, OSError) as exc:  # pragma: no cover
            error = exc
        finally:
            self._closed = True
            for fut in (*self._pending.values(), *self._waiters.values()):
                if not fut.done():
                    fut.set_exception(error)
            self._pending.clear()
            self._waiters.clear()

    def _route(self, msg: dict) -> None:
        if msg.get("op") == "result":
            job_id = msg.get("job_id")
            waiter = self._waiters.pop(job_id, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(msg)
            else:
                self._results[job_id] = msg
            return
        fut = self._pending.pop(msg.get("id"), None)
        if fut is not None and not fut.done():
            fut.set_result(msg)

    async def _request(self, message: dict) -> dict:
        if self._closed:
            raise ConnectionError("client is closed")
        rid = f"c{next(self._seq)}"
        message["id"] = rid
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        self._writer.write(encode(message))
        await self._writer.drain()
        return await fut

    # -- protocol ops --------------------------------------------------------

    async def submit(
        self,
        job: dict | JobSpec,
        tenant: str = "default",
        retry: bool = False,
        max_tries: int = 1000,
    ) -> dict:
        """Submit one job; returns the ack (``ok``/``job_id`` or rejection).

        With ``retry=True``, ``queue_full`` rejections are absorbed by
        sleeping for the server's ``retry_after_ms`` hint and resubmitting
        (up to ``max_tries``); any other rejection is returned as-is.
        """
        payload = job.to_dict() if isinstance(job, JobSpec) else dict(job)
        for _ in range(max(1, max_tries)):
            ack = await self._request(
                {"op": "submit", "tenant": tenant, "job": payload})
            if ack.get("ok") or not retry or ack.get("error") != "queue_full":
                return ack
            await asyncio.sleep(max(1, ack.get("retry_after_ms", 100)) / 1e3)
        return ack

    async def result(self, job_id: str) -> dict:
        """Await the pushed result for an accepted ``job_id``."""
        msg = self._results.pop(job_id, None)
        if msg is not None:
            return msg
        if self._closed:
            raise ConnectionError("client is closed")
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[job_id] = fut
        return await fut

    async def submit_and_wait(self, job: dict | JobSpec, tenant: str = "default",
                              retry: bool = True) -> dict:
        """Convenience: submit (with retry) and await the result.

        Raises:
            RuntimeError: when the submit is rejected (e.g. draining).
        """
        ack = await self.submit(job, tenant=tenant, retry=retry)
        if not ack.get("ok"):
            raise RuntimeError(f"submit rejected: {ack.get('error')}"
                               f" ({ack.get('detail', '')})")
        return await self.result(ack["job_id"])

    async def ping(self) -> dict:
        return await self._request({"op": "ping"})

    async def stats(self) -> dict:
        reply = await self._request({"op": "stats"})
        return reply.get("stats", {})

    async def drain(self) -> dict:
        """Ask the server to drain; returns the drained summary."""
        return await self._request({"op": "drain"})

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
