"""Asyncio client for the sorting service (used by the CLI, tests, bench).

A :class:`ServiceClient` owns one connection and one background reader
task.  The reader demultiplexes the message streams the server produces
on a single socket: request *replies* (matched to their waiting coroutine
by the client-chosen ``id``), pushed job *results* (matched by
server-assigned ``job_id``, stashed until someone awaits them — a result
may legally arrive before the submitting coroutine has even seen its
ack), and streamed-result frames (``result_header`` / ``result_frame`` /
``result_end``), which land in a per-job frame queue consumed by
:meth:`iter_result`.  Binary frames read their payload bytes straight off
the socket inside the reader loop — the only place the byte position is
known.

The submit helper exercises the protocol the way a well-behaved tenant
should: ``queue_full`` and ``rate_limited`` rejections are not errors but
scheduling hints, so ``submit(..., retry=True)`` sleeps for the server's
``retry_after_ms`` hint and resubmits.  The sleep is *jittered* — a
uniform draw in [0.5, 1.5) x the hint, from a seedable per-client RNG —
so a thundering herd of clients rejected together does not resubmit
together, re-collide, and re-reject in lockstep (the classic retry
synchronization failure); seeding makes backoff sequences reproducible in
tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import itertools
import random

import numpy as np

from repro.service.protocol import JobSpec, ProtocolError, decode_line, encode
from repro.service.streams import StreamError, verify_frame

__all__ = ["ServiceClient"]

#: Rejection kinds that are backpressure (retryable by policy), not errors.
_RETRYABLE = ("queue_full", "rate_limited")


def _retry_delay_s(retry_after_ms, rng: random.Random) -> float:
    """Jittered backoff: uniform in [0.5, 1.5) x the server's hint."""
    try:
        hint = max(1.0, float(retry_after_ms))
    except (TypeError, ValueError):
        hint = 100.0
    return hint * (0.5 + rng.random()) / 1e3


class _StreamState:
    """Client-side state of one incoming result stream."""

    __slots__ = ("queue", "header")

    def __init__(self):
        self.queue: asyncio.Queue = asyncio.Queue()
        self.header: dict | None = None


class ServiceClient:
    """One connection to a :class:`~repro.service.server.SortingService`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                 jitter_seed: int | None = None):
        self._reader = reader
        self._writer = writer
        self._rng = random.Random(jitter_seed)
        self._seq = itertools.count()
        self._pending: dict[str, asyncio.Future] = {}  # request id -> reply
        self._waiters: dict[str, asyncio.Future] = {}  # job_id -> result
        self._results: dict[str, dict] = {}  # results nobody awaits yet
        self._streams: dict[str, _StreamState] = {}  # job_id -> frame queue
        self._stream_summaries: dict[str, dict] = {}  # job_id -> result_end
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="repro-client-reader")

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0,
                      limit: int = 1 << 26,
                      jitter_seed: int | None = None) -> "ServiceClient":
        """Connect to a server (or router).

        ``limit`` raises asyncio's per-line buffer (default 64 KiB) far
        enough for the non-streamed baseline's giant inline-base64 result
        lines; streamed results never need it.
        """
        reader, writer = await asyncio.open_connection(host, port, limit=limit)
        return cls(reader, writer, jitter_seed=jitter_seed)

    # -- demultiplexing ------------------------------------------------------

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    msg = decode_line(line)
                except ProtocolError:  # pragma: no cover - server is trusted
                    continue
                if (msg.get("op") == "result_frame"
                        and isinstance(msg.get("nbytes"), int)):
                    # Binary transport: the frame payload is the next
                    # nbytes on the wire, and only this loop may read it.
                    msg["_data"] = await self._reader.readexactly(
                        msg["nbytes"])
                self._route(msg)
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            error = exc
        finally:
            self._closed = True
            for fut in (*self._pending.values(), *self._waiters.values()):
                if not fut.done():
                    fut.set_exception(error)
            self._pending.clear()
            self._waiters.clear()
            for state in self._streams.values():
                state.queue.put_nowait(("error", error))

    def _route(self, msg: dict) -> None:
        op = msg.get("op")
        job_id = msg.get("job_id")
        if op == "result_header":
            self._stream_state(job_id).queue.put_nowait(("header", msg))
            return
        if op == "result_frame":
            self._stream_state(job_id).queue.put_nowait(("frame", msg))
            return
        if op == "result_end":
            self._stream_state(job_id).queue.put_nowait(("end", msg))
            return
        if op == "result":
            state = self._streams.get(job_id)
            if state is not None:
                # A streamed job that failed before its header (executor
                # error, shard lost) answers with a plain result; the
                # stream consumer surfaces it as the terminal message.
                state.queue.put_nowait(("end", msg))
                return
            waiter = self._waiters.pop(job_id, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(msg)
            else:
                self._results[job_id] = msg
            return
        fut = self._pending.pop(msg.get("id"), None)
        if fut is not None and not fut.done():
            fut.set_result(msg)

    def _stream_state(self, job_id: str) -> _StreamState:
        state = self._streams.get(job_id)
        if state is None:
            state = self._streams[job_id] = _StreamState()
        return state

    async def _request(self, message: dict) -> dict:
        if self._closed:
            raise ConnectionError("client is closed")
        rid = f"c{next(self._seq)}"
        message["id"] = rid
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        self._writer.write(encode(message))
        await self._writer.drain()
        return await fut

    async def _send(self, message: dict) -> None:
        """Fire-and-forget (acks and stream_done take no reply)."""
        if self._closed:
            return
        self._writer.write(encode(message))
        await self._writer.drain()

    # -- protocol ops --------------------------------------------------------

    async def submit(
        self,
        job: dict | JobSpec,
        tenant: str = "default",
        retry: bool = False,
        max_tries: int = 1000,
        transport: str | None = None,
    ) -> dict:
        """Submit one job; returns the ack (``ok``/``job_id`` or rejection).

        With ``retry=True``, ``queue_full`` and ``rate_limited``
        rejections are absorbed by sleeping for a jittered multiple of the
        server's ``retry_after_ms`` hint and resubmitting (up to
        ``max_tries``); any other rejection is returned as-is.
        ``transport`` picks the streamed-result frame transport
        (``"binary"``/``"shm"``) for jobs submitted with ``stream``.
        """
        payload = job.to_dict() if isinstance(job, JobSpec) else dict(job)
        message = {"op": "submit", "tenant": tenant, "job": payload}
        if transport is not None:
            message["transport"] = transport
        for _ in range(max(1, max_tries)):
            ack = await self._request(dict(message))
            if ack.get("ok") or not retry or ack.get("error") not in _RETRYABLE:
                if ack.get("ok") and payload.get("stream"):
                    # Pre-register the stream so frames racing ahead of
                    # the awaiting consumer are queued, never dropped.
                    state = self._stream_state(ack["job_id"])
                    # A pre-stream failure's plain result can outrun this
                    # registration; reroute it into the stream queue.
                    early = self._results.pop(ack["job_id"], None)
                    if early is not None:
                        state.queue.put_nowait(("end", early))
                return ack
            await asyncio.sleep(
                _retry_delay_s(ack.get("retry_after_ms", 100), self._rng))
        return ack

    async def result(self, job_id: str) -> dict:
        """Await the pushed result for an accepted (non-streamed) ``job_id``."""
        msg = self._results.pop(job_id, None)
        if msg is not None:
            return msg
        if self._closed:
            raise ConnectionError("client is closed")
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[job_id] = fut
        return await fut

    async def submit_and_wait(self, job: dict | JobSpec, tenant: str = "default",
                              retry: bool = True) -> dict:
        """Convenience: submit (with retry) and await the result.

        Raises:
            RuntimeError: when the submit is rejected (e.g. draining).
        """
        ack = await self.submit(job, tenant=tenant, retry=retry)
        if not ack.get("ok"):
            raise RuntimeError(f"submit rejected: {ack.get('error')}"
                               f" ({ack.get('detail', '')})")
        return await self.result(ack["job_id"])

    # -- streamed results ----------------------------------------------------

    async def iter_result(self, job_id: str):
        """Async-iterate the frames of a streamed result as ndarray chunks.

        Each yielded chunk is materialized (copied out of the socket or
        the shm arena), checksum-verified, and *then* acked — so the
        server's in-flight window meters actual consumption, and at most
        ``window`` frames of data exist on this side at once.  After the
        last frame the ``result_end`` summary is available from
        :meth:`stream_summary`.

        Raises:
            StreamError: the stream ended abnormally (``retryable`` set
                for shard loss / stall); StreamChecksumError on a frame
                whose ABFT count/sum does not match its payload.
        """
        state = self._stream_state(job_id)
        arenas: dict[str, object] = {}
        try:
            while True:
                kind, msg = await state.queue.get()
                if kind == "error":
                    raise msg if isinstance(msg, BaseException) \
                        else ConnectionError(str(msg))
                if kind == "header":
                    state.header = msg
                    continue
                if kind == "frame":
                    chunk = self._materialize(msg, arenas)
                    verify_frame(msg, chunk)
                    await self._send({"op": "frame_ack", "job_id": job_id,
                                      "seq": msg["seq"]})
                    if chunk.size:
                        yield chunk
                    continue
                # kind == "end": result_end trailer, or a plain result
                # (pre-stream failure / shard lost) acting as one.
                self._stream_summaries[job_id] = msg
                if msg.get("op") == "result_end" and msg.get("ok"):
                    await self._send({"op": "stream_done", "job_id": job_id})
                if not msg.get("ok"):
                    raise StreamError(msg)
                return
        finally:
            for arena in arenas.values():
                arena.release()
            self._streams.pop(job_id, None)

    def _materialize(self, msg: dict, arenas: dict):
        """Copy one frame's payload into a fresh ndarray."""
        if "_data" in msg:
            dtype = np.dtype((self.stream_header(msg["job_id"]) or {})
                             .get("dtype", "<f8"))
            return np.frombuffer(msg.pop("_data"), dtype=dtype).copy()
        ref_dict = msg.get("shm")
        if not isinstance(ref_dict, dict):
            raise StreamError({"error": "malformed_frame", "seq": msg.get("seq")})
        from repro import shm

        ref = shm.ShmRef(ref_dict["segment"], ref_dict["offset"],
                         ref_dict["nbytes"], ref_dict.get("kind", "ndarray"),
                         tuple(ref_dict.get("shape", ())),
                         ref_dict.get("dtype", "<f8"))
        arena = arenas.get(ref.segment)
        if arena is None:
            try:
                arena = arenas[ref.segment] = shm.Arena.attach(ref.segment)
            except (FileNotFoundError, OSError):
                # The producer (or its sweeper) unlinked the segment under
                # us — an aborted stream or a killed shard; resubmittable.
                raise StreamError({"error": "segment_gone",
                                   "seq": msg.get("seq"),
                                   "retryable": True}) from None
        return arena.read(ref)

    def stream_header(self, job_id: str) -> dict | None:
        """The ``result_header`` of an in-progress stream (``None`` early)."""
        state = self._streams.get(job_id)
        return state.header if state is not None else None

    def stream_summary(self, job_id: str) -> dict | None:
        """The ``result_end`` trailer of a consumed stream."""
        return self._stream_summaries.get(job_id)

    async def collect_stream(self, job_id: str) -> np.ndarray:
        """Consume a whole stream into one array (tests/CLI convenience).

        Defeats the memory benefit by construction — use
        :meth:`iter_result` when the point is bounded RSS.
        """
        chunks = [chunk async for chunk in self.iter_result(job_id)]
        if not chunks:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(chunks)

    async def ping(self) -> dict:
        return await self._request({"op": "ping"})

    async def stats(self) -> dict:
        reply = await self._request({"op": "stats"})
        return reply.get("stats", {})

    async def drain(self) -> dict:
        """Ask the server to drain; returns the drained summary."""
        return await self._request({"op": "drain"})

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        for state in self._streams.values():
            state.queue.put_nowait(
                ("error", ConnectionError("client is closed")))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
