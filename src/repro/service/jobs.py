"""Job execution: module-level (picklable) runners for every job kind.

These functions are the unit the server ships to an executor — the inline
single-thread executor in the default configuration, or a worker process
of the shared warm pool (:func:`repro.parallel.warm_pool`) when the server
runs with ``jobs > 1``.  Everything they need travels inside the
:class:`~repro.service.protocol.JobSpec`; everything they produce comes
back as a JSON-ready dict, so the same code path serves both executors.

Each job measures its own plan-cache traffic as a before/after delta of
:data:`repro.plancache.PLAN_CACHE` stats — computed *where the job ran*,
so the attribution is exact in the inline executor (one job at a time) and
exact per worker process in the pool (each worker owns its process-global
cache, kept warm across jobs by the persistent pool).  The server folds
these deltas into per-tenant ``service.tenant.<t>.plancache.*`` counters:
the cross-tenant sharing the cache exists for becomes directly observable
as tenant B hitting on plans tenant A paid for.

The batch runners also carry the orbit-entry gossip tier's traffic: any
canonical plan a worker computes during the batch is drained from its
cache log and attached to the batch result (``orbit_entries`` on the
first payload), and entries gossiped *to* the server ride the next
dispatch down so pool workers warm lazily.  Both directions are
idempotent imports, so the piggyback needs no worker addressing.

A failing job is a *result*, not a server error: the runner catches the
exception and reports ``ok: false`` with the error repr, exactly like the
chaos campaign's outcome convention.
"""

from __future__ import annotations

import base64
import time

import numpy as np

from repro.plancache import PLAN_CACHE
from repro.service.protocol import JobSpec

__all__ = ["run_job", "run_job_batch", "run_job_batch_shm"]

#: Export cursor into this process's PLAN_CACHE orbit log — everything
#: before it has already been shipped to whoever dispatches to us.
_orbit_cursor = 0


def _drain_orbit_entries() -> list[dict]:
    global _orbit_cursor
    entries, _orbit_cursor = PLAN_CACHE.export_orbit_entries(_orbit_cursor)
    return entries


def _run_sort(spec: JobSpec) -> dict:
    from repro.core.ftsort import fault_tolerant_sort
    from repro.core.spmd_sort import spmd_fault_tolerant_sort

    rng = np.random.default_rng(spec.seed)
    keys = rng.integers(0, 10**6, size=spec.keys).astype(float)
    if spec.backend == "spmd":
        res = spmd_fault_tolerant_sort(keys, spec.n, list(spec.faults),
                                       kernels=spec.kernels)
        elapsed = res.finish_time
    else:
        res = fault_tolerant_sort(keys, spec.n, list(spec.faults),
                                  kernels=spec.kernels)
        elapsed = res.elapsed
    expected = np.sort(keys)
    out = {
        "kind": "sort",
        "verified": bool(np.array_equal(res.sorted_keys, expected)),
        "elapsed_sim": float(elapsed),
        "checksum": float(res.sorted_keys.sum()),
        "keys": int(keys.size),
    }
    if spec.stream:
        # The array itself: an arena-dispatching server lifts it into the
        # shm segment (pack sees a big contiguous ndarray leaf) and
        # streams frames from there without ever copying it out.
        out["sorted_keys"] = np.ascontiguousarray(res.sorted_keys,
                                                  dtype=np.float64)
    elif spec.return_keys:
        # The pickled baseline: the whole array rides the result inline
        # as base64 text (one giant JSONL line at the client).
        data = np.ascontiguousarray(res.sorted_keys, dtype=np.float64)
        out["keys_b64"] = base64.b64encode(data.tobytes()).decode("ascii")
    return out


def _run_plan(spec: JobSpec) -> dict:
    from repro.core.ftsort import plan_partition

    partition, selection = plan_partition(spec.n, list(spec.faults))
    out = {"kind": "plan", "mincut": int(partition.mincut),
           "sequences": len(partition.cutting_set)}
    if partition.mincut:
        out["cut_dims"] = list(selection.cut_dims)
        out["cost"] = selection.cost
    return out


def _run_chaos(spec: JobSpec) -> dict:
    from dataclasses import replace

    from repro.chaos.campaign import run_scenario
    from repro.chaos.schedule import random_scenario

    scenario = random_scenario(
        spec.index, spec.seed, fault_classes=(spec.fault_class,)
    )
    if spec.fault_params:
        # Explicit severity overrides replace the stratified draw.
        scenario = replace(scenario, fault_params=spec.fault_params)
    outcome = run_scenario(scenario)
    return {
        "kind": "chaos",
        "passed": outcome.passed,
        "recoveries": outcome.recoveries,
        "total_time": float(outcome.total_time),
        "error": outcome.error,
        "fault_class": scenario.fault_class,
        "oracle": dict(outcome.oracle),
    }


_RUNNERS = {"sort": _run_sort, "plan": _run_plan, "chaos": _run_chaos}


def run_job(spec: JobSpec) -> dict:
    """Execute one job; never raises.

    Returns:
        ``{"ok": bool, "result": dict, "run_ms": float, "plancache":
        {"hits": int, "misses": int}}`` — ``result`` carries the error repr
        when ``ok`` is false.
    """
    before = PLAN_CACHE.stats()
    t0 = time.perf_counter()
    try:
        result = _RUNNERS[spec.kind](spec)
        ok = True
    except Exception as exc:
        result = {"kind": spec.kind, "error": f"{type(exc).__name__}: {exc}"}
        ok = False
    run_ms = (time.perf_counter() - t0) * 1e3
    after = PLAN_CACHE.stats()
    return {
        "ok": ok,
        "result": result,
        "run_ms": run_ms,
        "plancache": {
            "hits": after["total_hits"] - before["total_hits"],
            "misses": after["total_misses"] - before["total_misses"],
        },
    }


def run_job_batch(specs: tuple[JobSpec, ...], orbit_entries=()) -> list[dict]:
    """Execute a compatible batch back-to-back in one executor round-trip.

    The first job of a sort/plan batch pays the planning work; the rest
    replay it from the (by then warm) cache — their ``plancache`` deltas
    show the hits.  ``orbit_entries`` (gossiped canonical plans riding
    the dispatch) are imported first; any canonical plan computed *by*
    this batch is drained and attached to the first payload as
    ``orbit_entries`` for the dispatcher to propagate.
    """
    if orbit_entries:
        PLAN_CACHE.import_orbit_entries(orbit_entries)
        _drain_orbit_entries()  # imports are not news to our dispatcher
    payloads = [run_job(spec) for spec in specs]
    fresh = _drain_orbit_entries()
    if fresh and payloads:
        payloads[0]["orbit_entries"] = fresh
    return payloads


def run_job_batch_shm(specs: tuple[JobSpec, ...], name: str | None = None,
                      orbit_entries=()) -> tuple:
    """:func:`run_job_batch`, returning bulk payloads through a shm arena.

    Two callers: the server's ``executor="shm"`` tier (compact payloads —
    small batches come back ``("inline", ...)`` untouched) and *any*
    batch containing a streamed sort, whose ``sorted_keys`` array must
    land in a segment the server can stream frames from without copying.
    ``name`` is the parent-chosen (pre-registered) segment name; when
    omitted a worker-side name is minted.  If the worker dies before the
    server consumes the segment, the worker's exit-time sweep (own name)
    or the parent's registry sweep (parent name) reclaims it, so no path
    leaks ``/dev/shm`` entries.
    """
    from repro import shm

    return shm.pack_results(run_job_batch(specs, orbit_entries),
                            name if name is not None else shm.make_name("svc"))
