"""JSONL wire protocol of the sorting service.

One JSON object per ``\\n``-terminated line, in both directions, over any
byte stream (TCP socket or the server process's stdin/stdout).  Requests
carry an ``op``; the server answers every request with exactly one reply
echoing the client-chosen ``id`` (when given), and additionally *pushes*
one ``op: "result"`` message per accepted job when it completes:

===========  =======================================================
op           meaning
===========  =======================================================
submit       enqueue a job: ``{"op": "submit", "tenant": "a", "job":
             {...}}`` -> ack ``{"ok": true, "status": "queued", "job_id":
             "j3"}`` or a rejection ``{"ok": false, "error":
             "queue_full", "retry_after_ms": 250}`` / ``{"ok": false,
             "error": "rate_limited", "scope": "jobs_per_sec", ...}`` /
             ``{"ok": false, "error": "draining"}``.  An optional
             ``"transport": "binary"|"shm"`` picks the frame transport
             for streamed jobs (``shm`` = zero-copy same-host).
ping         liveness probe -> ``{"ok": true, "op": "pong"}``
stats        queue depths, per-tenant counters, plan-cache stats
drain        stop admitting, finish in-flight, flush obs; the reply
             ``{"ok": true, "op": "drained", ...}`` arrives once the
             last job has completed
frame_ack    client -> server: ``{"op": "frame_ack", "job_id": "j3",
             "seq": 4}`` — advances the bounded in-flight frame window
             of a streamed result (no reply)
stream_done  client -> server: the stream was fully consumed; releases
             the server's arena read lease (no reply)
orbit_pull   gossip tier: export plan-cache orbit entries past a cursor
orbit_push   gossip tier: import plan-cache orbit entries from a peer
===========  =======================================================

A job submitted with ``"stream": true`` answers not with one ``result``
push but with a framed stream: ``result_header`` (frame count, dtype,
transport), ``result_frame`` × F — each carrying a per-frame count/sum
ABFT checksum and either a shm descriptor (``"shm": {...}``) or a
``"nbytes"`` field followed by exactly that many raw bytes on the wire —
and a ``result_end`` trailer with the usual result summary.

Job payloads are validated into frozen :class:`JobSpec` values before they
touch a queue; a malformed request is answered with ``{"ok": false,
"error": "bad_request", "detail": ...}`` and never crosses the admission
boundary.  The full message catalogue lives in docs/SERVICE.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = [
    "JOB_KINDS",
    "JobSpec",
    "ProtocolError",
    "batch_signature",
    "decode_line",
    "encode",
]

#: Job kinds the server executes (see :mod:`repro.service.jobs`).
JOB_KINDS = ("sort", "plan", "chaos")

#: Hard sanity bounds enforced at admission: a single job may not request
#: a cube larger than Q_10 or more keys than this, whatever the queue
#: limits are — admission control bounds queue *length*, these bound the
#: work an individual accepted job can demand.
MAX_N = 10
MAX_KEYS = 1 << 20


class ProtocolError(ValueError):
    """A malformed or out-of-bounds request (answered, never raised out)."""


@dataclass(frozen=True)
class JobSpec:
    """One validated job, as admitted to the queues.

    Attributes:
        kind: ``"sort"`` (run the fault-tolerant sort on seeded random
            keys and verify against ``np.sort``), ``"plan"`` (partition +
            Eq.-(1) selection only), or ``"chaos"`` (one seeded chaos
            scenario through the recovery supervisor).
        n: hypercube dimension.
        faults: faulty processor addresses (sort/plan).
        keys: number of keys to sort (sort).
        seed: RNG seed — keys are regenerated server-side from it, so the
            wire never carries key data.
        kernels: execution backend (``None`` = process default).
        backend: ``"phase"`` or ``"spmd"`` (sort).
        index: scenario index within the seeded stream (chaos).
        fault_class: registered fault universe the scenario draws from
            (chaos; see :mod:`repro.faults.universe`).
        fault_params: class-specific severity overrides as ``(name,
            value)`` pairs (chaos; empty = the class's stratified default).
        stream: deliver the sorted key array as a framed stream (sort
            only) instead of a scalar summary — see the module docstring.
        return_keys: include the sorted key array inline in the result as
            base64 (sort only; the pickled baseline the streaming path is
            benchmarked against).  Mutually exclusive with ``stream``.
    """

    kind: str
    n: int = 5
    faults: tuple[int, ...] = ()
    keys: int = 1024
    seed: int = 0
    kernels: str | None = None
    backend: str = "phase"
    index: int = 0
    fault_class: str = "baseline"
    fault_params: tuple[tuple[str, float], ...] = ()
    stream: bool = False
    return_keys: bool = False

    def to_dict(self) -> dict:
        d = asdict(self)
        d["faults"] = list(self.faults)
        d["fault_params"] = {name: value for name, value in self.fault_params}
        return d

    @classmethod
    def from_dict(cls, raw: object) -> "JobSpec":
        """Validate an untrusted ``job`` payload into a spec.

        Raises:
            ProtocolError: on any malformed or out-of-bounds field.
        """
        if not isinstance(raw, dict):
            raise ProtocolError(f"job must be an object, got {type(raw).__name__}")
        kind = raw.get("kind")
        if kind not in JOB_KINDS:
            raise ProtocolError(f"job kind must be one of {JOB_KINDS}, got {kind!r}")
        unknown = set(raw) - {"kind", "n", "faults", "keys", "seed",
                              "kernels", "backend", "index",
                              "fault_class", "fault_params",
                              "stream", "return_keys"}
        if unknown:
            raise ProtocolError(f"unknown job fields: {sorted(unknown)}")

        def as_bool(field: str) -> bool:
            value = raw.get(field, False)
            if not isinstance(value, bool):
                raise ProtocolError(f"{field} must be a boolean, got {value!r}")
            return value

        stream = as_bool("stream")
        return_keys = as_bool("return_keys")
        if (stream or return_keys) and kind != "sort":
            raise ProtocolError(
                f"stream/return_keys apply to sort jobs only, got kind {kind!r}")
        if stream and return_keys:
            raise ProtocolError("stream and return_keys are mutually exclusive")

        def as_int(field: str, default: int, lo: int, hi: int) -> int:
            value = raw.get(field, default)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(f"{field} must be an integer, got {value!r}")
            if not lo <= value <= hi:
                raise ProtocolError(f"{field} must be in [{lo}, {hi}], got {value}")
            return value

        n = as_int("n", 5, 1, MAX_N)
        keys = as_int("keys", 1024, 1, MAX_KEYS)
        seed = as_int("seed", 0, 0, 2**63 - 1)
        index = as_int("index", 0, 0, 2**63 - 1)
        backend = raw.get("backend", "phase")
        if backend not in ("phase", "spmd"):
            raise ProtocolError(f"backend must be 'phase' or 'spmd', got {backend!r}")
        kernels = raw.get("kernels")
        if kernels not in (None, "numpy", "loop", "compiled"):
            raise ProtocolError(
                f"kernels must be 'numpy', 'loop' or 'compiled', got {kernels!r}")

        faults_raw = raw.get("faults", [])
        if not isinstance(faults_raw, (list, tuple)):
            raise ProtocolError(f"faults must be a list, got {faults_raw!r}")
        faults: list[int] = []
        for addr in faults_raw:
            if not isinstance(addr, int) or isinstance(addr, bool):
                raise ProtocolError(f"fault address {addr!r} is not an integer")
            if not 0 <= addr < (1 << n):
                raise ProtocolError(
                    f"fault address {addr} out of range for Q_{n}")
            if addr in faults:
                raise ProtocolError(f"fault address {addr} listed twice")
            faults.append(addr)
        if kind in ("sort", "plan") and len(faults) > n - 1:
            raise ProtocolError(
                f"{len(faults)} faults on Q_{n} exceed the paper's r <= n - 1")

        fault_class = raw.get("fault_class", "baseline")
        if not isinstance(fault_class, str):
            raise ProtocolError(
                f"fault_class must be a string, got {fault_class!r}")
        params_raw = raw.get("fault_params", {})
        if fault_class != "baseline" or params_raw:
            if kind != "chaos":
                raise ProtocolError(
                    f"fault_class/fault_params apply to chaos jobs only, "
                    f"got kind {kind!r}")
            from repro.faults.universe import fault_class_names

            if fault_class not in fault_class_names():
                raise ProtocolError(
                    f"unknown fault_class {fault_class!r} "
                    f"(registered: {', '.join(fault_class_names())})")
        if not isinstance(params_raw, dict):
            raise ProtocolError(
                f"fault_params must be an object, got {params_raw!r}")
        fault_params: list[tuple[str, float]] = []
        for name, value in sorted(params_raw.items()):
            if not isinstance(name, str):
                raise ProtocolError(f"fault_params key {name!r} is not a string")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ProtocolError(
                    f"fault_params[{name!r}] must be a number, got {value!r}")
            value = float(value)
            if not 0.0 <= value <= 1.0:
                raise ProtocolError(
                    f"fault_params[{name!r}] must be in [0, 1], got {value}")
            fault_params.append((name, value))
        return cls(kind=kind, n=n, faults=tuple(faults), keys=keys, seed=seed,
                   kernels=kernels, backend=backend, index=index,
                   fault_class=fault_class, fault_params=tuple(fault_params),
                   stream=stream, return_keys=return_keys)


def batch_signature(spec: JobSpec) -> tuple | None:
    """Compatibility key for job batching, or ``None`` when unbatchable.

    Jobs sharing a signature run back-to-back in one executor round-trip;
    for sorts/plans that means the first job of the batch plans and every
    later one replays from a warm cache.  Key data (``keys``/``seed``)
    deliberately stays out of the signature — compatibility is about the
    *planning* problem, not the payload.  Chaos scenarios are heterogeneous
    by construction and never batch.
    """
    if spec.kind == "sort":
        return ("sort", spec.n, spec.faults, spec.kernels, spec.backend)
    if spec.kind == "plan":
        return ("plan", spec.n, spec.faults)
    return None


def encode(message: dict) -> bytes:
    """One protocol message as a JSONL line (sorted keys: diff-stable)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one received line.

    Raises:
        ProtocolError: when the line is not a JSON object.
    """
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(f"message must be an object, got {type(obj).__name__}")
    return obj
