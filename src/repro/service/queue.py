"""Admission control and per-tenant fair queueing.

The queue layer is deliberately synchronous and lock-free: it is only ever
touched from the server's event-loop thread, so its invariants (bounded
depth, round-robin cursor position) need no locking — the asyncio
coordination (waking dispatchers, drain barriers) lives in
:mod:`repro.service.server`.

Fairness model: one FIFO queue per tenant, served **round-robin across
tenants** rather than FIFO across all arrivals, so a tenant that dumps a
thousand jobs cannot add a thousand-job head-of-line delay to a tenant
submitting one.  Admission is doubly bounded — a global cap (protects the
server) and a per-tenant cap (protects the *other* tenants' share of the
global cap); overflow raises :class:`QueueFull` which the server answers
with ``queue_full`` + a retry-after hint rather than buffering unboundedly
or dropping silently.

Batching: :meth:`FairQueue.pop_batch` pops the round-robin head job, then
gathers up to ``batch_max - 1`` further jobs with the same
:func:`~repro.service.protocol.batch_signature` from every tenant's queue
(round-robin order, any queue position — jobs are independent and clients
match results by ``job_id``, so reordering within a tenant is observable
only as completion order).  The batch runs as one executor round-trip and
the later jobs replay the first one's planning work from the warm cache.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.service.protocol import JobSpec, batch_signature

__all__ = ["FairQueue", "QueueFull", "QueuedJob", "TokenBucket"]


class QueueFull(Exception):
    """Admission rejected: the global or per-tenant bound is exhausted.

    Attributes:
        scope: ``"global"`` or ``"tenant"`` — which bound rejected.
    """

    def __init__(self, scope: str, limit: int):
        super().__init__(f"{scope} queue limit {limit} reached")
        self.scope = scope
        self.limit = limit


class TokenBucket:
    """Per-tenant admission rate limiter (``jobs_per_sec`` with burst).

    A classic monotonic-clock token bucket: :meth:`try_take` refills by
    elapsed time, takes one token when one is available, and otherwise
    returns the *seconds until the next token* — the server turns that
    into the ``retry_after_ms`` of a ``rate_limited`` rejection, so a
    well-behaved client backs off for exactly as long as the bucket
    needs, not a guess.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: int, now: float | None = None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 jobs/sec, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic() if now is None else now

    def try_take(self, now: float | None = None) -> float:
        """Take one token if possible; return 0.0, else seconds to wait."""
        now = time.monotonic() if now is None else now
        self.tokens = min(self.burst,
                          self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class QueuedJob:
    """One admitted job waiting for (or undergoing) dispatch.

    Attributes:
        job_id: server-assigned id (``"j<seq>"``), unique per process.
        tenant: submitting tenant.
        spec: the validated job.
        client_id: client-chosen ``id`` echoed back in the result push.
        conn: opaque connection handle the result is delivered to (the
            server's per-connection state; ``None`` in library use).
        enqueued_at: ``perf_counter()`` at admission (queue-delay metric).
        transport: frame transport for a streamed result (``"binary"``
            length-prefixed chunks, or ``"shm"`` zero-copy descriptors).
    """

    job_id: str
    tenant: str
    spec: JobSpec
    client_id: object = None
    conn: object = None
    enqueued_at: float = 0.0
    transport: str = "binary"
    signature: tuple | None = field(init=False)

    def __post_init__(self) -> None:
        self.signature = batch_signature(self.spec)


class FairQueue:
    """Bounded per-tenant FIFO queues with a round-robin service cursor."""

    def __init__(self, max_queued: int = 1024, max_queued_per_tenant: int = 512):
        if max_queued < 1 or max_queued_per_tenant < 1:
            raise ValueError("queue bounds must be >= 1")
        self.max_queued = int(max_queued)
        self.max_queued_per_tenant = int(max_queued_per_tenant)
        self._queues: dict[str, deque[QueuedJob]] = {}
        self._rr: deque[str] = deque()  # tenant service order (rotates)
        self.depth = 0

    def put(self, job: QueuedJob) -> int:
        """Admit ``job``; return the new global depth.

        Raises:
            QueueFull: when the global or the tenant bound is exhausted.
        """
        if self.depth >= self.max_queued:
            raise QueueFull("global", self.max_queued)
        q = self._queues.get(job.tenant)
        if q is None:
            q = self._queues[job.tenant] = deque()
            self._rr.append(job.tenant)
        if len(q) >= self.max_queued_per_tenant:
            raise QueueFull("tenant", self.max_queued_per_tenant)
        q.append(job)
        self.depth += 1
        return self.depth

    def pop_batch(self, batch_max: int = 1) -> list[QueuedJob]:
        """Next round-robin job plus compatible batch-mates (maybe empty).

        The head comes from the first non-empty tenant queue in round-robin
        order; the cursor advances past that tenant so its next job waits
        its turn.  When the head is batchable, matching jobs are collected
        from every tenant (starting with the tenants the cursor favors
        next) until ``batch_max`` is reached.
        """
        head = self._pop_rr()
        if head is None:
            return []
        batch = [head]
        if head.signature is not None and batch_max > 1:
            for tenant in list(self._rr):
                if len(batch) >= batch_max:
                    break
                q = self._queues[tenant]
                keep: deque[QueuedJob] = deque()
                while q and len(batch) < batch_max:
                    job = q.popleft()
                    if job.signature == head.signature:
                        batch.append(job)
                    else:
                        keep.append(job)
                keep.extend(q)
                self._queues[tenant] = keep
            self.depth -= len(batch) - 1
        return batch

    def _pop_rr(self) -> QueuedJob | None:
        """Pop the head of the first non-empty queue in round-robin order."""
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            q = self._queues[tenant]
            if q:
                self.depth -= 1
                return q.popleft()
        return None

    def tenant_depths(self) -> dict[str, int]:
        """Per-tenant queued counts (tenants stay listed once seen)."""
        return {t: len(q) for t, q in sorted(self._queues.items())}

    def __len__(self) -> int:
        return self.depth
