"""The shard router: consistent-hash tenant placement + stream relay.

``repro serve --shards N`` runs this front end: clients speak the normal
service protocol to one TCP port, and the router places each *tenant*
(not each job) onto one of N backend shard processes via a consistent
hash ring.  Tenant affinity is what makes shard-local plan caches work —
a tenant's jobs keep landing where its plans are warm — and the ring
keeps placement stable as shards come and go: when a shard dies, only
the tenants that lived on it move (to the next shard clockwise), exactly
the property the paper's fault-avoiding sort wants from its spare
assignment.

Three relay rules keep the router cheap enough to be invisible:

* **Job ids are namespaced, not tabled per frame.**  A shard's ``j17``
  becomes ``s2:j17`` at the client; every pushed message is rewritten by
  prefix only, so relaying a result stream costs one dict touch per
  frame.
* **Bulk bytes are never interpreted.**  A binary frame's payload is
  copied socket-to-socket right behind its header line; a shm frame's
  descriptor passes through *untouched* — the client maps the shard's
  segment directly, so a same-host streamed result crosses the router as
  a few hundred bytes of JSON regardless of array size.
* **Failure is an answer.**  When a shard connection drops, its in-flight
  jobs are answered with a retryable ``shard_lost`` result, the ring
  reroutes the shard's tenants, and the shard's ``/dev/shm`` segments are
  reclaimed by prefix (``kill -9`` leaves no registry to sweep — see
  :func:`repro.shm.sweep_prefix`).

The router also runs the *orbit gossip* loop: every ``gossip_interval``
seconds it pulls each shard's new plan-cache orbit entries
(``orbit_pull`` with a per-shard cursor) and pushes the unseen ones to
every other live shard (``orbit_push``), so a canonical plan computed
once on shard A prices as a cache hit for the equivalent-orbit job a
different tenant submits to shard B.
"""

from __future__ import annotations

import asyncio
import itertools
import sys
from bisect import bisect_right
from dataclasses import dataclass
from hashlib import blake2b

from repro import shm
from repro.obs import MetricsRegistry
from repro.service.protocol import ProtocolError, decode_line, encode
from repro.service.shard import ShardInfo, ShardManager

__all__ = ["HashRing", "ShardRouter", "serve_sharded"]


def _hash64(text: str) -> int:
    return int.from_bytes(blake2b(text.encode("utf-8"), digest_size=8).digest(),
                          "big")


class HashRing:
    """Consistent hashing with virtual nodes (blake2b, deterministic).

    ``vnodes`` points per member smooth the load split (64 keeps the
    max/min tenant-count ratio within a few percent for small N) and
    bound reshuffling: removing a member moves only the arc segments it
    owned, never the whole map.
    """

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: list[tuple[int, str]] = []  # sorted (hash, member)
        self._members: set[str] = set()

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for v in range(self.vnodes):
            self._points.append((_hash64(f"{member}#{v}"), member))
        self._points.sort()

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        self._points = [p for p in self._points if p[1] != member]

    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def route(self, tenant: str) -> str:
        """The member owning ``tenant`` (first point clockwise of its hash)."""
        if not self._points:
            raise LookupError("hash ring is empty")
        idx = bisect_right(self._points, (_hash64(tenant), "￿"))
        return self._points[idx % len(self._points)][1]

    def preference(self, tenant: str) -> list[str]:
        """Every member in fallback order for ``tenant`` (deduped walk)."""
        if not self._points:
            return []
        idx = bisect_right(self._points, (_hash64(tenant), "￿"))
        seen: list[str] = []
        for i in range(len(self._points)):
            member = self._points[(idx + i) % len(self._points)][1]
            if member not in seen:
                seen.append(member)
                if len(seen) == len(self._members):
                    break
        return seen


@dataclass
class _Route:
    """One in-flight job: which client gets which shard's pushes."""

    conn: object  # router-side client _Connection
    shard_id: str
    client_id: object
    tenant: str
    streamed: bool = False


class _Upstream:
    """The router's connection to one shard."""

    def __init__(self, info: ShardInfo, router: "ShardRouter"):
        self.info = info
        self.router = router
        self.up = False
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        self._seq = itertools.count()
        self._pending: dict[str, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self.orbit_cursor = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.info.host, self.info.port, limit=1 << 26)
        self.up = True
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"repro-upstream-{self.info.id}")

    async def send(self, message: dict, payload: bytes | None = None) -> bool:
        if not self.up or self._writer is None:
            return False
        data = encode(message)
        async with self._lock:
            try:
                self._writer.write(data)
                if payload is not None:
                    self._writer.write(payload)
                await self._writer.drain()
            except (ConnectionError, OSError):
                return False
        return True

    async def request(self, message: dict) -> dict:
        """Round-trip one op on the shared connection (id-matched)."""
        if not self.up:
            raise ConnectionError(f"shard {self.info.id} is down")
        rid = f"r{next(self._seq)}"
        message = {**message, "id": rid}
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        if not await self.send(message):
            self._pending.pop(rid, None)
            raise ConnectionError(f"shard {self.info.id} is down")
        return await fut

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = decode_line(line)
                except ProtocolError:  # pragma: no cover - shard is trusted
                    continue
                data = None
                if (msg.get("op") == "result_frame"
                        and isinstance(msg.get("nbytes"), int)):
                    data = await self._reader.readexactly(msg["nbytes"])
                if msg.get("op") in ("result", "result_header",
                                     "result_frame", "result_end"):
                    await self.router.on_push(self, msg, data)
                    continue
                fut = self._pending.pop(msg.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(msg)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            was_up, self.up = self.up, False
            error = ConnectionError(f"shard {self.info.id} connection lost")
            for fut in self._pending.values():
                if not fut.done():
                    fut.set_exception(error)
            self._pending.clear()
            if was_up:
                await self.router.on_shard_down(self)

    async def close(self) -> None:
        self.up = False
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class ShardRouter:
    """Front-end: one client port, N shard backends, tenant-affine routing."""

    def __init__(self, shards: list[ShardInfo],
                 metrics: MetricsRegistry | None = None,
                 gossip_interval: float = 0.25, log=None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.gossip_interval = float(gossip_interval)
        self.log = log if log is not None else (
            lambda text: print(text, file=sys.stderr, flush=True))
        self.ring = HashRing()
        self.upstreams: dict[str, _Upstream] = {}
        for info in shards:
            self.upstreams[info.id] = _Upstream(info, self)
        self._routes: dict[str, _Route] = {}  # global job_id -> route
        self._drained = asyncio.Event()
        self._draining = False
        self._orbit_seen: set = set()
        self._gossip_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Connect every upstream and start the gossip loop."""
        for upstream in self.upstreams.values():
            await upstream.connect()
            self.ring.add(upstream.info.id)
        self.metrics.set_gauge("router.shards_up", len(self.live_shards()))
        if self.gossip_interval > 0:
            self._gossip_task = asyncio.create_task(
                self._gossip_loop(), name="repro-gossip")

    def live_shards(self) -> list[_Upstream]:
        return [u for u in self.upstreams.values() if u.up]

    async def aclose(self) -> None:
        if self._gossip_task is not None:
            self._gossip_task.cancel()
            try:
                await self._gossip_task
            except asyncio.CancelledError:
                pass
            self._gossip_task = None
        for upstream in self.upstreams.values():
            await upstream.close()

    @property
    def drained(self) -> asyncio.Event:
        return self._drained

    # -- client side ---------------------------------------------------------

    async def start_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> asyncio.Server:
        return await asyncio.start_server(self._handle_client, host, port)

    def install_signal_handlers(self,
                                loop: asyncio.AbstractEventLoop | None = None
                                ) -> None:
        import signal as _signal

        loop = loop if loop is not None else asyncio.get_running_loop()

        def _drain_now() -> None:
            self.log("signal received: draining all shards")
            asyncio.ensure_future(self.drain())

        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _drain_now)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        from repro.service.server import _Connection

        conn = _Connection(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._handle_message(line, conn)
                if reply is not None:
                    await conn.send(reply)
        except asyncio.CancelledError:
            pass
        finally:
            conn.closed = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_message(self, line: bytes, conn) -> dict | None:
        try:
            msg = decode_line(line)
        except ProtocolError as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        op = msg.get("op")
        rid = msg.get("id")
        if op == "submit":
            return await self._submit(msg, conn)
        if op in ("frame_ack", "stream_done"):
            await self._forward_stream_op(msg)
            return None
        if op == "ping":
            return {"ok": True, "op": "pong", "id": rid}
        if op == "stats":
            return {"ok": True, "op": "stats", "id": rid,
                    "stats": await self.stats()}
        if op == "drain":
            summary = await self.drain()
            return {"ok": True, "op": "drained", "id": rid, **summary}
        return {"ok": False, "error": "bad_request", "id": rid,
                "detail": f"unknown op {op!r}"}

    async def _submit(self, msg: dict, conn) -> dict:
        rid = msg.get("id")
        if self._draining:
            self.metrics.inc("router.rejected.draining")
            return {"ok": False, "op": "submit", "id": rid, "error": "draining"}
        tenant = msg.get("tenant", "default")
        upstream = self._place(tenant if isinstance(tenant, str) else "default")
        if upstream is None:
            self.metrics.inc("router.rejected.no_shards")
            return {"ok": False, "op": "submit", "id": rid,
                    "error": "no_shards", "retryable": True,
                    "retry_after_ms": 1000}
        try:
            ack = await upstream.request({k: v for k, v in msg.items()
                                          if k != "id"})
        except ConnectionError:
            return {"ok": False, "op": "submit", "id": rid,
                    "error": "shard_lost", "retryable": True,
                    "retry_after_ms": 100}
        ack["id"] = rid
        if ack.get("ok") and "job_id" in ack:
            job = msg.get("job")
            streamed = isinstance(job, dict) and bool(job.get("stream"))
            global_id = f"{upstream.info.id}:{ack['job_id']}"
            self._routes[global_id] = _Route(conn, upstream.info.id, rid,
                                             tenant, streamed)
            ack["job_id"] = global_id
            self.metrics.inc("router.submitted")
            self.metrics.inc(f"router.shard.{upstream.info.id}.submitted")
        return ack

    def _place(self, tenant: str) -> _Upstream | None:
        """The tenant's shard: ring owner, or next live one clockwise."""
        if not self.ring.members:
            return None
        for member in self.ring.preference(tenant):
            upstream = self.upstreams.get(member)
            if upstream is not None and upstream.up:
                return upstream
        return None

    async def _forward_stream_op(self, msg: dict) -> None:
        """Relay a client->shard stream op, de-namespacing the job id."""
        job_id = msg.get("job_id")
        if not isinstance(job_id, str) or ":" not in job_id:
            return
        shard_id, local_id = job_id.split(":", 1)
        upstream = self.upstreams.get(shard_id)
        if upstream is None or not upstream.up:
            return
        await upstream.send({**msg, "job_id": local_id})

    # -- shard side ----------------------------------------------------------

    async def on_push(self, upstream: _Upstream, msg: dict,
                      data: bytes | None) -> None:
        """Relay one shard push to the client that owns the job."""
        local_id = msg.get("job_id")
        global_id = f"{upstream.info.id}:{local_id}"
        route = self._routes.get(global_id)
        if route is None:
            # A fast job's first push can outrun its own submit ack: the
            # ack resolves a future in this same read batch, but the
            # _submit coroutine only registers the route once the loop
            # reschedules it.  Yield a bounded number of ticks before
            # concluding the client is gone.
            for _ in range(3):
                await asyncio.sleep(0)
                route = self._routes.get(global_id)
                if route is not None:
                    break
        if route is None:
            # Client vanished between frames: tell the shard to stop
            # holding the stream open (idempotent for plain results).
            if msg.get("op") in ("result_header", "result_frame"):
                await upstream.send({"op": "stream_done", "job_id": local_id})
            return
        out = {**msg, "job_id": global_id}
        if route.client_id is not None:
            out["id"] = route.client_id
        else:
            out.pop("id", None)
        sent = await route.conn.send_with_payload(out, data)
        op = msg.get("op")
        if op in ("result", "result_end"):
            self._routes.pop(global_id, None)
            self.metrics.inc("router.completed")
            self.metrics.inc(f"router.shard.{upstream.info.id}.completed")
        elif op == "result_frame":
            self.metrics.inc("router.frames")
            if data is not None:
                self.metrics.inc("router.frame_bytes", len(data))
        if not sent and op in ("result_header", "result_frame"):
            await upstream.send({"op": "stream_done", "job_id": local_id})
            self._routes.pop(global_id, None)

    async def on_shard_down(self, upstream: _Upstream) -> None:
        """A shard connection dropped: reroute, answer, reclaim."""
        shard_id = upstream.info.id
        self.ring.remove(shard_id)
        if not self._draining:
            # A post-drain disconnect is the shard exiting on schedule,
            # not a failover.
            self.metrics.inc("router.failovers")
        self.metrics.set_gauge("router.shards_up", len(self.live_shards()))
        lost = [(gid, route) for gid, route in self._routes.items()
                if route.shard_id == shard_id]
        for gid, route in lost:
            self._routes.pop(gid, None)
            self.metrics.inc("router.jobs_failed_over")
            await route.conn.send({
                "ok": False,
                "op": "result",
                "id": route.client_id,
                "job_id": gid,
                "tenant": route.tenant,
                "error": "shard_lost",
                "retryable": True,
                "result": {"error": "shard_lost"},
            })
        swept = shm.sweep_prefix(upstream.info.shm_prefix)
        self.log(f"shard {shard_id} lost: {len(lost)} jobs answered "
                 f"retryable, {swept} shm segments reclaimed, "
                 f"{len(self.live_shards())} shards remain")

    # -- orbit gossip --------------------------------------------------------

    async def _gossip_loop(self) -> None:
        while True:
            await asyncio.sleep(self.gossip_interval)
            try:
                await self.gossip_once()
            except Exception as exc:  # pragma: no cover - keep gossiping
                self.log(f"gossip round failed: {exc!r}")

    async def gossip_once(self) -> int:
        """One gossip round: pull new orbit entries, push the unseen ones.

        Returns the number of entries pushed (tests drive this directly
        for deterministic timing).
        """
        fresh: list[tuple[str, dict]] = []
        for upstream in self.live_shards():
            try:
                reply = await upstream.request(
                    {"op": "orbit_pull", "cursor": upstream.orbit_cursor})
            except ConnectionError:
                continue
            upstream.orbit_cursor = reply.get("cursor", upstream.orbit_cursor)
            for entry in reply.get("entries", []):
                if not isinstance(entry, dict):
                    continue
                key = (entry.get("n"), tuple(entry.get("canon", ())))
                if key in self._orbit_seen:
                    continue
                self._orbit_seen.add(key)
                fresh.append((upstream.info.id, entry))
        if not fresh:
            return 0
        pushed = 0
        for upstream in self.live_shards():
            entries = [e for origin, e in fresh if origin != upstream.info.id]
            if not entries:
                continue
            try:
                await upstream.request({"op": "orbit_push", "entries": entries})
                pushed += len(entries)
            except ConnectionError:
                continue
        self.metrics.inc("router.orbit.gossiped", pushed)
        return pushed

    # -- aggregate ops -------------------------------------------------------

    async def stats(self) -> dict:
        per_shard: dict[str, dict] = {}
        for upstream in self.upstreams.values():
            if not upstream.up:
                per_shard[upstream.info.id] = {"up": False}
                continue
            try:
                reply = await upstream.request({"op": "stats"})
                per_shard[upstream.info.id] = {
                    "up": True, **reply.get("stats", {})}
            except ConnectionError:
                per_shard[upstream.info.id] = {"up": False}
        return {
            "router": {
                "shards_up": len(self.live_shards()),
                "shards": len(self.upstreams),
                "submitted": int(self.metrics.value("router.submitted")),
                "completed": int(self.metrics.value("router.completed")),
                "failovers": int(self.metrics.value("router.failovers")),
                "jobs_failed_over": int(
                    self.metrics.value("router.jobs_failed_over")),
                "frames": int(self.metrics.value("router.frames")),
                "frame_bytes": int(self.metrics.value("router.frame_bytes")),
                "orbit_gossiped": int(
                    self.metrics.value("router.orbit.gossiped")),
                "in_flight": len(self._routes),
                "draining": self._draining,
            },
            "shards": per_shard,
        }

    async def drain(self) -> dict:
        """Drain every live shard; zero accepted jobs lost.

        Each shard's ``drained`` reply arrives on the same upstream
        connection *after* every result push that drain waited for, so
        by the time the gather below completes, every in-flight result
        (streams included) has already been relayed to its client.
        """
        self._draining = True
        live = self.live_shards()
        replies = await asyncio.gather(
            *(u.request({"op": "drain"}) for u in live),
            return_exceptions=True)
        completed = failed = 0
        for reply in replies:
            if isinstance(reply, BaseException):
                continue
            completed += int(reply.get("completed", 0))
            failed += int(reply.get("failed", 0))
        summary = {"completed": completed, "failed": failed,
                   "shards": len(live)}
        self._drained.set()
        return summary


async def serve_sharded(
    shards: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    shards_file: str | None = None,
    gossip_interval: float = 0.25,
    **shard_opts,
) -> ShardRouter:
    """Run the sharded deployment until drained (``repro serve --shards N``).

    Spawns ``shards`` backend server processes, routes client traffic to
    them through a :class:`ShardRouter` on ``host:port``, and tears the
    fleet down after a drain (client ``drain`` op or SIGTERM/SIGINT).
    ``ready(router, port)`` fires once the router is listening;
    ``shards_file`` (optional) records the shard topology as JSON for
    tooling that needs pids/ports (the CI kill-one-shard smoke).
    ``shard_opts`` are forwarded to each shard's server flags (``jobs``,
    ``executor``, ``tenant_rate``, ...).
    """
    manager = ShardManager(shards, host=host, **shard_opts)
    await manager.start()
    router = ShardRouter(manager.shards, gossip_interval=gossip_interval)
    try:
        await router.start()
        if shards_file:
            manager.write_shards_file(shards_file)
        server = await router.start_tcp(host, port)
        router.install_signal_handlers()
        bound = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready(router, bound)
        async with server:
            await router.drained.wait()
    finally:
        await router.aclose()
        await manager.stop()
    return router
