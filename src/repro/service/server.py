"""The asyncio job server: admission, fair dispatch, drain.

One :class:`SortingService` owns the whole pipeline::

    connections --> admission (bounded, per-tenant) --> FairQueue
        --> N dispatcher tasks --> executor (inline thread | warm pool)
        --> result push back to the submitting connection

Design decisions, in the order they bit:

* **Single-threaded control plane.**  Every queue/counter mutation happens
  on the event-loop thread; only job *execution* leaves it (via
  ``run_in_executor``).  The asyncio :class:`~asyncio.Condition` is purely
  a wakeup/barrier mechanism — dispatchers sleep on it when the queue is
  empty, the drain barrier waits on it for ``depth == 0 and in_flight ==
  0``.
* **Two executors, one job path.**  ``jobs <= 1`` (the default) runs
  batches on a single-thread :class:`~concurrent.futures.ThreadPoolExecutor`
  in-process: the event loop stays responsive while the job computes, and
  every job shares the *same* process-wide plan cache — the configuration
  the cross-tenant cache-sharing benchmark measures.  ``jobs > 1``
  dispatches to a shared warm pool whose tier the ``executor`` knob
  picks: the process pool (:func:`repro.parallel.warm_pool`, default —
  each worker keeps its own process-global cache warm across jobs), the
  warm thread pool (:func:`repro.parallel.warm_thread_pool` — workers
  share the server's cache like the inline executor), or the process
  pool with bulk results returned through :mod:`repro.shm` arenas.
  Per-job cache deltas are computed inside the worker either way, so
  tenant attribution stays exact.
* **Backpressure is an answer, not an exception.**  Admission overflow and
  draining both produce normal protocol replies (``queue_full`` with a
  ``retry_after_ms`` hint derived from an EMA of recent job cost,
  ``draining``); nothing is buffered beyond the declared bounds and
  nothing is silently dropped.
* **Drain is a barrier, not a kill.**  ``drain()`` (also wired to
  SIGTERM/SIGINT) stops admission, wakes everyone, waits until the queue
  and the in-flight set are empty — results included, so no accepted job
  is ever lost — then flushes observability state and trips the drained
  event that ends ``serve()``.
"""

from __future__ import annotations

import asyncio
import itertools
import re
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.obs import MetricsRegistry
from repro.plancache import PLAN_CACHE
from repro.service.jobs import run_job_batch, run_job_batch_shm
from repro.service.protocol import JobSpec, ProtocolError, decode_line, encode
from repro.service.queue import FairQueue, QueueFull, QueuedJob

__all__ = ["SortingService", "serve"]

_TENANT_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


class _Connection:
    """One client stream: a writer plus the lock that serializes pushes."""

    __slots__ = ("writer", "lock", "closed")

    def __init__(self, writer: asyncio.StreamWriter | None):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, message: dict) -> bool:
        if self.closed or self.writer is None:
            return False
        data = encode(message)
        async with self.lock:
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                self.closed = True
                return False
        return True


class SortingService:
    """The job server (transport-agnostic core).

    Args:
        jobs: executor width — ``<= 1`` runs jobs on an in-process
            single-thread executor against the server's own plan cache;
            ``> 1`` fans batches out over that many warm pool workers.
        executor: warm-pool tier for ``jobs > 1`` — ``"process"`` (the
            shared process pool), ``"thread"`` (the warm thread pool;
            workers share the server's plan cache like the inline
            executor does), ``"shm"`` (process pool with bulk results
            returned through :mod:`repro.shm` arenas), or
            ``None``/``"auto"`` (consult ``REPRO_EXECUTOR``, else the
            process pool — job payloads are compact, so the pickling
            break-even rarely favors arenas here).  Ignored when
            ``jobs <= 1``.
        max_queued: global admission bound.
        max_queued_per_tenant: per-tenant admission bound.
        batch_max: maximum compatible jobs fused into one executor trip.
        metrics: a :class:`repro.obs.MetricsRegistry` to report into (a
            fresh one by default; exposed as ``self.metrics``).
        obs_out: optional path — drain writes a JSON observability snapshot
            (service metrics + plan-cache stats) there.
        log: ``log(text)`` sink for operational messages (stderr default).
    """

    def __init__(
        self,
        jobs: int = 1,
        executor: str | None = None,
        max_queued: int = 1024,
        max_queued_per_tenant: int = 512,
        batch_max: int = 8,
        metrics: MetricsRegistry | None = None,
        obs_out: str | None = None,
        log=None,
    ):
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.queue = FairQueue(max_queued, max_queued_per_tenant)
        self.batch_max = int(batch_max)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.obs_out = obs_out
        self.log = log if log is not None else (
            lambda text: print(text, file=sys.stderr, flush=True))
        self.jobs = int(jobs)
        self._pool_workers = 0
        self.executor_tier = "inline"
        if self.jobs > 1:
            from repro.parallel import (
                resolve_executor,
                warm_pool,
                warm_thread_pool,
            )

            # total=None skips the batch-size degrade guard: pool width is
            # a service-lifetime decision, not a per-batch one.
            tier = resolve_executor(executor, jobs=self.jobs, total=None)
            if tier == "serial":  # nonsensical for a pool; keep status quo
                tier = "process"
            self._pool_workers = self.jobs
            if tier == "thread":
                self._executor = warm_thread_pool(self.jobs)
            else:
                self._executor = warm_pool(self.jobs)
            self.executor_tier = tier
            self._owns_executor = False
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service")
            self._owns_executor = True
        self._batch_runner = (
            run_job_batch_shm if self.executor_tier == "shm" else run_job_batch
        )

        self.draining = False
        self.in_flight = 0
        self._cond: asyncio.Condition | None = None
        self._drained = asyncio.Event()
        self._dispatchers: list[asyncio.Task] = []
        self._seq = itertools.count()
        self._tenants: set[str] = set()
        self._ema_run_ms = 50.0  # seeds the retry-after hint before data

    # -- lifecycle -----------------------------------------------------------

    def _ensure_started(self) -> None:
        """Create loop-bound state and dispatcher tasks (idempotent)."""
        if self._cond is not None:
            return
        self._cond = asyncio.Condition()
        width = self._pool_workers if self._pool_workers else 1
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"repro-dispatch-{i}")
            for i in range(width)
        ]

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Listen on TCP; returns the server (``port=0`` picks a free one)."""
        self._ensure_started()
        return await asyncio.start_server(self._handle_stream, host, port)

    async def serve_stdio(self) -> None:
        """Speak the protocol over this process's stdin/stdout (tests, CI).

        Returns at stdin EOF, after draining — in-flight jobs complete and
        counters settle even though the peer is gone.
        """
        self._ensure_started()
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin)
        w_transport, w_protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout)
        writer = asyncio.StreamWriter(w_transport, w_protocol, reader, loop)
        await self._handle_stream(reader, writer, close=False)
        if not self._drained.is_set():
            await self.drain()

    def install_signal_handlers(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Wire SIGTERM/SIGINT to a graceful drain (no-op where unsupported)."""
        loop = loop if loop is not None else asyncio.get_running_loop()

        def _drain_now() -> None:
            self.log("signal received: draining (admission closed)")
            asyncio.ensure_future(self.drain())

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _drain_now)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def aclose(self) -> None:
        """Stop dispatchers and release the inline executor (post-drain)."""
        for task in self._dispatchers:
            task.cancel()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        if self._owns_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)

    @property
    def drained(self) -> asyncio.Event:
        """Set once a drain has fully completed."""
        return self._drained

    # -- connection handling -------------------------------------------------

    async def _handle_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        close: bool = True,
    ) -> None:
        conn = _Connection(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._handle_message(line, conn)
                if reply is not None:
                    await conn.send(reply)
        except asyncio.CancelledError:
            # Loop teardown cancels lingering connection handlers; ending
            # the task cleanly keeps 3.11's streams done-callback (which
            # calls task.exception() unguarded) from logging the cancel.
            pass
        finally:
            conn.closed = True
            if close:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

    async def _handle_message(self, line: bytes, conn: _Connection) -> dict | None:
        try:
            msg = decode_line(line)
        except ProtocolError as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        op = msg.get("op")
        rid = msg.get("id")
        if op == "submit":
            return await self._submit(msg, conn)
        if op == "ping":
            return {"ok": True, "op": "pong", "id": rid}
        if op == "stats":
            return {"ok": True, "op": "stats", "id": rid, "stats": self.stats()}
        if op == "drain":
            summary = await self.drain()
            return {"ok": True, "op": "drained", "id": rid, **summary}
        return {"ok": False, "error": "bad_request", "id": rid,
                "detail": f"unknown op {op!r}"}

    # -- admission -----------------------------------------------------------

    async def _submit(self, msg: dict, conn: _Connection) -> dict:
        rid = msg.get("id")
        reject = {"ok": False, "op": "submit", "id": rid}
        tenant = msg.get("tenant", "default")
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            self.metrics.inc("service.rejected.bad_request")
            return {**reject, "error": "bad_request",
                    "detail": f"invalid tenant {tenant!r}"}
        try:
            spec = JobSpec.from_dict(msg.get("job"))
        except ProtocolError as exc:
            self.metrics.inc("service.rejected.bad_request")
            return {**reject, "error": "bad_request", "detail": str(exc)}
        if self.draining:
            self.metrics.inc("service.rejected.draining")
            return {**reject, "error": "draining"}
        job = QueuedJob(
            job_id=f"j{next(self._seq)}",
            tenant=tenant,
            spec=spec,
            client_id=rid,
            conn=conn,
            enqueued_at=time.perf_counter(),
        )
        try:
            depth = self.queue.put(job)
        except QueueFull as exc:
            self.metrics.inc("service.rejected.full")
            self.metrics.inc(f"service.tenant.{tenant}.rejected")
            return {**reject, "error": "queue_full", "scope": exc.scope,
                    "retry_after_ms": self._retry_after_ms()}
        self._tenants.add(tenant)
        self.metrics.inc("service.submitted")
        self.metrics.inc(f"service.tenant.{tenant}.submitted")
        self.metrics.set_gauge("service.queue_depth", self.queue.depth)
        async with self._cond:
            self._cond.notify(1)
        return {"ok": True, "op": "submit", "id": rid, "status": "queued",
                "job_id": job.job_id, "queued": depth}

    def _retry_after_ms(self) -> int:
        """Backpressure hint: time for the backlog to pass one worker."""
        width = max(1, self._pool_workers or 1)
        backlog = self.queue.depth + self.in_flight
        return int(min(30_000, max(50.0, self._ema_run_ms * (backlog / width))))

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            async with self._cond:
                while self.queue.depth == 0:
                    await self._cond.wait()
                batch = self.queue.pop_batch(self.batch_max)
                if not batch:  # pragma: no cover - raced another dispatcher
                    continue
                self.in_flight += len(batch)
            self.metrics.set_gauge("service.queue_depth", self.queue.depth)
            self.metrics.set_gauge("service.in_flight", self.in_flight)
            specs = tuple(job.spec for job in batch)
            try:
                payloads = await loop.run_in_executor(
                    self._executor, self._batch_runner, specs)
                if self.executor_tier == "shm":
                    from repro.shm import unpack_results

                    payloads, _moved = unpack_results(payloads)
            except asyncio.CancelledError:
                async with self._cond:
                    self.in_flight -= len(batch)
                    self._cond.notify_all()
                raise
            except Exception as exc:  # broken pool, pickling failure, ...
                self.log(f"batch of {len(batch)} failed in executor: {exc!r}")
                payloads = [
                    {"ok": False, "run_ms": 0.0,
                     "result": {"kind": spec.kind,
                                "error": f"{type(exc).__name__}: {exc}"},
                     "plancache": {"hits": 0, "misses": 0}}
                    for spec in specs
                ]
            now = time.perf_counter()
            self.metrics.inc("service.batches")
            if len(batch) > 1:
                self.metrics.inc("service.batched_jobs", len(batch) - 1)
            for job, payload in zip(batch, payloads):
                await self._finish_job(job, payload, len(batch), now)
            async with self._cond:
                self.in_flight -= len(batch)
                self.metrics.set_gauge("service.in_flight", self.in_flight)
                self._cond.notify_all()

    async def _finish_job(
        self, job: QueuedJob, payload: dict, batch_size: int, now: float
    ) -> None:
        run_ms = float(payload["run_ms"])
        latency_ms = (now - job.enqueued_at) * 1e3
        queue_ms = max(0.0, latency_ms - run_ms)
        self._ema_run_ms += 0.2 * (run_ms - self._ema_run_ms)
        t = job.tenant
        self.metrics.inc("service.completed" if payload["ok"] else "service.failed")
        self.metrics.inc(f"service.tenant.{t}.completed")
        pc = payload.get("plancache", {})
        self.metrics.inc(f"service.tenant.{t}.plancache.hits", max(0, pc.get("hits", 0)))
        self.metrics.inc(f"service.tenant.{t}.plancache.misses",
                         max(0, pc.get("misses", 0)))
        self.metrics.observe("service.run_ms", run_ms)
        self.metrics.observe("service.queue_ms", queue_ms)
        self.metrics.observe("service.latency_ms", latency_ms)
        message = {
            "ok": payload["ok"],
            "op": "result",
            "id": job.client_id,
            "job_id": job.job_id,
            "tenant": t,
            "result": payload["result"],
            "run_ms": round(run_ms, 3),
            "queue_ms": round(queue_ms, 3),
            "latency_ms": round(latency_ms, 3),
            "batched": batch_size,
        }
        if job.conn is not None:
            await job.conn.send(message)

    # -- drain + reporting -----------------------------------------------------

    async def drain(self) -> dict:
        """Stop admitting, finish every in-flight/queued job, flush obs.

        Idempotent; concurrent callers all return once the barrier clears.
        No accepted job is lost: the barrier counts a job as in-flight
        until its result has been pushed.
        """
        self._ensure_started()
        self.draining = True
        async with self._cond:
            self._cond.notify_all()
            await self._cond.wait_for(
                lambda: self.queue.depth == 0 and self.in_flight == 0)
        flushed = self._flush_obs()
        summary = {
            "completed": int(self.metrics.value("service.completed")),
            "failed": int(self.metrics.value("service.failed")),
            "flushed": flushed,
        }
        self._drained.set()
        return summary

    def _flush_obs(self) -> str | None:
        """Fold plan-cache counters into the registry; snapshot to disk."""
        PLAN_CACHE.export_metrics(self.metrics)
        self.metrics.set_gauge("service.queue_depth", 0)
        self.metrics.set_gauge("service.in_flight", 0)
        if self.obs_out is None:
            return None
        import json

        snapshot = {"service": self.stats(), "metrics": self.metrics.to_dict()}
        with open(self.obs_out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return self.obs_out

    def tenant_stats(self) -> dict:
        """Per-tenant counters incl. plan-cache hit rates (JSON-ready)."""
        depths = self.queue.tenant_depths()
        out: dict = {}
        for t in sorted(self._tenants | set(depths)):
            hits = self.metrics.value(f"service.tenant.{t}.plancache.hits")
            misses = self.metrics.value(f"service.tenant.{t}.plancache.misses")
            out[t] = {
                "queued": depths.get(t, 0),
                "submitted": int(self.metrics.value(f"service.tenant.{t}.submitted")),
                "completed": int(self.metrics.value(f"service.tenant.{t}.completed")),
                "rejected": int(self.metrics.value(f"service.tenant.{t}.rejected")),
                "plancache": {
                    "hits": int(hits),
                    "misses": int(misses),
                    "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                },
            }
        return out

    def stats(self) -> dict:
        """The ``stats`` op payload."""
        rejected = {
            "full": int(self.metrics.value("service.rejected.full")),
            "draining": int(self.metrics.value("service.rejected.draining")),
            "bad_request": int(self.metrics.value("service.rejected.bad_request")),
        }
        return {
            "queue_depth": self.queue.depth,
            "in_flight": self.in_flight,
            "draining": self.draining,
            "submitted": int(self.metrics.value("service.submitted")),
            "completed": int(self.metrics.value("service.completed")),
            "failed": int(self.metrics.value("service.failed")),
            "rejected": rejected,
            "batches": int(self.metrics.value("service.batches")),
            "batched_jobs": int(self.metrics.value("service.batched_jobs")),
            "ema_run_ms": round(self._ema_run_ms, 3),
            "executor": {
                "mode": "pool" if self._pool_workers else "inline",
                "tier": self.executor_tier,
                "workers": self._pool_workers or 1,
            },
            "tenants": self.tenant_stats(),
            "plancache": PLAN_CACHE.stats(),
        }


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    stdio: bool = False,
    ready=None,
    **service_opts,
) -> SortingService:
    """Run a server until it drains (the ``repro serve`` entry point).

    ``ready(service, port_or_None)`` is called once the transport is
    listening — the CLI prints the bound port there, tests grab the
    service handle.  Returns the drained service.
    """
    service = SortingService(**service_opts)
    if stdio:
        if ready is not None:
            ready(service, None)
        await service.serve_stdio()
        await service.aclose()
        return service
    server = await service.start_tcp(host, port)
    service.install_signal_handlers()
    bound = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(service, bound)
    async with server:
        await service.drained.wait()
    await service.aclose()
    return service
