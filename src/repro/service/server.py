"""The asyncio job server: admission, fair dispatch, streaming, drain.

One :class:`SortingService` owns the whole pipeline::

    connections --> admission (bounded, per-tenant quotas) --> FairQueue
        --> N dispatcher tasks --> executor (inline thread | warm pool)
        --> result push (scalar, or an arena-backed frame stream)
            back to the submitting connection

Design decisions, in the order they bit:

* **Single-threaded control plane.**  Every queue/counter mutation happens
  on the event-loop thread; only job *execution* leaves it (via
  ``run_in_executor``).  The asyncio :class:`~asyncio.Condition` is purely
  a wakeup/barrier mechanism — dispatchers sleep on it when the queue is
  empty, the drain barrier waits on it for ``depth == 0 and in_flight ==
  0``.
* **Two executors, one job path.**  ``jobs <= 1`` (the default) runs
  batches on a single-thread :class:`~concurrent.futures.ThreadPoolExecutor`
  in-process: the event loop stays responsive while the job computes, and
  every job shares the *same* process-wide plan cache — the configuration
  the cross-tenant cache-sharing benchmark measures.  ``jobs > 1``
  dispatches to a shared warm pool whose tier the ``executor`` knob
  picks: the process pool (:func:`repro.parallel.warm_pool`, default —
  each worker keeps its own process-global cache warm across jobs), the
  warm thread pool (:func:`repro.parallel.warm_thread_pool` — workers
  share the server's cache like the inline executor), or the process
  pool with bulk results returned through :mod:`repro.shm` arenas.
  Per-job cache deltas are computed inside the worker either way, so
  tenant attribution stays exact.
* **Backpressure is an answer, not an exception.**  Admission overflow,
  per-tenant quota/rate rejections and draining all produce normal
  protocol replies (``queue_full``/``rate_limited`` with a
  ``retry_after_ms`` hint — EMA-of-job-cost for queue pressure, the
  token bucket's own refill time for rate limits — and ``draining``);
  nothing is buffered beyond the declared bounds and nothing is silently
  dropped.
* **Results stream; the server never holds them.**  A ``stream: true``
  sort's array lands in a :mod:`repro.shm` arena (any batch containing
  one is dispatched through a parent-named arena, whatever the executor
  tier) and leaves as checksummed frames — shm descriptors for same-host
  clients, length-prefixed binary otherwise — under a bounded in-flight
  window (see :mod:`repro.service.streams`).  The arena carries a read
  lease per streamed job and unlinks when the last consumer signals
  ``stream_done`` (or dies trying: connection teardown releases too).
* **Drain is a barrier, not a kill.**  ``drain()`` (also wired to
  SIGTERM/SIGINT) stops admission, wakes everyone, waits until the queue
  and the in-flight set are empty — results *and result streams*
  included, so no accepted job is ever lost — then flushes observability
  state and trips the drained event that ends ``serve()``.
"""

from __future__ import annotations

import asyncio
import itertools
import re
import signal
import sys
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.obs import MetricsRegistry
from repro.plancache import PLAN_CACHE
from repro.service.jobs import run_job_batch, run_job_batch_shm
from repro.service.protocol import JobSpec, ProtocolError, decode_line, encode
from repro.service.queue import FairQueue, QueueFull, QueuedJob, TokenBucket
from repro.service.streams import (
    DEFAULT_CHUNK_KEYS,
    DEFAULT_WINDOW,
    STREAM_TRANSPORTS,
    frame_checksum,
    plan_frames,
)

__all__ = ["SortingService", "serve"]

_TENANT_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


class _Connection:
    """One client stream: a writer plus the lock that serializes pushes."""

    __slots__ = ("writer", "lock", "closed")

    def __init__(self, writer: asyncio.StreamWriter | None):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, message: dict) -> bool:
        return await self.send_with_payload(message, None)

    async def send_with_payload(self, message: dict, payload: bytes | None) -> bool:
        """Send a message line, optionally followed by raw payload bytes.

        The lock spans both writes: a binary result frame is one atomic
        unit on the wire (header line + exactly ``nbytes`` bytes), and
        concurrent streams on one connection must not interleave inside
        it.
        """
        if self.closed or self.writer is None:
            return False
        data = encode(message)
        async with self.lock:
            try:
                self.writer.write(data)
                if payload is not None:
                    self.writer.write(payload)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                self.closed = True
                return False
        return True


class _Stream:
    """Server-side state of one in-flight result stream."""

    __slots__ = ("job", "transport", "frames", "sent", "acked", "ack_event",
                 "aborted", "lease_name", "lease_released", "awaiting_done")

    def __init__(self, job: QueuedJob, transport: str, frames: int,
                 lease_name: str | None):
        self.job = job
        self.transport = transport
        self.frames = frames
        self.sent = -1
        self.acked = -1
        self.ack_event = asyncio.Event()
        self.aborted = False
        self.lease_name = lease_name
        self.lease_released = lease_name is None
        self.awaiting_done = False

    def release_lease(self) -> None:
        if not self.lease_released:
            from repro import shm

            self.lease_released = True
            shm.release_lease(self.lease_name)


class SortingService:
    """The job server (transport-agnostic core).

    Args:
        jobs: executor width — ``<= 1`` runs jobs on an in-process
            single-thread executor against the server's own plan cache;
            ``> 1`` fans batches out over that many warm pool workers.
        executor: warm-pool tier for ``jobs > 1`` — ``"process"`` (the
            shared process pool), ``"thread"`` (the warm thread pool;
            workers share the server's plan cache like the inline
            executor does), ``"shm"`` (process pool with bulk results
            returned through :mod:`repro.shm` arenas), or
            ``None``/``"auto"`` (consult ``REPRO_EXECUTOR``, else the
            process pool — job payloads are compact, so the pickling
            break-even rarely favors arenas here).  Ignored when
            ``jobs <= 1``.
        max_queued: global admission bound.
        max_queued_per_tenant: per-tenant admission bound.
        batch_max: maximum compatible jobs fused into one executor trip.
        tenant_rate: per-tenant token-bucket admission rate in jobs/sec
            (``None`` = unlimited).  Rejections answer ``rate_limited``
            with ``retry_after_ms`` derived from the bucket's refill.
        tenant_burst: bucket depth (default: ``ceil(tenant_rate)``,
            at least 1) — short bursts admit at full speed.
        max_inflight_per_tenant: cap on one tenant's accepted-but-not-yet-
            delivered jobs (queued + executing + streaming); ``None`` =
            unlimited.
        stream_chunk: keys per streamed result frame.
        stream_window: frames in flight beyond the highest client ack.
        stream_ack_timeout: seconds to wait for window space before a
            stream is declared stalled and aborted (keeps drain finite
            against a dead-but-connected consumer).
        shard_id: label this process carries in stats/metrics when it
            runs as one shard of a :mod:`repro.service.router` deployment.
        metrics: a :class:`repro.obs.MetricsRegistry` to report into (a
            fresh one by default; exposed as ``self.metrics``).
        obs_out: optional path — drain writes a JSON observability snapshot
            (service metrics + plan-cache stats) there.
        log: ``log(text)`` sink for operational messages (stderr default).
    """

    def __init__(
        self,
        jobs: int = 1,
        executor: str | None = None,
        max_queued: int = 1024,
        max_queued_per_tenant: int = 512,
        batch_max: int = 8,
        tenant_rate: float | None = None,
        tenant_burst: int | None = None,
        max_inflight_per_tenant: int | None = None,
        stream_chunk: int = DEFAULT_CHUNK_KEYS,
        stream_window: int = DEFAULT_WINDOW,
        stream_ack_timeout: float = 30.0,
        shard_id: str | None = None,
        metrics: MetricsRegistry | None = None,
        obs_out: str | None = None,
        log=None,
    ):
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if stream_chunk < 1:
            raise ValueError(f"stream_chunk must be >= 1, got {stream_chunk}")
        if stream_window < 1:
            raise ValueError(f"stream_window must be >= 1, got {stream_window}")
        self.queue = FairQueue(max_queued, max_queued_per_tenant)
        self.batch_max = int(batch_max)
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.stream_chunk = int(stream_chunk)
        self.stream_window = int(stream_window)
        self.stream_ack_timeout = float(stream_ack_timeout)
        self.shard_id = shard_id
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.obs_out = obs_out
        self.log = log if log is not None else (
            lambda text: print(text, file=sys.stderr, flush=True))
        self.jobs = int(jobs)
        self._pool_workers = 0
        self.executor_tier = "inline"
        if self.jobs > 1:
            from repro.parallel import (
                resolve_executor,
                warm_pool,
                warm_thread_pool,
            )

            # total=None skips the batch-size degrade guard: pool width is
            # a service-lifetime decision, not a per-batch one.
            tier = resolve_executor(executor, jobs=self.jobs, total=None)
            if tier == "serial":  # nonsensical for a pool; keep status quo
                tier = "process"
            self._pool_workers = self.jobs
            if tier == "thread":
                self._executor = warm_thread_pool(self.jobs)
            else:
                self._executor = warm_pool(self.jobs)
            self.executor_tier = tier
            self._owns_executor = False
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service")
            self._owns_executor = True

        self.draining = False
        self.in_flight = 0
        self._cond: asyncio.Condition | None = None
        self._drained = asyncio.Event()
        self._dispatchers: list[asyncio.Task] = []
        self._seq = itertools.count()
        self._tenants: set[str] = set()
        self._ema_run_ms = 50.0  # seeds the retry-after hint before data
        self._buckets: dict[str, TokenBucket] = {}
        self._tenant_inflight: dict[str, int] = {}
        self._streams: dict[str, _Stream] = {}
        self._stream_tasks: set[asyncio.Task] = set()
        # Gossiped orbit entries waiting to ride dispatches down to pool
        # workers: [entry, remaining rides] pairs (imports are idempotent,
        # so over-delivery is harmless and addressing workers is not
        # needed — ~2 rides per worker makes coverage overwhelmingly
        # likely without unbounded repetition).
        self._orbit_pending: deque = deque()

    # -- lifecycle -----------------------------------------------------------

    def _ensure_started(self) -> None:
        """Create loop-bound state and dispatcher tasks (idempotent)."""
        if self._cond is not None:
            return
        self._cond = asyncio.Condition()
        width = self._pool_workers if self._pool_workers else 1
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"repro-dispatch-{i}")
            for i in range(width)
        ]

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Listen on TCP; returns the server (``port=0`` picks a free one)."""
        self._ensure_started()
        return await asyncio.start_server(self._handle_stream, host, port)

    async def serve_stdio(self) -> None:
        """Speak the protocol over this process's stdin/stdout (tests, CI).

        Returns at stdin EOF, after draining — in-flight jobs complete and
        counters settle even though the peer is gone.
        """
        self._ensure_started()
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin)
        w_transport, w_protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout)
        writer = asyncio.StreamWriter(w_transport, w_protocol, reader, loop)
        await self._handle_stream(reader, writer, close=False)
        if not self._drained.is_set():
            await self.drain()

    def install_signal_handlers(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Wire SIGTERM/SIGINT to a graceful drain (no-op where unsupported)."""
        loop = loop if loop is not None else asyncio.get_running_loop()

        def _drain_now() -> None:
            self.log("signal received: draining (admission closed)")
            asyncio.ensure_future(self.drain())

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _drain_now)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def aclose(self) -> None:
        """Stop dispatchers and release the inline executor (post-drain)."""
        for task in self._dispatchers:
            task.cancel()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        for task in list(self._stream_tasks):
            task.cancel()
        if self._stream_tasks:
            await asyncio.gather(*self._stream_tasks, return_exceptions=True)
        self._stream_tasks.clear()
        for state in list(self._streams.values()):
            state.release_lease()
        self._streams.clear()
        if self._owns_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)

    @property
    def drained(self) -> asyncio.Event:
        """Set once a drain has fully completed."""
        return self._drained

    # -- connection handling -------------------------------------------------

    async def _handle_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        close: bool = True,
    ) -> None:
        conn = _Connection(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._handle_message(line, conn)
                if reply is not None:
                    await conn.send(reply)
        except asyncio.CancelledError:
            # Loop teardown cancels lingering connection handlers; ending
            # the task cleanly keeps 3.11's streams done-callback (which
            # calls task.exception() unguarded) from logging the cancel.
            pass
        finally:
            conn.closed = True
            self._abort_streams_for(conn)
            if close:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

    async def _handle_message(self, line: bytes, conn: _Connection) -> dict | None:
        try:
            msg = decode_line(line)
        except ProtocolError as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        op = msg.get("op")
        rid = msg.get("id")
        if op == "submit":
            return await self._submit(msg, conn)
        if op == "ping":
            return {"ok": True, "op": "pong", "id": rid}
        if op == "stats":
            return {"ok": True, "op": "stats", "id": rid, "stats": self.stats()}
        if op == "drain":
            summary = await self.drain()
            return {"ok": True, "op": "drained", "id": rid, **summary}
        if op == "frame_ack":
            state = self._streams.get(msg.get("job_id"))
            seq = msg.get("seq")
            if state is not None and isinstance(seq, int) and seq > state.acked:
                state.acked = seq
                state.ack_event.set()
            return None
        if op == "stream_done":
            state = self._streams.pop(msg.get("job_id"), None)
            if state is not None:
                state.release_lease()
            return None
        if op == "orbit_pull":
            cursor = msg.get("cursor", 0)
            entries, new_cursor = PLAN_CACHE.export_orbit_entries(
                cursor if isinstance(cursor, int) else 0)
            self.metrics.inc("service.orbit.exported", len(entries))
            return {"ok": True, "op": "orbit_entries", "id": rid,
                    "entries": entries, "cursor": new_cursor}
        if op == "orbit_push":
            entries = msg.get("entries")
            imported = self._import_orbit(
                entries if isinstance(entries, list) else [])
            return {"ok": True, "op": "orbit_imported", "id": rid,
                    "imported": imported}
        return {"ok": False, "error": "bad_request", "id": rid,
                "detail": f"unknown op {op!r}"}

    # -- admission -----------------------------------------------------------

    async def _submit(self, msg: dict, conn: _Connection) -> dict:
        rid = msg.get("id")
        reject = {"ok": False, "op": "submit", "id": rid}
        tenant = msg.get("tenant", "default")
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            self.metrics.inc("service.rejected.bad_request")
            return {**reject, "error": "bad_request",
                    "detail": f"invalid tenant {tenant!r}"}
        transport = msg.get("transport", "binary")
        if transport not in STREAM_TRANSPORTS:
            self.metrics.inc("service.rejected.bad_request")
            return {**reject, "error": "bad_request",
                    "detail": f"transport must be one of {STREAM_TRANSPORTS}, "
                              f"got {transport!r}"}
        try:
            spec = JobSpec.from_dict(msg.get("job"))
        except ProtocolError as exc:
            self.metrics.inc("service.rejected.bad_request")
            return {**reject, "error": "bad_request", "detail": str(exc)}
        if self.draining:
            self.metrics.inc("service.rejected.draining")
            return {**reject, "error": "draining"}
        quota = self._check_quota(tenant)
        if quota is not None:
            return {**reject, **quota}
        job = QueuedJob(
            job_id=f"j{next(self._seq)}",
            tenant=tenant,
            spec=spec,
            client_id=rid,
            conn=conn,
            enqueued_at=time.perf_counter(),
            transport=transport,
        )
        try:
            depth = self.queue.put(job)
        except QueueFull as exc:
            self.metrics.inc("service.rejected.full")
            self.metrics.inc(f"service.tenant.{tenant}.rejected")
            return {**reject, "error": "queue_full", "scope": exc.scope,
                    "retry_after_ms": self._retry_after_ms()}
        self._tenants.add(tenant)
        self._tenant_inflight[tenant] = self._tenant_inflight.get(tenant, 0) + 1
        self.metrics.inc("service.submitted")
        self.metrics.inc(f"service.tenant.{tenant}.submitted")
        self.metrics.set_gauge("service.queue_depth", self.queue.depth)
        async with self._cond:
            self._cond.notify(1)
        return {"ok": True, "op": "submit", "id": rid, "status": "queued",
                "job_id": job.job_id, "queued": depth}

    def _check_quota(self, tenant: str) -> dict | None:
        """Per-tenant quota gate; a rejection payload, or ``None`` = admit.

        Order matters: the inflight cap is checked first so a rejected
        submit never consumes a rate token.
        """
        if self.max_inflight_per_tenant is not None:
            if (self._tenant_inflight.get(tenant, 0)
                    >= self.max_inflight_per_tenant):
                self.metrics.inc("service.rejected.rate_limited")
                self.metrics.inc(f"service.tenant.{tenant}.rejected")
                return {"error": "rate_limited", "scope": "max_inflight",
                        "retry_after_ms": self._retry_after_ms()}
        if self.tenant_rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                burst = self.tenant_burst
                if burst is None:
                    burst = max(1, int(self.tenant_rate + 0.999999))
                bucket = self._buckets[tenant] = TokenBucket(
                    self.tenant_rate, burst)
            wait = bucket.try_take()
            if wait > 0.0:
                self.metrics.inc("service.rejected.rate_limited")
                self.metrics.inc(f"service.tenant.{tenant}.rejected")
                return {"error": "rate_limited", "scope": "jobs_per_sec",
                        "retry_after_ms": max(1, int(wait * 1e3 + 0.5))}
        return None

    def _release_tenant(self, tenant: str) -> None:
        left = self._tenant_inflight.get(tenant, 0) - 1
        if left > 0:
            self._tenant_inflight[tenant] = left
        else:
            self._tenant_inflight.pop(tenant, None)

    def _retry_after_ms(self) -> int:
        """Backpressure hint: time for the backlog to pass one worker."""
        width = max(1, self._pool_workers or 1)
        backlog = self.queue.depth + self.in_flight
        return int(min(30_000, max(50.0, self._ema_run_ms * (backlog / width))))

    # -- orbit gossip --------------------------------------------------------

    def _import_orbit(self, entries: list) -> int:
        """Install orbit entries (gossip push or worker delta) locally.

        Imports land in this process's PLAN_CACHE (warming the inline and
        thread tiers immediately) and, for process-pool tiers, queue up to
        ride upcoming dispatches so pool workers warm lazily too.
        """
        imported = PLAN_CACHE.import_orbit_entries(entries)
        if imported:
            self.metrics.inc("service.orbit.imported", imported)
            if self.executor_tier in ("process", "shm"):
                rides = 2 * max(1, self._pool_workers)
                for entry in entries:
                    self._orbit_pending.append([entry, rides])
        return imported

    def _orbit_piggyback(self) -> list[dict]:
        """Entries to attach to the next dispatch (decrements ride counts)."""
        if not self._orbit_pending:
            return []
        out: list[dict] = []
        keep: deque = deque()
        while self._orbit_pending:
            entry, rides = self._orbit_pending.popleft()
            out.append(entry)
            if rides > 1:
                keep.append([entry, rides - 1])
        self._orbit_pending = keep
        return out

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            async with self._cond:
                while self.queue.depth == 0:
                    await self._cond.wait()
                batch = self.queue.pop_batch(self.batch_max)
                if not batch:  # pragma: no cover - raced another dispatcher
                    continue
                self.in_flight += len(batch)
            self.metrics.set_gauge("service.queue_depth", self.queue.depth)
            self.metrics.set_gauge("service.in_flight", self.in_flight)
            specs = tuple(job.spec for job in batch)
            has_stream = any(job.spec.stream for job in batch)
            use_arena = has_stream or self.executor_tier == "shm"
            arena_name = None
            orbit_entries = self._orbit_piggyback()
            stream_refs: dict[str, object] = {}
            try:
                if use_arena:
                    from repro import shm

                    arena_name = shm.make_name("svcres")
                    shm.register_name(arena_name)
                    args = (specs, arena_name)
                    if orbit_entries:
                        args = args + (orbit_entries,)
                    tagged = await loop.run_in_executor(
                        self._executor, run_job_batch_shm, *args)
                    payloads, stream_refs = self._unpack_batch(
                        batch, tagged, arena_name)
                else:
                    args = (specs, orbit_entries) if orbit_entries else (specs,)
                    payloads = await loop.run_in_executor(
                        self._executor, run_job_batch, *args)
                    stream_refs = self._extract_stream_payloads(batch, payloads)
            except asyncio.CancelledError:
                if arena_name is not None:
                    from repro import shm

                    shm.sweep((arena_name,))
                async with self._cond:
                    self.in_flight -= len(batch)
                    self._cond.notify_all()
                raise
            except Exception as exc:  # broken pool, pickling failure, ...
                self.log(f"batch of {len(batch)} failed in executor: {exc!r}")
                if arena_name is not None:
                    from repro import shm

                    shm.sweep((arena_name,))
                payloads = [
                    {"ok": False, "run_ms": 0.0,
                     "result": {"kind": spec.kind,
                                "error": f"{type(exc).__name__}: {exc}"},
                     "plancache": {"hits": 0, "misses": 0}}
                    for spec in specs
                ]
                stream_refs = {}
            now = time.perf_counter()
            self.metrics.inc("service.batches")
            if len(batch) > 1:
                self.metrics.inc("service.batched_jobs", len(batch) - 1)
            streams = 0
            for job, payload in zip(batch, payloads):
                if isinstance(payload, dict):
                    entries = payload.pop("orbit_entries", None)
                    if entries:
                        self._import_orbit(entries)
                ref = stream_refs.get(job.job_id)
                if ref is not None:
                    streams += 1
                    task = asyncio.create_task(
                        self._deliver_stream(job, payload, ref,
                                             len(batch), now),
                        name=f"repro-stream-{job.job_id}")
                    self._stream_tasks.add(task)
                    task.add_done_callback(self._stream_tasks.discard)
                else:
                    await self._finish_job(job, payload, len(batch), now)
            async with self._cond:
                # Streamed jobs stay in flight until their delivery task
                # (which sends result_end) finishes — the drain barrier
                # must cover them.
                self.in_flight -= len(batch) - streams
                self.metrics.set_gauge("service.in_flight", self.in_flight)
                self._cond.notify_all()

    def _extract_stream_payloads(self, batch, payloads) -> dict:
        """Pop in-memory ``sorted_keys`` arrays for the streamed jobs."""
        refs: dict[str, object] = {}
        for job, payload in zip(batch, payloads):
            if not (job.spec.stream and isinstance(payload, dict)
                    and payload.get("ok")):
                continue
            result = payload.get("result")
            if isinstance(result, dict) and "sorted_keys" in result:
                refs[job.job_id] = result.pop("sorted_keys")
        return refs

    def _unpack_batch(self, batch, tagged: tuple, name: str) -> tuple[list, dict]:
        """Resolve an arena batch, keeping streamed arrays *in* the arena.

        The streamed jobs' ``sorted_keys`` ShmRefs are popped before the
        generic unpack so their payloads are never copied out; the arena
        then takes one read lease per streamed ref (released as each
        stream completes — the last release unlinks).  Everything else is
        copied out as usual.  With no streamed refs the segment is swept
        immediately.
        """
        from repro import shm

        tag, payload_list, _moved = tagged
        if tag == "inline":
            # Below the break-even (or /dev/shm unusable): the named
            # segment was never created — settle the pre-registration.
            shm.sweep((name,))
            return payload_list, self._extract_stream_payloads(
                batch, payload_list)
        refs: dict[str, object] = {}
        for job, payload in zip(batch, payload_list):
            if not (job.spec.stream and isinstance(payload, dict)
                    and payload.get("ok")):
                continue
            result = payload.get("result")
            if isinstance(result, dict) and "sorted_keys" in result:
                refs[job.job_id] = result.pop("sorted_keys")
        cache = shm._AttachCache()
        try:
            payloads = [shm.unpack(item, cache) for item in payload_list]
        finally:
            cache.close()
        leases = sum(1 for ref in refs.values() if isinstance(ref, shm.ShmRef))
        if leases:
            shm.acquire_lease(name, leases)
        else:
            shm.sweep((name,))
        return payloads, refs

    # -- result delivery -----------------------------------------------------

    def _account_job(self, job: QueuedJob, payload: dict, now: float) -> dict:
        """Fold one finished job into metrics/EMA; return the timing trio."""
        run_ms = float(payload["run_ms"])
        latency_ms = (now - job.enqueued_at) * 1e3
        queue_ms = max(0.0, latency_ms - run_ms)
        self._ema_run_ms += 0.2 * (run_ms - self._ema_run_ms)
        t = job.tenant
        self.metrics.inc("service.completed" if payload["ok"] else "service.failed")
        self.metrics.inc(f"service.tenant.{t}.completed")
        pc = payload.get("plancache", {})
        self.metrics.inc(f"service.tenant.{t}.plancache.hits",
                         max(0, pc.get("hits", 0)))
        self.metrics.inc(f"service.tenant.{t}.plancache.misses",
                         max(0, pc.get("misses", 0)))
        self.metrics.observe("service.run_ms", run_ms)
        self.metrics.observe("service.queue_ms", queue_ms)
        self.metrics.observe("service.latency_ms", latency_ms)
        return {"run_ms": round(run_ms, 3), "queue_ms": round(queue_ms, 3),
                "latency_ms": round(latency_ms, 3)}

    async def _finish_job(
        self, job: QueuedJob, payload: dict, batch_size: int, now: float
    ) -> None:
        timing = self._account_job(job, payload, now)
        self._release_tenant(job.tenant)
        message = {
            "ok": payload["ok"],
            "op": "result",
            "id": job.client_id,
            "job_id": job.job_id,
            "tenant": job.tenant,
            "result": payload["result"],
            **timing,
            "batched": batch_size,
        }
        if job.conn is not None:
            await job.conn.send(message)

    async def _deliver_stream(
        self, job: QueuedJob, payload: dict, ref, batch_size: int, now: float
    ) -> None:
        """Send one streamed result: header, windowed frames, trailer.

        Runs as its own task so a slow consumer throttles only its stream
        (the bounded window blocks *here*, not in the dispatcher); the job
        stays in flight — and its tenant quota held — until the trailer
        is out.
        """
        from repro import shm

        import numpy as np

        is_ref = isinstance(ref, shm.ShmRef)
        # A shm transport is only deliverable when the payload actually
        # lives in a segment; otherwise (tiny array, no /dev/shm) the
        # header downgrades to binary and the client follows it.
        transport = job.transport if is_ref else "binary"
        dtype = ref.dtype if is_ref else ref.dtype.str
        itemsize = np.dtype(dtype).itemsize
        count = (ref.nbytes // itemsize) if is_ref else int(ref.size)
        frames = plan_frames(count, self.stream_chunk)
        state = _Stream(job, transport, len(frames),
                        ref.segment if is_ref else None)
        self._streams[job.job_id] = state
        arena = None
        sent_bytes = 0
        ok = True
        error: str | None = None
        try:
            timing = self._account_job(job, payload, now)
            header = {
                "ok": True,
                "op": "result_header",
                "id": job.client_id,
                "job_id": job.job_id,
                "tenant": job.tenant,
                "frames": len(frames),
                "count": count,
                "dtype": dtype,
                "chunk": self.stream_chunk,
                "transport": transport,
                "batched": batch_size,
            }
            if job.conn is None or not await job.conn.send(header):
                ok, error = False, "client_gone"
                return
            if is_ref:
                arena = shm.Arena.attach(ref.segment)
            for seq, (start, length) in enumerate(frames):
                if state.aborted or (job.conn and job.conn.closed):
                    ok, error = False, "client_gone"
                    return
                try:
                    await self._window_wait(state)
                except asyncio.TimeoutError:
                    ok, error = False, "stream_stalled"
                    return
                if state.aborted:
                    ok, error = False, "client_gone"
                    return
                chunk = (arena.view(ref, start, length) if is_ref
                         else ref[start:start + length])
                n, total = frame_checksum(chunk)
                frame = {
                    "op": "result_frame",
                    "job_id": job.job_id,
                    "seq": seq,
                    "count": n,
                    "sum": total,
                }
                if transport == "shm":
                    frame["shm"] = {
                        "segment": ref.segment,
                        "offset": ref.offset + start * itemsize,
                        "nbytes": length * itemsize,
                        "kind": "ndarray",
                        "shape": [length],
                        "dtype": dtype,
                    }
                    sent = await job.conn.send(frame)
                    sent_bytes += length * itemsize
                else:
                    data = chunk.tobytes()
                    frame["nbytes"] = len(data)
                    sent = await job.conn.send_with_payload(frame, data)
                    sent_bytes += len(data)
                if not sent:
                    ok, error = False, "client_gone"
                    return
                state.sent = seq
                self.metrics.inc("service.stream.frames")
                self.metrics.inc("service.stream.bytes", length * itemsize)
            trailer = {
                "ok": payload["ok"],
                "op": "result_end",
                "id": job.client_id,
                "job_id": job.job_id,
                "tenant": job.tenant,
                "result": payload["result"],
                "frames": len(frames),
                "count": count,
                **timing,
                "batched": batch_size,
            }
            await job.conn.send(trailer)
            self.metrics.inc("service.stream.jobs")
        finally:
            if arena is not None:
                arena.release()
            if not ok:
                self.metrics.inc("service.stream.aborted")
                state.release_lease()
                self._streams.pop(job.job_id, None)
                if error != "client_gone" and job.conn is not None:
                    await job.conn.send({
                        "ok": False, "op": "result_end", "id": job.client_id,
                        "job_id": job.job_id, "tenant": job.tenant,
                        "error": error, "retryable": True,
                        "result": {"kind": job.spec.kind, "error": error},
                    })
            elif transport != "shm":
                # Binary frames were copied onto the wire; nothing reads
                # the arena after this, so the lease drops now.  A shm
                # stream instead waits for the client's stream_done.
                state.release_lease()
                self._streams.pop(job.job_id, None)
            else:
                state.awaiting_done = True
            self._release_tenant(job.tenant)
            async with self._cond:
                self.in_flight -= 1
                self.metrics.set_gauge("service.in_flight", self.in_flight)
                self._cond.notify_all()

    async def _window_wait(self, state: _Stream) -> None:
        """Block until the in-flight frame window has room (or timeout)."""
        while (state.sent - state.acked >= self.stream_window
               and not state.aborted):
            state.ack_event.clear()
            await asyncio.wait_for(state.ack_event.wait(),
                                   self.stream_ack_timeout)

    def _abort_streams_for(self, conn: _Connection) -> None:
        """Connection teardown: abort/release every stream bound to it."""
        for job_id, state in list(self._streams.items()):
            if state.job.conn is conn:
                state.aborted = True
                state.ack_event.set()
                if state.awaiting_done:
                    state.release_lease()
                    self._streams.pop(job_id, None)

    # -- drain + reporting -----------------------------------------------------

    async def drain(self) -> dict:
        """Stop admitting, finish every in-flight/queued job, flush obs.

        Idempotent; concurrent callers all return once the barrier clears.
        No accepted job is lost: the barrier counts a job as in-flight
        until its result — the full frame stream, for streamed jobs — has
        been pushed.
        """
        self._ensure_started()
        self.draining = True
        async with self._cond:
            self._cond.notify_all()
            await self._cond.wait_for(
                lambda: self.queue.depth == 0 and self.in_flight == 0)
        flushed = self._flush_obs()
        summary = {
            "completed": int(self.metrics.value("service.completed")),
            "failed": int(self.metrics.value("service.failed")),
            "flushed": flushed,
        }
        self._drained.set()
        return summary

    def _flush_obs(self) -> str | None:
        """Fold plan-cache counters into the registry; snapshot to disk."""
        PLAN_CACHE.export_metrics(self.metrics)
        self.metrics.set_gauge("service.queue_depth", 0)
        self.metrics.set_gauge("service.in_flight", 0)
        if self.obs_out is None:
            return None
        import json

        snapshot = {"service": self.stats(), "metrics": self.metrics.to_dict()}
        with open(self.obs_out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return self.obs_out

    def tenant_stats(self) -> dict:
        """Per-tenant counters incl. plan-cache hit rates (JSON-ready)."""
        depths = self.queue.tenant_depths()
        out: dict = {}
        for t in sorted(self._tenants | set(depths)):
            hits = self.metrics.value(f"service.tenant.{t}.plancache.hits")
            misses = self.metrics.value(f"service.tenant.{t}.plancache.misses")
            out[t] = {
                "queued": depths.get(t, 0),
                "inflight": self._tenant_inflight.get(t, 0),
                "submitted": int(self.metrics.value(f"service.tenant.{t}.submitted")),
                "completed": int(self.metrics.value(f"service.tenant.{t}.completed")),
                "rejected": int(self.metrics.value(f"service.tenant.{t}.rejected")),
                "plancache": {
                    "hits": int(hits),
                    "misses": int(misses),
                    "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                },
            }
        return out

    def stats(self) -> dict:
        """The ``stats`` op payload."""
        rejected = {
            "full": int(self.metrics.value("service.rejected.full")),
            "draining": int(self.metrics.value("service.rejected.draining")),
            "bad_request": int(self.metrics.value("service.rejected.bad_request")),
            "rate_limited": int(
                self.metrics.value("service.rejected.rate_limited")),
        }
        out = {
            "queue_depth": self.queue.depth,
            "in_flight": self.in_flight,
            "draining": self.draining,
            "submitted": int(self.metrics.value("service.submitted")),
            "completed": int(self.metrics.value("service.completed")),
            "failed": int(self.metrics.value("service.failed")),
            "rejected": rejected,
            "batches": int(self.metrics.value("service.batches")),
            "batched_jobs": int(self.metrics.value("service.batched_jobs")),
            "ema_run_ms": round(self._ema_run_ms, 3),
            "executor": {
                "mode": "pool" if self._pool_workers else "inline",
                "tier": self.executor_tier,
                "workers": self._pool_workers or 1,
            },
            "streams": {
                "jobs": int(self.metrics.value("service.stream.jobs")),
                "frames": int(self.metrics.value("service.stream.frames")),
                "bytes": int(self.metrics.value("service.stream.bytes")),
                "aborted": int(self.metrics.value("service.stream.aborted")),
                "open": len(self._streams),
            },
            "orbit": {
                "imported": int(self.metrics.value("service.orbit.imported")),
                "exported": int(self.metrics.value("service.orbit.exported")),
            },
            "tenants": self.tenant_stats(),
            "plancache": PLAN_CACHE.stats(),
        }
        if self.shard_id is not None:
            out["shard_id"] = self.shard_id
        return out


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    stdio: bool = False,
    ready=None,
    **service_opts,
) -> SortingService:
    """Run a server until it drains (the ``repro serve`` entry point).

    ``ready(service, port_or_None)`` is called once the transport is
    listening — the CLI prints the bound port there, tests grab the
    service handle.  Returns the drained service.
    """
    service = SortingService(**service_opts)
    if stdio:
        if ready is not None:
            ready(service, None)
        await service.serve_stdio()
        await service.aclose()
        return service
    server = await service.start_tcp(host, port)
    service.install_signal_handlers()
    bound = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(service, bound)
    async with server:
        await service.drained.wait()
    await service.aclose()
    return service
