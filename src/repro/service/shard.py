"""Shard processes: spawning, readiness, teardown, crash reclamation.

A *shard* is one ordinary :class:`~repro.service.server.SortingService`
process (started via ``python -m repro.cli serve``) with its own event
loop, warm pool and process-global plan cache.  The
:class:`ShardManager` owns N of them: it spawns each with

* ``--port 0 --port-file ...`` — the shard picks a free port and writes
  it once listening, which doubles as the readiness signal;
* ``REPRO_SHM_TAG`` — a per-shard token folded into every shared-memory
  segment name the shard (or its pool workers) ever creates, so the
  router can reclaim a crashed shard's ``/dev/shm`` segments with one
  :func:`repro.shm.sweep_prefix` glob even after ``kill -9`` skipped the
  shard's own exit-time sweep;
* ``REPRO_SHARD_COUNT`` — lets ``--jobs auto`` inside the shard divide
  the machine's CPUs by the number of sibling shards instead of
  oversubscribing N pools x all cores (see
  :func:`repro.parallel.shard_slice`).

Teardown mirrors the single-server contract: SIGTERM each shard (its
signal handler drains — every accepted job completes), wait, escalate to
SIGKILL only for stragglers, then sweep each shard's segment prefix.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.shm import ARENA_PREFIX, sweep_prefix

__all__ = ["ShardInfo", "ShardManager"]


@dataclass
class ShardInfo:
    """One running shard, as the router sees it."""

    id: str
    host: str
    port: int
    pid: int
    shm_prefix: str
    proc: object = field(default=None, repr=False)

    def to_dict(self) -> dict:
        return {"id": self.id, "host": self.host, "port": self.port,
                "pid": self.pid, "shm_prefix": self.shm_prefix}


class ShardManager:
    """Spawn and supervise ``count`` shard server subprocesses.

    Args:
        count: number of shards.
        jobs / executor / batch_max / max_queued / max_queued_per_tenant /
            tenant_rate / tenant_burst / tenant_max_inflight: forwarded to
            each shard's ``serve`` flags (``None`` = the shard's default).
        python: interpreter for the shard processes (this one by default).
        startup_timeout: seconds to wait for every port file.
    """

    def __init__(
        self,
        count: int,
        *,
        host: str = "127.0.0.1",
        jobs: str | int | None = None,
        executor: str | None = None,
        batch_max: int | None = None,
        max_queued: int | None = None,
        max_queued_per_tenant: int | None = None,
        tenant_rate: float | None = None,
        tenant_burst: int | None = None,
        tenant_max_inflight: int | None = None,
        python: str | None = None,
        startup_timeout: float = 20.0,
    ):
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        self.count = int(count)
        self.host = host
        self.jobs = jobs
        self.executor = executor
        self.batch_max = batch_max
        self.max_queued = max_queued
        self.max_queued_per_tenant = max_queued_per_tenant
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.tenant_max_inflight = tenant_max_inflight
        self.python = python if python is not None else sys.executable
        self.startup_timeout = float(startup_timeout)
        self.shards: list[ShardInfo] = []
        self._tmpdir: tempfile.TemporaryDirectory | None = None

    def _shard_args(self, port_file: str) -> list[str]:
        args = [self.python, "-m", "repro.cli", "serve",
                "--host", self.host, "--port", "0", "--port-file", port_file]
        if self.jobs is not None:
            args += ["--jobs", str(self.jobs)]
        if self.executor is not None:
            args += ["--executor", self.executor]
        if self.batch_max is not None:
            args += ["--batch-max", str(self.batch_max)]
        if self.max_queued is not None:
            args += ["--max-queued", str(self.max_queued)]
        if self.max_queued_per_tenant is not None:
            args += ["--max-queued-per-tenant", str(self.max_queued_per_tenant)]
        if self.tenant_rate is not None:
            args += ["--tenant-rate", str(self.tenant_rate)]
        if self.tenant_burst is not None:
            args += ["--tenant-burst", str(self.tenant_burst)]
        if self.tenant_max_inflight is not None:
            args += ["--tenant-max-inflight", str(self.tenant_max_inflight)]
        return args

    async def start(self) -> list[ShardInfo]:
        """Spawn every shard; returns once all are listening.

        Raises:
            RuntimeError: a shard exited or missed the startup timeout
                (everything already spawned is torn down first).
        """
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
        src_dir = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        procs = []
        try:
            for i in range(self.count):
                tag = f"sh{os.getpid()}x{i}"
                port_file = os.path.join(self._tmpdir.name, f"shard{i}.port")
                env = {
                    **os.environ,
                    "REPRO_SHM_TAG": tag,
                    "REPRO_SHARD_COUNT": str(self.count),
                    "PYTHONPATH": src_dir + (
                        os.pathsep + os.environ["PYTHONPATH"]
                        if os.environ.get("PYTHONPATH") else ""),
                }
                proc = await asyncio.create_subprocess_exec(
                    *self._shard_args(port_file), env=env,
                    stdout=asyncio.subprocess.DEVNULL)
                procs.append((i, tag, port_file, proc))
            deadline = time.monotonic() + self.startup_timeout
            for i, tag, port_file, proc in procs:
                port = await self._await_port(proc, port_file, deadline, i)
                self.shards.append(ShardInfo(
                    id=f"s{i}", host=self.host, port=port, pid=proc.pid,
                    shm_prefix=f"{ARENA_PREFIX}_{tag}_", proc=proc))
        except Exception:
            for _i, tag, _pf, proc in procs:
                if proc.returncode is None:
                    proc.kill()
                sweep_prefix(f"{ARENA_PREFIX}_{tag}_")
            self.shards.clear()
            raise
        return self.shards

    async def _await_port(self, proc, port_file: str, deadline: float,
                          index: int) -> int:
        while time.monotonic() < deadline:
            if proc.returncode is not None:
                raise RuntimeError(
                    f"shard {index} exited with {proc.returncode} at startup")
            try:
                with open(port_file, encoding="utf-8") as fh:
                    text = fh.read().strip()
                if text:
                    return int(text)
            except (OSError, ValueError):
                pass
            await asyncio.sleep(0.02)
        raise RuntimeError(f"shard {index} did not come up within "
                           f"{self.startup_timeout}s")

    async def stop(self, timeout: float = 30.0) -> None:
        """Drain every live shard (SIGTERM), reap, reclaim segments."""
        for shard in self.shards:
            proc = shard.proc
            if proc is not None and proc.returncode is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except ProcessLookupError:  # pragma: no cover - just died
                    pass
        waits = [asyncio.create_task(shard.proc.wait())
                 for shard in self.shards
                 if shard.proc is not None and shard.proc.returncode is None]
        if waits:
            done, pending = await asyncio.wait(waits, timeout=timeout)
            if pending:
                for shard in self.shards:
                    proc = shard.proc
                    if proc is not None and proc.returncode is None:
                        proc.kill()
                await asyncio.gather(*pending, return_exceptions=True)
        for shard in self.shards:
            sweep_prefix(shard.shm_prefix)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def write_shards_file(self, path: str) -> None:
        """Record the shard topology as JSON (CI smoke reads pids/prefixes)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump([s.to_dict() for s in self.shards], fh, indent=2)
            fh.write("\n")
