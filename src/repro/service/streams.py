"""Result streaming: frame planning + ABFT checksums (server and client).

A streamed sort result never crosses the wire as one pickled/JSON blob.
The server chunks the arena-resident sorted array into frames of
``chunk`` keys and sends::

    result_header   frames, count, dtype, chunk, transport
    result_frame    seq, count, sum, then the payload:
                      transport "shm"    -> a ShmRef descriptor dict (the
                                            client reads the chunk straight
                                            out of the arena: zero-copy)
                      transport "binary" -> "nbytes" + that many raw bytes
                                            immediately after the line
    ...
    result_end      the usual result summary + stream totals

Flow control is a bounded in-flight window: the server stops sending when
``sent - acked >= window`` and resumes on the client's ``frame_ack``; the
client acks a frame only after materializing and verifying it, so a slow
consumer throttles the producer instead of ballooning either side's
memory.  Every frame carries the ABFT pair the checksum-sorting literature
uses — element count and exact float64 sum — computed on the arena view
at send time and recomputed on the materialized chunk at receive time;
numpy's pairwise summation is deterministic for identical buffers, so the
comparison is exact, not a tolerance.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_KEYS",
    "DEFAULT_WINDOW",
    "STREAM_TRANSPORTS",
    "StreamChecksumError",
    "StreamError",
    "frame_checksum",
    "plan_frames",
    "verify_frame",
]

#: Keys per frame (512 KiB of float64) — small enough that a client
#: holding one materialized chunk stays far under the whole-array RSS,
#: large enough that per-frame overhead is noise.
DEFAULT_CHUNK_KEYS = 1 << 16

#: Frames the server may have in flight beyond the highest ack.
DEFAULT_WINDOW = 8

STREAM_TRANSPORTS = ("binary", "shm")


class StreamError(RuntimeError):
    """A stream ended abnormally (shard died, stalled, server error).

    Attributes:
        message: the terminating protocol message.
        retryable: the server/router marked the failure safe to resubmit.
    """

    def __init__(self, message: dict):
        self.message = dict(message)
        self.retryable = bool(message.get("retryable"))
        super().__init__(message.get("error") or "stream failed")


class StreamChecksumError(StreamError):
    """A frame's ABFT count/sum did not match its materialized payload."""


def plan_frames(count: int, chunk: int) -> list[tuple[int, int]]:
    """``(start, length)`` per frame for ``count`` keys chunked by ``chunk``."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    if count <= 0:
        return [(0, 0)]
    return [(start, min(chunk, count - start))
            for start in range(0, count, chunk)]


def frame_checksum(chunk: np.ndarray) -> tuple[int, float]:
    """The ABFT pair for one frame: ``(element count, exact float64 sum)``."""
    arr = np.asarray(chunk)
    return int(arr.size), float(arr.sum(dtype=np.float64))


def verify_frame(msg: dict, chunk: np.ndarray) -> None:
    """Recompute a materialized frame's checksum against its header.

    Raises:
        StreamChecksumError: on any count or sum mismatch — corrupted
            transport, torn shm read, or a server bug; never ignorable.
    """
    count, total = frame_checksum(chunk)
    if count != msg.get("count") or total != msg.get("sum"):
        raise StreamChecksumError({
            "error": "frame_checksum",
            "seq": msg.get("seq"),
            "expected": {"count": msg.get("count"), "sum": msg.get("sum")},
            "got": {"count": count, "sum": total},
        })
