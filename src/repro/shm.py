"""Shared-memory arenas: zero-pickle transport for bulk task payloads.

The process-pool executor pays for every key block and result array twice
per hop: ``pickle.dumps`` in the sender, a pipe write/read bounded by the
OS pipe buffer, and ``pickle.loads`` in the receiver.  For the simulator's
payloads — large contiguous float arrays, rendered SVG/CSV artifacts —
that serialization is pure overhead: the bytes are already in exactly the
layout the other side wants.  This module provides the alternative the
ABFT literature's "touch the data once" principle asks for: the bulk
payload is written into a named :class:`multiprocessing.shared_memory`
segment (an *arena*) and the object graph that crosses the process
boundary carries only tiny :class:`ShmRef` descriptors —
``(segment, offset, shape, dtype)`` — in its place.

Design rules, chosen so lifecycle stays provable:

* **Write once, copy out.**  An arena is bump-allocated by its creator,
  then treated as immutable.  Readers *copy* payloads out and close their
  mapping immediately (zero-*pickle*, not zero-copy) — so no object that
  outlives the arena can dangle into freed shared memory.
* **Deterministic names, parent-side registry.**  Segment names embed the
  creating PID and a monotonic counter, and every name the parent expects
  to exist is recorded in a module registry *before* any worker creates
  it.  Teardown — normal completion, interrupt, or exit — sweeps the
  registry with :func:`sweep` (attach + unlink, absent names ignored), so
  an aborted run cannot leave orphaned ``/dev/shm`` segments behind.
* **Small payloads stay pickled.**  Below :data:`LEAF_MIN_BYTES` the
  descriptor + attach + copy round-trip costs more than ``pickle`` does;
  packing leaves such leaves inline (see docs/PERFORMANCE.md for the
  break-even measurement).

:mod:`repro.parallel` is the only intended consumer (its ``executor=
"shm"`` tier), but the pack/unpack helpers are generic: they walk tuples,
lists and dicts, and lift :class:`numpy.ndarray`, :class:`bytes` and
:class:`str` leaves into the arena.
"""

from __future__ import annotations

import itertools
import os
import threading

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def _untrack(name: str) -> None:
    """Send one unregister for ``name`` to this process's OS tracker.

    Python 3.11 registers a segment with the per-process resource tracker
    on *attach* as well as on create, and ``SharedMemory.unlink`` sends
    exactly one unregister — so any segment observed more than once in a
    process (read then swept), or owned by a different process than the
    one that unlinks it, leaves the trackers unbalanced: a dangling entry
    prints "leaked shared_memory objects" warnings at shutdown, a missing
    one prints KeyError tracebacks.  Lifecycle here is owned by this
    module's name registry, so every non-owning observation is untracked
    immediately (``Arena.release``, worker-side named creates) and
    :func:`sweep` settles the owner's entry via :data:`_TRACKED`.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass

__all__ = [
    "ARENA_PREFIX",
    "Arena",
    "LEAF_MIN_BYTES",
    "ShmRef",
    "acquire_lease",
    "collect_leaf_bytes",
    "lease_count",
    "make_name",
    "pack",
    "pack_results",
    "payload_nbytes",
    "registered_names",
    "register_name",
    "release_lease",
    "shm_available",
    "sweep",
    "sweep_prefix",
    "sweep_registered",
    "unpack",
    "unpack_results",
]

#: Prefix of every segment this module creates (leak tests glob for it).
ARENA_PREFIX = "repro_shm"

#: Per-leaf break-even: payloads smaller than this pickle faster than a
#: descriptor + attach + memcpy round-trip (measured; docs/PERFORMANCE.md).
LEAF_MIN_BYTES = 4096

#: 64-byte slot alignment keeps ndarray views cache-line aligned.
_ALIGN = 64

_counter = itertools.count()
_lock = threading.Lock()
#: Names this process is responsible for sweeping (created here, or
#: assigned to a worker by a run that may be torn down mid-flight).
_LIVE: set[str] = set()
#: Names whose *create* registration still sits in this process's OS
#: resource tracker.  The tracker's cache is message-driven: every
#: register must be matched by exactly one unregister (a missing one
#: prints "leaked shared_memory" warnings at exit, an extra one prints a
#: KeyError traceback), so ownership transfers are tracked explicitly.
_TRACKED: set[str] = set()


def shm_available() -> bool:
    """True when POSIX shared memory is usable on this platform."""
    return _shared_memory is not None


def make_name(tag: str) -> str:
    """A fresh segment name: prefix [+ env tag] + creating PID + tag + counter.

    ``REPRO_SHM_TAG`` (set by the shard manager for each shard process and
    inherited by its pool workers) is folded in right after the prefix, so
    every segment a shard — or anything it spawned — creates is reclaimable
    by a ``sweep_prefix`` glob even after a ``kill -9`` that skipped the
    process's own exit-time sweep.
    """
    env_tag = os.environ.get("REPRO_SHM_TAG", "")
    env_tag = "".join(c for c in env_tag if c.isalnum() or c in "_-")
    if env_tag:
        return f"{ARENA_PREFIX}_{env_tag}_{os.getpid()}_{tag}_{next(_counter)}"
    return f"{ARENA_PREFIX}_{os.getpid()}_{tag}_{next(_counter)}"


def register_name(name: str) -> None:
    """Record ``name`` for teardown sweeps (idempotent)."""
    with _lock:
        _LIVE.add(name)


def deregister_name(name: str) -> None:
    """Forget ``name`` (its segment was consumed and unlinked)."""
    with _lock:
        _LIVE.discard(name)


def registered_names() -> tuple[str, ...]:
    """Snapshot of the names currently registered for sweeping."""
    with _lock:
        return tuple(_LIVE)


def sweep(names) -> int:
    """Unlink every named segment that still exists; return how many did.

    Absent names are ignored — the registry records *expected* segments,
    and a worker cancelled before creating its result segment is the
    normal case, not an error.
    """
    removed = 0
    if _shared_memory is None:
        return removed
    for name in names:
        try:
            seg = _shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - platform quirk
            pass
        else:
            seg.close()
            try:
                seg.unlink()
                removed += 1
            except FileNotFoundError:  # pragma: no cover - raced another sweep
                pass
        # The attach/unlink pair above is self-balancing; a segment this
        # process *created* (and merely closed) still has its create
        # registration outstanding — settle it now.
        with _lock:
            created_here = name in _TRACKED
            _TRACKED.discard(name)
        if created_here:
            _untrack(name)
        deregister_name(name)
    return removed


def sweep_registered() -> int:
    """Sweep every registered name (teardown / atexit hook)."""
    return sweep(registered_names())


def sweep_prefix(prefix: str) -> int:
    """Unlink every ``/dev/shm`` segment whose name starts with ``prefix``.

    Crash cleanup: a process killed with SIGKILL never runs its exit-time
    sweep, so its registry dies with it.  The shard manager instead derives
    each shard's segment names from a ``REPRO_SHM_TAG`` it chose (see
    :func:`make_name`) and globs the tag's prefix here when the shard
    dies.  Only names under :data:`ARENA_PREFIX` may be swept; returns the
    number of segments removed (0 where ``/dev/shm`` does not exist).
    """
    if not prefix.startswith(ARENA_PREFIX):
        raise ValueError(
            f"refusing to sweep outside {ARENA_PREFIX!r}: {prefix!r}")
    try:
        names = [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]
    except OSError:  # pragma: no cover - non-Linux platform
        return 0
    return sweep(names)


#: Read leases on named segments: a streamed result's arena stays alive
#: until every stream reading from it has signalled ``stream_done``; the
#: last :func:`release_lease` unlinks it.
_LEASES: dict[str, int] = {}


def acquire_lease(name: str, count: int = 1) -> int:
    """Take ``count`` read leases on ``name``; return the new total."""
    with _lock:
        total = _LEASES.get(name, 0) + int(count)
        _LEASES[name] = total
        return total


def lease_count(name: str) -> int:
    """Outstanding leases on ``name`` (0 once released/unlinked)."""
    with _lock:
        return _LEASES.get(name, 0)


def release_lease(name: str) -> int:
    """Drop one lease; unlink the segment when the last one goes.

    Releasing an unleased name sweeps it immediately — the caller is
    declaring the segment dead either way.  Returns the leases left.
    """
    with _lock:
        left = _LEASES.get(name, 0) - 1
        if left > 0:
            _LEASES[name] = left
        else:
            _LEASES.pop(name, None)
            left = 0
    if left == 0:
        sweep((name,))
    return left


class ShmRef:
    """Descriptor of one payload placed in an arena.

    A tiny, cheaply-picklable stand-in that crosses the process boundary
    instead of the payload itself.  ``kind`` is ``"ndarray"``, ``"bytes"``
    or ``"str"``; ``shape``/``dtype`` are meaningful for arrays only.
    """

    __slots__ = ("segment", "offset", "nbytes", "kind", "shape", "dtype")

    def __init__(self, segment: str, offset: int, nbytes: int, kind: str,
                 shape: tuple = (), dtype: str = ""):
        self.segment = segment
        self.offset = offset
        self.nbytes = nbytes
        self.kind = kind
        self.shape = shape
        self.dtype = dtype

    def __reduce__(self):
        return (ShmRef, (self.segment, self.offset, self.nbytes, self.kind,
                         self.shape, self.dtype))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShmRef({self.segment}+{self.offset}, {self.nbytes}B, "
                f"{self.kind}{self.shape})")


def _leaf_nbytes(obj) -> int:
    """Arena-eligible payload size of a leaf, or 0 when not eligible."""
    if isinstance(obj, np.ndarray):
        return 0 if obj.dtype.hasobject else int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        # Conservative size without encoding twice; exact length is
        # computed at placement time.
        return len(obj)
    return 0


def payload_nbytes(obj, _depth: int = 0) -> int:
    """Total bulk-payload bytes reachable in ``obj`` (containers walked).

    This is the volume a process-pool hop would have to pickle; the
    executor benchmark reports it as "pickled bytes" per tier.
    """
    if _depth > 8:
        return 0
    size = _leaf_nbytes(obj)
    if size:
        return size
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(item, _depth + 1) for item in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(item, _depth + 1) for item in obj.values())
    return 0


def collect_leaf_bytes(obj, _depth: int = 0) -> int:
    """Aligned arena size needed to pack ``obj`` (eligible leaves only)."""
    if _depth > 8:
        return 0
    size = _leaf_nbytes(obj)
    if size:
        return 0 if size < LEAF_MIN_BYTES else -(-size // _ALIGN) * _ALIGN + _ALIGN
    if isinstance(obj, (tuple, list)):
        return sum(collect_leaf_bytes(item, _depth + 1) for item in obj)
    if isinstance(obj, dict):
        return sum(collect_leaf_bytes(item, _depth + 1) for item in obj.values())
    return 0


class Arena:
    """One shared-memory segment, bump-allocated by its creator.

    Create with :meth:`create` (fresh segment, registered for sweeping) or
    :meth:`attach` (read side).  ``place`` copies a payload in and returns
    its :class:`ShmRef`; ``read`` copies a payload out.  ``close`` drops
    this process's mapping; ``unlink`` destroys the segment system-wide.
    """

    def __init__(self, seg, name: str, created: bool):
        self._seg = seg
        self.name = name
        self.created = created
        self._cursor = 0
        self.used = 0

    @classmethod
    def create(cls, tag_or_name: str, size: int, named: bool = False) -> "Arena":
        """Allocate a fresh segment (named exactly, or by a fresh tag)."""
        if _shared_memory is None:
            raise OSError("shared memory is not available on this platform")
        name = tag_or_name if named else make_name(tag_or_name)
        seg = _shared_memory.SharedMemory(name=name, create=True,
                                          size=max(int(size), 1))
        if named:
            # Parent-assigned name: the parent pre-registered it for
            # sweeping and will unlink it, so this (worker) process must
            # not hold a tracker entry the parent's unlink never clears.
            _untrack(name)
        else:
            with _lock:
                _TRACKED.add(name)
        register_name(name)
        return cls(seg, name, created=True)

    @classmethod
    def attach(cls, name: str) -> "Arena":
        if _shared_memory is None:
            raise OSError("shared memory is not available on this platform")
        return cls(_shared_memory.SharedMemory(name=name), name, created=False)

    def place(self, obj) -> ShmRef:
        """Copy one eligible leaf into the arena; return its descriptor."""
        if isinstance(obj, np.ndarray):
            arr = np.ascontiguousarray(obj)
            ref = ShmRef(self.name, self._cursor, arr.nbytes, "ndarray",
                         arr.shape, arr.dtype.str)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._seg.buf,
                              offset=self._cursor)
            view[...] = arr
            payload = arr.nbytes
        else:
            data = obj.encode("utf-8") if isinstance(obj, str) else bytes(obj)
            kind = "str" if isinstance(obj, str) else "bytes"
            ref = ShmRef(self.name, self._cursor, len(data), kind)
            self._seg.buf[self._cursor:self._cursor + len(data)] = data
            payload = len(data)
        self._cursor += -(-payload // _ALIGN) * _ALIGN
        self.used += payload
        return ref

    def view(self, ref: ShmRef, start: int = 0, count: int | None = None):
        """Zero-copy ndarray view of (a slice of) an array payload.

        ``start``/``count`` are in elements of the ref's dtype.  The view
        aliases the mapping — valid only while this arena stays open; the
        streaming server copies nothing, computes frame checksums on the
        view, and drops it before release.
        """
        if ref.kind != "ndarray":
            raise TypeError(f"view() needs an ndarray ref, got {ref.kind!r}")
        dt = np.dtype(ref.dtype)
        total = ref.nbytes // dt.itemsize
        if count is None:
            count = total - start
        if start < 0 or count < 0 or start + count > total:
            raise ValueError(
                f"slice [{start}:{start + count}] out of bounds for {total}")
        return np.ndarray((count,), dtype=dt, buffer=self._seg.buf,
                          offset=ref.offset + start * dt.itemsize)

    def read(self, ref: ShmRef):
        """Copy one payload out of the arena (safe after :meth:`close`)."""
        if ref.kind == "ndarray":
            view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                              buffer=self._seg.buf, offset=ref.offset)
            return view.copy()
        data = bytes(self._seg.buf[ref.offset:ref.offset + ref.nbytes])
        return data.decode("utf-8") if ref.kind == "str" else data

    def close(self) -> None:
        self._seg.close()

    def release(self) -> None:
        """Reader-side close: drop the mapping *and* the tracker entry
        this attach created (a reader that will never unlink must not
        leave a registration for someone else's unlink to miss)."""
        self._seg.close()
        if not self.created:
            _untrack(self.name)

    def unlink(self) -> None:
        """Destroy the segment and drop it from the sweep registry.

        ``SharedMemory.unlink`` sends the one unregister that balances
        whichever observation this process made (its create, or the
        attach that preceded an owning unlink).
        """
        try:
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - raced a sweep
            pass
        with _lock:
            _TRACKED.discard(self.name)
        deregister_name(self.name)


class _AttachCache:
    """Read-side cache of attached arenas; tracks bytes copied out."""

    def __init__(self):
        self._arenas: dict[str, Arena] = {}
        self.bytes_read = 0

    def read(self, ref: ShmRef):
        arena = self._arenas.get(ref.segment)
        if arena is None:
            arena = Arena.attach(ref.segment)
            self._arenas[ref.segment] = arena
        self.bytes_read += ref.nbytes
        return arena.read(ref)

    def close(self, unlink: bool = False) -> None:
        for arena in self._arenas.values():
            if unlink:
                arena.close()
                arena.unlink()
            else:
                arena.release()
        self._arenas.clear()


def pack(obj, arena: Arena, _depth: int = 0):
    """Replace big leaves of ``obj`` with :class:`ShmRef` descriptors."""
    if _depth > 8:
        return obj
    size = _leaf_nbytes(obj)
    if size >= LEAF_MIN_BYTES:
        return arena.place(obj)
    if isinstance(obj, tuple):
        return tuple(pack(item, arena, _depth + 1) for item in obj)
    if isinstance(obj, list):
        return [pack(item, arena, _depth + 1) for item in obj]
    if isinstance(obj, dict):
        return {key: pack(item, arena, _depth + 1) for key, item in obj.items()}
    return obj


def unpack(obj, cache: _AttachCache, _depth: int = 0):
    """Inverse of :func:`pack`: resolve descriptors back into payloads."""
    if isinstance(obj, ShmRef):
        return cache.read(obj)
    if _depth > 8:
        return obj
    if isinstance(obj, tuple):
        return tuple(unpack(item, cache, _depth + 1) for item in obj)
    if isinstance(obj, list):
        return [unpack(item, cache, _depth + 1) for item in obj]
    if isinstance(obj, dict):
        return {key: unpack(item, cache, _depth + 1) for key, item in obj.items()}
    return obj


def pack_results(results: list, name: str) -> tuple:
    """Worker side: pack a result list into the segment the parent named.

    Returns ``("shm", packed, arena_bytes)`` when a segment was created,
    or ``("inline", results, 0)`` when the payload volume is below the
    break-even (or shared memory is unusable) — the parent handles both.
    """
    size = sum(collect_leaf_bytes(r) for r in results)
    if size == 0 or not shm_available():
        return ("inline", results, 0)
    try:
        arena = Arena.create(name, size, named=True)
    except OSError:  # pragma: no cover - /dev/shm full or forbidden
        return ("inline", results, 0)
    try:
        packed = [pack(r, arena) for r in results]
    finally:
        arena.close()
    return ("shm", packed, arena.used)


def unpack_results(tagged: tuple) -> tuple[list, int]:
    """Parent side: resolve a :func:`pack_results` payload; unlink segments.

    Returns ``(results, arena_bytes)`` — the bytes that travelled through
    shared memory instead of the pickle pipe.
    """
    tag, payload, moved = tagged
    if tag == "inline":
        return payload, 0
    cache = _AttachCache()
    try:
        results = [unpack(item, cache) for item in payload]
    finally:
        cache.close(unlink=True)
    return results, moved
