"""Simulated hypercube multicomputer (NCUBE/7 stand-in).

Two complementary engines, per DESIGN.md:

* :mod:`repro.simulator.phases` — the *phase-level* synchronous engine.
  Algorithms execute as a sequence of parallel phases; within a phase each
  processor is charged compute (``t_c`` per comparison) and communication
  (``t_sr`` per element per hop, plus per-message startup) and the global
  clock advances by the maximum charge.  This is exactly the accounting the
  paper's own cost analysis uses, and it is fast enough for the Figure-7
  sweeps (``M`` up to hundreds of thousands of keys).

* :mod:`repro.simulator.engine` / :mod:`repro.simulator.spmd` — a
  discrete-event machine with store-and-forward links, FIFO link contention
  and per-hop routing (:mod:`repro.simulator.router`), on which SPMD
  programs run as coroutines exchanging real messages.  It validates the
  phase engine's accounting on small cubes and measures the *total* versus
  *partial* fault routing penalty (paper Section 4).

:class:`MachineParams` carries the cost constants shared by both engines.
"""

from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine, PhaseRecord
from repro.simulator.router import Router, RouteError
from repro.simulator.engine import EventEngine, Message
from repro.simulator.spmd import SpmdMachine, Proc, ProgramError
from repro.simulator.trace import LinkInterval, LinkTracer

__all__ = [
    "EventEngine",
    "LinkInterval",
    "LinkTracer",
    "MachineParams",
    "Message",
    "PhaseMachine",
    "PhaseRecord",
    "Proc",
    "ProgramError",
    "RouteError",
    "Router",
    "SpmdMachine",
]
