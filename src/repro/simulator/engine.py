"""Discrete-event simulation kernel with store-and-forward links.

The NCUBE/7-era machines forwarded whole messages hop by hop
(store-and-forward), each hop paying a software startup plus a per-element
transfer time, with one message occupying a directed link at a time.  This
module provides exactly that:

* :class:`EventEngine` — a time-ordered event queue plus per-directed-link
  FIFO occupancy,
* :class:`Message` — a routed transfer of ``size`` elements with an opaque
  payload.

Messages are injected with a precomputed path (from
:class:`repro.simulator.router.Router`); the engine serializes transmissions
on contended links and invokes a delivery callback when the message is
fully received at its destination.  The SPMD layer
(:mod:`repro.simulator.spmd`) builds blocking ``send``/``recv`` on top.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.obs.spans import NULL_TRACER, PID_MESSAGES, PID_NETWORK
from repro.simulator.params import MachineParams

__all__ = ["EventEngine", "Message"]


@dataclass
class Message:
    """One point-to-point transfer.

    Attributes:
        src: source node address.
        dst: destination node address.
        size: number of elements (keys) carried; transfer time per hop is
            ``t_startup + size * t_element``.
        payload: opaque data handed to the delivery callback.
        tag: integer tag for SPMD matching.
        path: node addresses from ``src`` to ``dst`` inclusive.
        sent_at: injection time.
        delivered_at: completion time (set by the engine).
        hops_taken: number of links traversed.
    """

    src: int
    dst: int
    size: int
    payload: object = None
    tag: int = 0
    path: list[int] = field(default_factory=list)
    sent_at: float = 0.0
    delivered_at: float | None = None

    @property
    def hops_taken(self) -> int:
        return max(len(self.path) - 1, 0)

    @property
    def latency(self) -> float | None:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


class EventEngine:
    """Store-and-forward discrete-event network simulator.

    Args:
        params: cost constants (transfer times).
        obs: optional :class:`repro.obs.Tracer`.  When enabled, the engine
            emits the full per-message lifecycle into it — one ``"link"``
            span per hop transmission (with queue delay) and one ``"msg"``
            span per delivered message — plus the ``engine.*`` metrics.
            This is the event API that :class:`repro.simulator.trace
            .LinkTracer` now rides on.  Defaults to the disabled
            :data:`~repro.obs.NULL_TRACER` (one attribute check per hop).

    The engine knows nothing about topology — it trusts each message's
    ``path`` — and models one in-flight message per *directed* link with
    FIFO queueing.  Statistics: completed messages, per-link busy time,
    and the simulation clock.
    """

    def __init__(self, params: MachineParams | None = None, obs=None):
        self.params = params if params is not None else MachineParams.ncube7()
        self.obs = obs if obs is not None else NULL_TRACER
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        # Directed link -> time at which it becomes free.
        self._link_free_at: dict[tuple[int, int], float] = {}
        self.link_busy_time: dict[tuple[int, int], float] = {}
        self.delivered: list[Message] = []
        self._link_tids: dict[tuple[int, int], int] = {}

    # -- event queue --------------------------------------------------------

    def schedule(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``time`` (>= now)."""
        if time < self.now - 1e-9:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._seq), fn))

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the clock after the run.  The engine is re-entrant: more
        work can be injected and ``run`` called again.
        """
        while self._queue:
            t, _, fn = self._queue[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._queue)
            self.now = t
            fn()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of queued events."""
        return len(self._queue)

    # -- message transport ----------------------------------------------------

    def hop_time(self, size: int) -> float:
        """Transmission time of a ``size``-element message over one link."""
        return self.params.t_startup + size * self.params.t_element

    def send(
        self,
        message: Message,
        on_delivered: Callable[[Message], None],
        at: float | None = None,
    ) -> None:
        """Inject ``message`` (with a populated path) at time ``at``.

        ``on_delivered`` fires when the last hop completes.  A zero-hop
        path (self-send) delivers immediately.
        """
        if not message.path or message.path[0] != message.src or message.path[-1] != message.dst:
            raise ValueError(
                f"message path must run {message.src}->{message.dst}, got {message.path}"
            )
        start = self.now if at is None else at
        message.sent_at = start
        if len(message.path) == 1:
            def deliver_now() -> None:
                message.delivered_at = self.now
                self.delivered.append(message)
                if self.obs.enabled:
                    self._record_delivery(message)
                on_delivered(message)

            self.schedule(start, deliver_now)
            return
        self._advance_hop(message, hop_index=0, ready_at=start, on_delivered=on_delivered)

    def _advance_hop(
        self,
        message: Message,
        hop_index: int,
        ready_at: float,
        on_delivered: Callable[[Message], None],
    ) -> None:
        u = message.path[hop_index]
        v = message.path[hop_index + 1]
        link = (u, v)
        free_at = self._link_free_at.get(link, 0.0)
        begin = max(ready_at, free_at)
        duration = self.hop_time(message.size)
        end = begin + duration
        self._link_free_at[link] = end
        self.link_busy_time[link] = self.link_busy_time.get(link, 0.0) + duration
        if self.obs.enabled:
            self._record_hop(link, begin, duration, ready_at, message)

        def on_hop_done() -> None:
            if hop_index + 1 == len(message.path) - 1:
                message.delivered_at = self.now
                self.delivered.append(message)
                if self.obs.enabled:
                    self._record_delivery(message)
                on_delivered(message)
            else:
                # Store-and-forward: only after full reception does the next
                # hop start contending.
                self._advance_hop(message, hop_index + 1, self.now, on_delivered)

        self.schedule(end, on_hop_done)

    # -- observability --------------------------------------------------------

    def _record_hop(self, link: tuple[int, int], begin: float, duration: float,
                    ready_at: float, message: Message) -> None:
        """Emit one link-transmission span + metrics (tracing enabled only)."""
        u, v = link
        tid = self._link_tids.get(link)
        if tid is None:
            tid = 1 + len(self._link_tids)
            self._link_tids[link] = tid
            self.obs.name_process(PID_NETWORK, "links")
            self.obs.name_thread(tid, f"link {u}->{v}", pid=PID_NETWORK)
        delay = max(begin - ready_at, 0.0)
        self.obs.complete(
            f"hop {u}->{v}",
            ts=begin,
            dur=duration,
            cat="link",
            pid=PID_NETWORK,
            tid=tid,
            args={"link": [u, v], "src": message.src, "dst": message.dst,
                  "size": message.size, "queue_delay": delay},
        )
        m = self.obs.metrics
        m.inc("engine.hops")
        m.inc(f"engine.link.elements[{u}->{v}]", message.size)
        m.observe("engine.queue_delay", delay)

    def _record_delivery(self, message: Message) -> None:
        """Emit one message-lifecycle span + metrics (tracing enabled only)."""
        self.obs.name_process(PID_MESSAGES, "messages")
        self.obs.name_thread(message.dst, f"to rank {message.dst}", pid=PID_MESSAGES)
        self.obs.complete(
            f"msg {message.src}->{message.dst}",
            ts=message.sent_at,
            dur=(message.delivered_at or message.sent_at) - message.sent_at,
            cat="msg",
            pid=PID_MESSAGES,
            tid=message.dst,
            args={"size": message.size, "tag": message.tag,
                  "hops": message.hops_taken},
        )
        m = self.obs.metrics
        m.inc("engine.messages")
        m.inc("engine.elements", message.size)

    # -- statistics -----------------------------------------------------------

    def total_link_busy(self) -> float:
        """Sum of busy time over all directed links."""
        return sum(self.link_busy_time.values())

    def max_link_busy(self) -> float:
        """Busy time of the most occupied directed link (the hotspot)."""
        return max(self.link_busy_time.values(), default=0.0)
