"""Discrete-event simulation kernel with store-and-forward links.

The NCUBE/7-era machines forwarded whole messages hop by hop
(store-and-forward), each hop paying a software startup plus a per-element
transfer time, with one message occupying a directed link at a time.  This
module provides exactly that:

* :class:`EventEngine` — a time-ordered event queue plus per-directed-link
  FIFO occupancy,
* :class:`Message` — a routed transfer of ``size`` elements with an opaque
  payload.

Messages are injected with a precomputed path (from
:class:`repro.simulator.router.Router`); the engine serializes transmissions
on contended links and invokes a delivery callback when the message is
fully received at its destination.  The SPMD layer
(:mod:`repro.simulator.spmd`) builds blocking ``send``/``recv`` on top.

Robustness extensions (see docs/ROBUSTNESS.md): links can *die mid-run*
(:meth:`EventEngine.fail_link`) — a message reaching a dead link is dropped
silently, exactly like real store-and-forward hardware losing a frame — and
:meth:`EventEngine.send_reliable` layers an ACK/timeout/retry protocol with
exponential backoff on top of the unreliable transport.  A ``reroute``
callback lets the sender pick a fresh path per attempt (the SPMD layer uses
it to probe for the dead link and detour through the adaptive fault-tolerant
router).  :meth:`EventEngine.stop` aborts the event loop early, which the
failure-detection layer uses to cut a run at detection time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.obs.spans import NULL_TRACER, PID_MESSAGES, PID_NETWORK
from repro.simulator.params import MachineParams

__all__ = ["EventEngine", "Message", "ReliableSend"]


@dataclass
class Message:
    """One point-to-point transfer.

    Attributes:
        src: source node address.
        dst: destination node address.
        size: number of elements (keys) carried; transfer time per hop is
            ``t_startup + size * t_element``.
        payload: opaque data handed to the delivery callback.
        tag: integer tag for SPMD matching.
        path: node addresses from ``src`` to ``dst`` inclusive.
        sent_at: injection time.
        delivered_at: completion time (set by the engine).
        hops_taken: number of links traversed.
    """

    src: int
    dst: int
    size: int
    payload: object = None
    tag: int = 0
    path: list[int] = field(default_factory=list)
    sent_at: float = 0.0
    delivered_at: float | None = None
    dropped_at: float | None = None
    dropped_link: tuple[int, int] | None = None

    @property
    def hops_taken(self) -> int:
        return max(len(self.path) - 1, 0)

    @property
    def latency(self) -> float | None:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


@dataclass
class ReliableSend:
    """Bookkeeping of one :meth:`EventEngine.send_reliable` exchange.

    Attributes:
        message: the logical message (its ``path`` is the *last* attempted
            route; ``delivered_at`` is set on the first successful copy).
        attempts: number of transmissions injected so far (>= 1).
        acked_at: time the sender learned of the delivery (delivery time
            plus the ACK's return trip), or ``None`` while in flight.
        gave_up_at: time the sender exhausted its retries, or ``None``.
        dropped_links: links that swallowed an attempt, in drop order.
    """

    message: Message
    attempts: int = 0
    acked_at: float | None = None
    gave_up_at: float | None = None
    dropped_links: list[tuple[int, int]] = field(default_factory=list)

    @property
    def retries(self) -> int:
        return max(self.attempts - 1, 0)


class EventEngine:
    """Store-and-forward discrete-event network simulator.

    Args:
        params: cost constants (transfer times).
        obs: optional :class:`repro.obs.Tracer`.  When enabled, the engine
            emits the full per-message lifecycle into it — one ``"link"``
            span per hop transmission (with queue delay) and one ``"msg"``
            span per delivered message — plus the ``engine.*`` metrics.
            This is the event API that :class:`repro.simulator.trace
            .LinkTracer` now rides on.  Defaults to the disabled
            :data:`~repro.obs.NULL_TRACER` (one attribute check per hop).

    The engine knows nothing about topology — it trusts each message's
    ``path`` — and models one in-flight message per *directed* link with
    FIFO queueing.  Statistics: completed messages, per-link busy time,
    and the simulation clock.
    """

    def __init__(self, params: MachineParams | None = None, obs=None):
        self.params = params if params is not None else MachineParams.ncube7()
        self.obs = obs if obs is not None else NULL_TRACER
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        # Directed link -> time at which it becomes free.
        self._link_free_at: dict[tuple[int, int], float] = {}
        self.link_busy_time: dict[tuple[int, int], float] = {}
        self.delivered: list[Message] = []
        self.dropped: list[Message] = []
        self._link_tids: dict[tuple[int, int], int] = {}
        # Undirected (min, max) endpoint pairs of links that died mid-run,
        # mapped to the time of death.
        self._dead_links: dict[tuple[int, int], float] = {}
        self._stopped = False

    # -- event queue --------------------------------------------------------

    def schedule(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``time`` (>= now)."""
        if time < self.now - 1e-9:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._seq), fn))

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the clock after the run.  The engine is re-entrant: more
        work can be injected and ``run`` called again.  A :meth:`stop` call
        from inside an event handler breaks out immediately (pending events
        stay queued).
        """
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            # Unbounded run: every queued event fires, so pop directly
            # instead of peek-then-pop.  ``_stopped`` must be re-read after
            # each handler — ``stop()`` is called from inside handlers.
            while queue:
                t, _, fn = pop(queue)
                self.now = t
                fn()
                if self._stopped:
                    break
        else:
            # Bounded run: peek the head timestamp once per *batch* and
            # drain every event sharing it (barrier-style workloads queue
            # many same-time events), re-peeking only within the batch.
            while queue and not self._stopped:
                t = queue[0][0]
                if t > until:
                    break
                self.now = t
                while queue and queue[0][0] == t:
                    _, _, fn = pop(queue)
                    fn()
                    if self._stopped:
                        break
        if until is not None and until > self.now and not self._stopped:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Abort the current :meth:`run` after the in-flight event handler.

        Used by the failure-detection layer to cut a simulation at the
        moment a fault is confirmed; queued events are preserved so state
        can still be inspected.
        """
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """Whether the last :meth:`run` was cut short by :meth:`stop`."""
        return self._stopped

    @property
    def pending_events(self) -> int:
        """Number of queued events."""
        return len(self._queue)

    # -- dynamic failures ------------------------------------------------------

    def fail_link(self, a: int, b: int, at: float | None = None) -> None:
        """Kill the (undirected) link between ``a`` and ``b``.

        From ``at`` (default: now) onward, any message that tries to start a
        hop over the link is silently dropped — the sender is not told,
        exactly as on real store-and-forward hardware.  A transmission
        already in progress completes (the frame was committed to the wire).
        Recovery is the reliable layer's job (:meth:`send_reliable`).
        """
        link = (min(a, b), max(a, b))
        when = self.now if at is None else at

        def kill() -> None:
            self._dead_links.setdefault(link, self.now)
            if self.obs.enabled:
                self.obs.instant(f"link-fault {link[0]}<->{link[1]}",
                                 ts=self.now, cat="fault", pid=PID_NETWORK)
                self.obs.metrics.inc("robust.link_faults")

        if when <= self.now:
            kill()
        else:
            self.schedule(when, kill)

    def link_dead(self, a: int, b: int) -> bool:
        """Whether the undirected link ``a``-``b`` has died mid-run."""
        return (min(a, b), max(a, b)) in self._dead_links

    def link_died_at(self, a: int, b: int) -> float | None:
        """Time the link died, or ``None`` if it is alive."""
        return self._dead_links.get((min(a, b), max(a, b)))

    @property
    def dead_links(self) -> tuple[tuple[int, int], ...]:
        """Undirected links that died mid-run, sorted."""
        return tuple(sorted(self._dead_links))

    # -- message transport ----------------------------------------------------

    def hop_time(self, size: int) -> float:
        """Transmission time of a ``size``-element message over one link."""
        return self.params.t_startup + size * self.params.t_element

    def send(
        self,
        message: Message,
        on_delivered: Callable[[Message], None],
        at: float | None = None,
    ) -> None:
        """Inject ``message`` (with a populated path) at time ``at``.

        ``on_delivered`` fires when the last hop completes.  A zero-hop
        path (self-send) delivers immediately.
        """
        if not message.path or message.path[0] != message.src or message.path[-1] != message.dst:
            raise ValueError(
                f"message path must run {message.src}->{message.dst}, got {message.path}"
            )
        start = self.now if at is None else at
        message.sent_at = start
        if len(message.path) == 1:
            def deliver_now() -> None:
                message.delivered_at = self.now
                self.delivered.append(message)
                if self.obs.enabled:
                    self._record_delivery(message)
                on_delivered(message)

            self.schedule(start, deliver_now)
            return
        self._advance_hop(message, hop_index=0, ready_at=start, on_delivered=on_delivered)

    def _advance_hop(
        self,
        message: Message,
        hop_index: int,
        ready_at: float,
        on_delivered: Callable[[Message], None],
    ) -> None:
        u = message.path[hop_index]
        v = message.path[hop_index + 1]
        link = (u, v)
        if (min(u, v), max(u, v)) in self._dead_links:
            message.dropped_at = max(ready_at, self.now)
            message.dropped_link = (u, v)
            self.dropped.append(message)
            if self.obs.enabled:
                self.obs.metrics.inc("robust.drops")
            return
        free_at = self._link_free_at.get(link, 0.0)
        begin = max(ready_at, free_at)
        duration = self.hop_time(message.size)
        end = begin + duration
        self._link_free_at[link] = end
        self.link_busy_time[link] = self.link_busy_time.get(link, 0.0) + duration
        if self.obs.enabled:
            self._record_hop(link, begin, duration, ready_at, message)

        def on_hop_done() -> None:
            if hop_index + 1 == len(message.path) - 1:
                message.delivered_at = self.now
                self.delivered.append(message)
                if self.obs.enabled:
                    self._record_delivery(message)
                on_delivered(message)
            else:
                # Store-and-forward: only after full reception does the next
                # hop start contending.
                self._advance_hop(message, hop_index + 1, self.now, on_delivered)

        self.schedule(end, on_hop_done)

    # -- reliable transport ----------------------------------------------------

    def send_reliable(
        self,
        message: Message,
        on_delivered: Callable[[Message], None],
        timeout: float,
        max_retries: int = 4,
        backoff: float = 2.0,
        reroute: Callable[["ReliableSend"], list[int] | None] | None = None,
        on_giveup: Callable[["ReliableSend"], None] | None = None,
        at: float | None = None,
    ) -> ReliableSend:
        """Send with ACK/timeout/retry semantics over the unreliable links.

        Each attempt injects a fresh copy of ``message``; on delivery a
        1-element ACK travels the reverse path (lost if a link on it has
        died).  If no ACK arrives within ``timeout * backoff**k`` of attempt
        ``k``'s injection, the sender retries — asking ``reroute`` for a
        fresh path first (return ``None`` to reuse the previous one), which
        is how dead links get absorbed by the adaptive fault-tolerant
        router.  After ``max_retries`` retries the exchange gives up and
        ``on_giveup`` fires (a processor-level failure, not a link loss —
        the detection layer takes over from there).

        ``on_delivered`` fires exactly once, on the first copy to arrive;
        duplicate deliveries at the receiver are absorbed and counted in
        ``robust.duplicates``.  Returns the :class:`ReliableSend` record
        (attempts, ACK time, dropped links) for the caller to inspect.
        """
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        start = self.now if at is None else at
        rs = ReliableSend(message=message)

        def launch(path: list[int], when: float) -> None:
            rs.attempts += 1
            attempt_no = rs.attempts
            copy = Message(src=message.src, dst=message.dst, size=message.size,
                           payload=message.payload, tag=message.tag, path=list(path))

            def delivered(msg: Message) -> None:
                if message.delivered_at is None:
                    message.delivered_at = msg.delivered_at
                    message.path = list(msg.path)
                    on_delivered(message)
                elif self.obs.enabled:
                    self.obs.metrics.inc("robust.duplicates")
                back = list(reversed(msg.path))
                if any(self.link_dead(x, y) for x, y in zip(back, back[1:])):
                    return  # the ACK is lost with the link; the timer decides
                ack_at = self.now + max(len(back) - 1, 0) * self.hop_time(1)

                def ack() -> None:
                    if rs.acked_at is None:
                        rs.acked_at = self.now
                        if self.obs.enabled:
                            self.obs.metrics.inc("robust.acks")

                self.schedule(ack_at, ack)

            self.send(copy, delivered, at=when)
            deadline = when + timeout * (backoff ** (attempt_no - 1))

            def check() -> None:
                if rs.acked_at is not None or rs.gave_up_at is not None:
                    return
                if copy.dropped_link is not None:
                    rs.dropped_links.append(copy.dropped_link)
                if self.obs.enabled:
                    self.obs.metrics.inc("robust.timeouts")
                if attempt_no > max_retries:
                    rs.gave_up_at = self.now
                    if self.obs.enabled:
                        self.obs.metrics.inc("robust.giveups")
                    if on_giveup is not None:
                        on_giveup(rs)
                    return
                if self.obs.enabled:
                    self.obs.metrics.inc("robust.retries")
                fresh = reroute(rs) if reroute is not None else None
                launch(list(fresh) if fresh is not None else list(copy.path), self.now)

            self.schedule(deadline, check)

        launch(list(message.path), start)
        return rs

    # -- observability --------------------------------------------------------

    def _record_hop(self, link: tuple[int, int], begin: float, duration: float,
                    ready_at: float, message: Message) -> None:
        """Emit one link-transmission span + metrics (tracing enabled only)."""
        u, v = link
        tid = self._link_tids.get(link)
        if tid is None:
            tid = 1 + len(self._link_tids)
            self._link_tids[link] = tid
            self.obs.name_process(PID_NETWORK, "links")
            self.obs.name_thread(tid, f"link {u}->{v}", pid=PID_NETWORK)
        delay = max(begin - ready_at, 0.0)
        self.obs.complete(
            f"hop {u}->{v}",
            ts=begin,
            dur=duration,
            cat="link",
            pid=PID_NETWORK,
            tid=tid,
            args={"link": [u, v], "src": message.src, "dst": message.dst,
                  "size": message.size, "queue_delay": delay},
        )
        m = self.obs.metrics
        m.inc("engine.hops")
        m.inc(f"engine.link.elements[{u}->{v}]", message.size)
        m.observe("engine.queue_delay", delay)

    def _record_delivery(self, message: Message) -> None:
        """Emit one message-lifecycle span + metrics (tracing enabled only)."""
        self.obs.name_process(PID_MESSAGES, "messages")
        self.obs.name_thread(message.dst, f"to rank {message.dst}", pid=PID_MESSAGES)
        self.obs.complete(
            f"msg {message.src}->{message.dst}",
            ts=message.sent_at,
            dur=(message.delivered_at or message.sent_at) - message.sent_at,
            cat="msg",
            pid=PID_MESSAGES,
            tid=message.dst,
            args={"size": message.size, "tag": message.tag,
                  "hops": message.hops_taken},
        )
        m = self.obs.metrics
        m.inc("engine.messages")
        m.inc("engine.elements", message.size)

    # -- statistics -----------------------------------------------------------

    def total_link_busy(self) -> float:
        """Sum of busy time over all directed links."""
        return sum(self.link_busy_time.values())

    def max_link_busy(self) -> float:
        """Busy time of the most occupied directed link (the hotspot)."""
        return max(self.link_busy_time.values(), default=0.0)
