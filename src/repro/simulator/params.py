"""Machine cost parameters.

The paper expresses every cost in two constants (Section 3):

* ``t_s/r`` — time to send or receive one element between neighbors, and
* ``t_c`` — time to compare a pair of keys,

plus, implicitly, a per-message startup dominated by the NCUBE/7's software
messaging layer.  The NCUBE/7 (1987-era, 512 KB/node, VERTEX OS) never
published exact figures in this paper; the defaults below are era-plausible
(communication two orders of magnitude slower than a register compare,
large per-message startup) and EXPERIMENTS.md compares *shapes*, not
absolute milliseconds.  All times are in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineParams"]


SWITCHING_MODES = ("store_forward", "cut_through")


@dataclass(frozen=True)
class MachineParams:
    """Cost constants of the simulated hypercube multicomputer.

    Attributes:
        t_compare: time to compare two keys (``t_c``), microseconds.
        t_element: time to move one element across one link (``t_s/r``),
            microseconds.
        t_startup: fixed software overhead per message, microseconds
            (store-and-forward: paid at every hop).
        switching: ``"store_forward"`` (NCUBE/7, the default: the whole
            message is received and retransmitted at every hop) or
            ``"cut_through"`` (NCUBE/2-generation wormhole-style: the
            header pays per-hop latency, the payload pipelines behind it).
            Cut-through applies to the phase engine's
            :meth:`transfer_time`; the discrete-event engine models
            store-and-forward link occupancy only.
    """

    t_compare: float = 10.0
    t_element: float = 10.0
    t_startup: float = 350.0
    switching: str = "store_forward"

    def __post_init__(self) -> None:
        for name in ("t_compare", "t_element", "t_startup"):
            v = getattr(self, name)
            if v < 0:
                raise ValueError(f"{name} must be non-negative, got {v}")
        if self.switching not in SWITCHING_MODES:
            raise ValueError(
                f"switching must be one of {SWITCHING_MODES}, got {self.switching!r}"
            )

    @classmethod
    def ncube7(cls) -> "MachineParams":
        """Era-plausible NCUBE/7 constants.

        Contemporary measurements of first-generation NCUBE hardware report
        roughly 300-400 us message startup and ~385 KB/s per link under
        VERTEX, i.e. ~10 us to move a 4-byte key one hop.  The custom CPU
        runs at 8 MHz (~2 MIPS); one compare-exchange inner-loop iteration
        (compare, conditional swap, index updates) is ~20 instructions,
        again ~10 us.  ``t_c ≈ t_s/r`` is thus the right regime for this
        machine — and, as EXPERIMENTS.md shows, the regime in which every
        qualitative Figure-7 claim of the paper reproduces.
        """
        return cls(t_compare=10.0, t_element=10.0, t_startup=350.0)

    @classmethod
    def ncube2(cls) -> "MachineParams":
        """Next-generation constants (NCUBE/2 era): cut-through switching,
        faster links and CPU, lower startup.  Used by the switching
        ablation to show how the partition's multi-hop penalty shrinks
        when messages pipeline through intermediate nodes."""
        return cls(t_compare=2.0, t_element=2.0, t_startup=100.0, switching="cut_through")

    @classmethod
    def unit(cls) -> "MachineParams":
        """Unit costs: 1 per comparison, 1 per element-hop, 0 startup.

        Handy in tests, where phase durations then equal raw operation
        counts.
        """
        return cls(t_compare=1.0, t_element=1.0, t_startup=0.0)

    def with_record_bytes(self, record_bytes: int, key_bytes: int = 4) -> "MachineParams":
        """Cost constants for sorting *records* instead of bare keys.

        The paper sorts bare keys; real sorts carry satellite data.  A
        record of ``record_bytes`` costs proportionally more to move (the
        per-element transfer time scales by ``record_bytes / key_bytes``)
        while a comparison still looks only at the key.  Returns a scaled
        copy; startup and switching are unchanged.
        """
        if record_bytes < key_bytes:
            raise ValueError(
                f"record_bytes ({record_bytes}) must be >= key_bytes ({key_bytes})"
            )
        return MachineParams(
            t_compare=self.t_compare,
            t_element=self.t_element * record_bytes / key_bytes,
            t_startup=self.t_startup,
            switching=self.switching,
        )

    def transfer_time(self, elements: int, hops: int) -> float:
        """Time for one message of ``elements`` keys across ``hops`` links.

        Store-and-forward: the full message is retransmitted (and pays
        startup) at every hop.  Cut-through: one startup, then the payload
        pipelines — extra hops add only one element-time of header latency
        each.
        """
        if elements < 0 or hops < 0:
            raise ValueError("elements and hops must be non-negative")
        if elements == 0 or hops == 0:
            return 0.0
        if self.switching == "cut_through":
            return self.t_startup + elements * self.t_element + (hops - 1) * self.t_element
        return hops * (self.t_startup + elements * self.t_element)

    def compare_time(self, comparisons: int) -> float:
        """Time for ``comparisons`` key comparisons."""
        if comparisons < 0:
            raise ValueError("comparisons must be non-negative")
        return comparisons * self.t_compare
