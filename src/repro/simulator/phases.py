"""Phase-level synchronous simulation of a hypercube multicomputer.

The sorting algorithms in this repository are *synchronous* at the phase
granularity: every compare-split substage is a barrier-separated parallel
phase in which disjoint processor pairs exchange and compute.  The paper's
own cost analysis models exactly this — per-phase cost is the maximum over
participating processors of (communication + comparisons), and total time
is the sum over phases.

:class:`PhaseMachine` provides that accounting plus central storage of each
node's key block.  Algorithms:

1. hold keys with :meth:`set_block` / :meth:`get_block`,
2. open a phase (:meth:`phase` context manager),
3. charge per-node costs with :meth:`charge_transfer` / :meth:`charge_compute`,
4. close the phase — the global clock advances by the max charge.

Hop counts honor the fault model: with *partial* faults the VERTEX-style
router passes through faulty processors, so a transfer between nodes ``a``
and ``b`` takes ``HD(a, b)`` hops; with *total* faults the route must avoid
faulty nodes, and hops come from breadth-first distances on the surviving
subgraph (cached per machine).
"""

from __future__ import annotations

from array import array
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cube.address import hamming_distance, validate_address
from repro.cube.topology import Hypercube
from repro.faults.model import FaultKind, FaultSet
from repro.obs.spans import NULL_TRACER, PID_SIM, TID_PHASES
from repro.plancache.cache import cached_route_table
from repro.simulator.params import MachineParams

__all__ = ["PhaseMachine", "PhaseRecord"]

# Shared immutable fallback for key-less nodes; get_block is on the charge
# accounting's hot path and must not allocate per call.
_EMPTY_BLOCK = np.empty(0, dtype=float)
_EMPTY_BLOCK.flags.writeable = False


@dataclass
class PhaseRecord:
    """Cost summary of one completed phase.

    Attributes:
        label: caller-supplied phase name (e.g. ``"intra[i=0,j=1]"``).
        duration: max over nodes of charged time in this phase.
        comparisons: total comparisons charged across all nodes.
        elements_sent: total element transfers (element count, not weighted
            by hops).
        element_hops: total element*hop products (link occupancy).
        messages: number of point-to-point transfers charged.
    """

    label: str
    duration: float = 0.0
    comparisons: int = 0
    elements_sent: int = 0
    element_hops: int = 0
    messages: int = 0


class PhaseMachine:
    """Synchronous phase-accounted hypercube machine.

    Args:
        n: hypercube dimension (``2**n`` processors).
        params: cost constants; defaults to :meth:`MachineParams.ncube7`.
        faults: optional fault configuration; affects hop counts (see
            module docstring) and forbids storing keys on faulty nodes.
        obs: optional :class:`repro.obs.Tracer`; when enabled, every phase
            is recorded as a simulated-time span (category ``"phase"``)
            and its traffic folds into the ``phase.*`` metrics.  Defaults
            to the disabled :data:`~repro.obs.NULL_TRACER` (one attribute
            check per phase).
    """

    def __init__(
        self,
        n: int,
        params: MachineParams | None = None,
        faults: FaultSet | None = None,
        obs=None,
    ):
        self.cube = Hypercube(n)
        self.n = n
        self.params = params if params is not None else MachineParams.ncube7()
        if faults is not None and faults.n != n:
            raise ValueError(f"fault set is for Q_{faults.n}, machine is Q_{n}")
        self.faults = faults if faults is not None else FaultSet(n)
        self.obs = obs if obs is not None else NULL_TRACER
        if self.obs.enabled:
            self.obs.name_process(PID_SIM, "simulated machine")
            self.obs.name_thread(TID_PHASES, "machine phases", pid=PID_SIM)
        self.blocks: dict[int, np.ndarray] = {}
        self.elapsed: float = 0.0
        self.phases: list[PhaseRecord] = []
        self._current: PhaseRecord | None = None
        self._node_time: dict[int, float] = {}
        self._hop_cache: dict[int, Sequence[int]] = {}
        self._size = 1 << n
        self._detour_needed = bool(self.faults.links) or (
            self.faults.r > 0 and self.faults.kind is FaultKind.TOTAL
        )
        #: Optional hook called as ``on_phase_end(machine, record)`` after
        #: every phase closes — used by walkthrough/teaching tools to
        #: snapshot block states without touching the algorithms.
        self.on_phase_end = None

    # -- key storage -----------------------------------------------------

    def set_block(self, addr: int, values: np.ndarray) -> None:
        """Install node ``addr``'s key block (copied)."""
        validate_address(addr, self.n)
        if self.faults.is_faulty(addr):
            raise ValueError(f"cannot store keys on faulty processor {addr}")
        arr = np.array(values, dtype=float, copy=True)
        if arr.ndim != 1:
            raise ValueError(f"blocks must be 1-D, got shape {arr.shape}")
        self.blocks[addr] = arr

    def get_block(self, addr: int) -> np.ndarray:
        """Node ``addr``'s current block (a shared empty array if none)."""
        if type(addr) is not int or not 0 <= addr < self._size:
            validate_address(addr, self.n)
        return self.blocks.get(addr, _EMPTY_BLOCK)

    def clear_blocks(self) -> None:
        """Drop all stored blocks (clocks and phase history are kept)."""
        self.blocks.clear()

    def total_keys(self) -> int:
        """Total number of keys currently stored across all nodes."""
        return sum(b.size for b in self.blocks.values())

    # -- hop metric --------------------------------------------------------

    def hops(self, a: int, b: int) -> int:
        """Routing hops between ``a`` and ``b`` under the fault model.

        Partial faults with no link faults (or no faults at all): e-cube
        distance ``HD(a, b)``.  Total faults and/or link faults: shortest
        surviving path (faulty nodes are impassable only under the total
        model; faulty links always are).  Endpoints must be fault-free.
        """
        if type(a) is not int or not 0 <= a < self._size:
            validate_address(a, self.n)
        if type(b) is not int or not 0 <= b < self._size:
            validate_address(b, self.n)
        if a == b:
            return 0
        if not self._detour_needed:
            return hamming_distance(a, b)
        if self.faults.is_faulty(a) or self.faults.is_faulty(b):
            raise ValueError(f"cannot route between faulty endpoints {a}, {b}")
        dist = self._hop_cache.get(a)
        if dist is None:
            dist = self._surviving_distances(a)
            self._hop_cache[a] = dist
        d = dist[b]
        if d < 0:
            raise ValueError(f"node {b} unreachable from {a} under the fault model")
        return d

    def _surviving_distances(self, src: int) -> Sequence[int]:
        """BFS distance table from ``src`` honoring node *and* link faults.

        Served from the process-wide plan cache keyed on the (immutable)
        fault set: scenario supervisors build many short-lived machines
        over the same fault view, and the tables are identical across
        them.  The table is an ``array('h')`` indexed by address with
        ``-1`` for unreachable — compact enough (2 bytes/node) that the
        cache can retain every table of a large campaign without bloating
        the heap — and is shared: treated as read-only by :meth:`hops`.
        """
        return cached_route_table(self.faults, src, lambda: self._bfs_distances(src))

    def _bfs_distances(self, src: int) -> Sequence[int]:
        from collections import deque

        blocked_nodes = (
            set(self.faults.processors) if self.faults.kind is FaultKind.TOTAL else set()
        )
        # Without link faults, blocked_nodes alone decides reachability
        # (total-fault endpoints never enter the frontier), so the per-edge
        # link query can be skipped wholesale.
        check_links = bool(self.faults.links)
        dist = [-1] * self._size
        dist[src] = 0
        queue: deque[int] = deque([src])
        while queue:
            cur = queue.popleft()
            base = dist[cur] + 1
            for d in range(self.n):
                nxt = cur ^ (1 << d)
                if dist[nxt] >= 0 or nxt in blocked_nodes:
                    continue
                if check_links and self.faults.is_link_faulty(cur, nxt):
                    continue
                dist[nxt] = base
                queue.append(nxt)
        return array("h", dist)

    # -- phase accounting --------------------------------------------------

    @contextmanager
    def phase(self, label: str):
        """Open a barrier-separated parallel phase.

        All charges inside the ``with`` block belong to this phase; on exit
        the machine clock advances by the maximum per-node charge.
        """
        if self._current is not None:
            raise RuntimeError(f"phase {self._current.label!r} is already open")
        self._current = PhaseRecord(label=label)
        self._node_time = {}
        started_at = self.elapsed
        try:
            yield self._current
        finally:
            rec = self._current
            rec.duration = max(self._node_time.values(), default=0.0)
            self.elapsed += rec.duration
            self.phases.append(rec)
            self._current = None
            self._node_time = {}
            if self.obs.enabled:
                self._record_phase(rec, started_at)
            if self.on_phase_end is not None:
                self.on_phase_end(self, rec)

    def _record_phase(self, rec: PhaseRecord, started_at: float) -> None:
        """Report a closed phase to the attached observability tracer."""
        self.obs.complete(
            rec.label,
            ts=started_at,
            dur=rec.duration,
            cat="phase",
            pid=PID_SIM,
            tid=TID_PHASES,
            args={
                "comparisons": rec.comparisons,
                "elements_sent": rec.elements_sent,
                "element_hops": rec.element_hops,
                "messages": rec.messages,
            },
        )
        m = self.obs.metrics
        m.inc("phase.count")
        m.inc("phase.messages", rec.messages)
        m.inc("phase.elements", rec.elements_sent)
        m.inc("phase.element_hops", rec.element_hops)
        m.inc("phase.comparisons", rec.comparisons)
        m.observe("phase.keys_moved", rec.elements_sent)

    def _require_phase(self) -> PhaseRecord:
        if self._current is None:
            raise RuntimeError("charges require an open phase (use machine.phase(...))")
        return self._current

    def charge_compute(self, addr: int, comparisons: int) -> None:
        """Charge ``comparisons`` key comparisons to node ``addr``."""
        rec = self._current
        if rec is None:
            rec = self._require_phase()
        if type(addr) is not int or not 0 <= addr < self._size:
            validate_address(addr, self.n)
        if comparisons < 0:
            raise ValueError("comparisons must be non-negative")
        rec.comparisons += comparisons
        node_time = self._node_time
        node_time[addr] = node_time.get(addr, 0.0) + self.params.compare_time(comparisons)

    def charge_transfer(self, src: int, dst: int, elements: int, hops: int | None = None) -> None:
        """Charge a transfer of ``elements`` keys from ``src`` to ``dst``.

        Both endpoints are busy for the full transfer (the paper's
        ``t_s/r`` covers "sending or receiving").  ``hops`` defaults to
        :meth:`hops`.
        """
        rec = self._current
        if rec is None:
            rec = self._require_phase()
        if type(src) is not int or not 0 <= src < self._size:
            validate_address(src, self.n)
        if type(dst) is not int or not 0 <= dst < self._size:
            validate_address(dst, self.n)
        if elements < 0:
            raise ValueError("elements must be non-negative")
        if elements == 0:
            return
        if hops is None:
            hops = self.hops(src, dst)
        t = self.params.transfer_time(elements, hops)
        rec.elements_sent += elements
        rec.element_hops += elements * hops
        rec.messages += 1
        node_time = self._node_time
        node_time[src] = node_time.get(src, 0.0) + t
        node_time[dst] = node_time.get(dst, 0.0) + t

    def charge_swap(self, a: int, b: int, elements: int, hops: int | None = None) -> None:
        """Charge a *simultaneous* bidirectional exchange of ``elements``.

        NCUBE-era links are full-duplex DMA channels: when two processors
        swap equal-size messages, both directions overlap in time, so each
        endpoint is busy for one transfer duration — this is exactly how
        the paper's cost model counts each exchange leg (one
        ``ceil(M/2N') t_s/r`` term, not two).  Counters record the traffic
        of both directions.
        """
        rec = self._current
        if rec is None:
            rec = self._require_phase()
        if type(a) is not int or not 0 <= a < self._size:
            validate_address(a, self.n)
        if type(b) is not int or not 0 <= b < self._size:
            validate_address(b, self.n)
        if elements < 0:
            raise ValueError("elements must be non-negative")
        if elements == 0:
            return
        if hops is None:
            hops = self.hops(a, b)
        t = self.params.transfer_time(elements, hops)
        rec.elements_sent += 2 * elements
        rec.element_hops += 2 * elements * hops
        rec.messages += 2
        node_time = self._node_time
        node_time[a] = node_time.get(a, 0.0) + t
        node_time[b] = node_time.get(b, 0.0) + t

    # -- summaries ---------------------------------------------------------

    def total_comparisons(self) -> int:
        """Comparisons across the whole run."""
        return sum(p.comparisons for p in self.phases)

    def total_elements_sent(self) -> int:
        """Element transfers across the whole run (unweighted by hops)."""
        return sum(p.elements_sent for p in self.phases)

    def total_element_hops(self) -> int:
        """Element*hop products across the whole run (link occupancy)."""
        return sum(p.element_hops for p in self.phases)

    def cut_at(self, local_time: float) -> tuple[int, float]:
        """Barrier-level detection cut for a fault arriving at ``local_time``.

        The machine is barrier-synchronous, so a fault arriving *during*
        phase ``k`` is first observable at phase ``k``'s closing barrier.
        Returns ``(k, barrier_time)`` — the index of the phase the arrival
        lands in and the cumulative elapsed time through its barrier (the
        work a supervisor must write off as wasted).  An arrival at or
        before time 0 cuts before the first phase (``(-1, 0.0)``); an
        arrival at or past the final barrier cuts after the last phase
        (``(len(phases) - 1, elapsed)`` — the run already completed).
        """
        if local_time <= 0.0:
            return -1, 0.0
        cum = 0.0
        for idx, rec in enumerate(self.phases):
            cum += rec.duration
            if local_time <= cum:
                return idx, cum
        return len(self.phases) - 1, cum

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"PhaseMachine(n={self.n}, elapsed={self.elapsed:.1f}us, "
            f"phases={len(self.phases)}, faults={self.faults.r})"
        )
