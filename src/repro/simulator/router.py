"""Routing on a (possibly faulty) hypercube.

Three strategies, selected per fault model:

* ``ecube`` — classic dimension-order routing, what the NCUBE/7's VERTEX
  operating system does.  It ignores faults entirely; under the *partial*
  fault model that is fine (faulty processors still forward), which is
  exactly how the paper's NCUBE experiments behave.
* ``adaptive`` — a distributed-style fault-tolerant heuristic in the spirit
  of Chen & Shin: at each node prefer a *productive* usable dimension
  (lowest first), detour through a spare dimension when blocked, and carry
  a visited set so the walk is a depth-first search of the surviving graph
  — guaranteeing delivery whenever source and destination are connected
  (always true for ``r <= n - 1`` total faults, since ``Q_n`` is
  ``n``-connected).
* ``shortest`` — BFS ground truth on the surviving graph; used as the
  oracle the adaptive router is measured against, and as the "perfect
  global knowledge" router justified by the paper's off-line diagnosis
  assumption.
"""

from __future__ import annotations

from repro.cube.address import validate_address
from repro.cube.topology import Hypercube, ecube_path, shortest_paths_avoiding
from repro.faults.model import FaultKind, FaultSet

__all__ = ["RouteError", "Router"]


class RouteError(RuntimeError):
    """No route exists (or the strategy failed to find one)."""


class Router:
    """Path computation over a fault configuration.

    Args:
        faults: the fault configuration (its ``kind`` decides which nodes
            may forward traffic and which links are dead).
        strategy: ``"auto"`` (ecube for partial faults, adaptive for total),
            or one of ``"ecube"``, ``"adaptive"``, ``"shortest"``.
    """

    STRATEGIES = ("auto", "ecube", "adaptive", "shortest")

    def __init__(self, faults: FaultSet, strategy: str = "auto"):
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; pick from {self.STRATEGIES}")
        self.faults = faults
        self.cube: Hypercube = faults.cube
        self.n = faults.n
        if strategy == "auto":
            strategy = (
                "adaptive"
                if (faults.kind is FaultKind.TOTAL and faults.r > 0) or faults.links
                else "ecube"
            )
        self.strategy = strategy

    # -- usability predicates ---------------------------------------------

    def _usable_step(self, cur: int, nxt: int, dst: int) -> bool:
        """Whether the hop ``cur -> nxt`` can carry traffic toward ``dst``.

        The link must be alive and ``nxt`` must either forward traffic or
        be the destination itself (a faulty destination cannot receive, but
        that is the endpoint's problem, checked at injection).
        """
        if self.faults.is_link_faulty(cur, nxt):
            return False
        if nxt == dst:
            return True
        return self.faults.can_route_through(nxt)

    # -- strategies ----------------------------------------------------------

    def route(self, src: int, dst: int) -> list[int]:
        """Full path from ``src`` to ``dst`` (both included).

        Raises :class:`RouteError` when the strategy cannot deliver — for
        ``ecube`` under total faults that simply reports the VERTEX
        router's inability (the motivation for rewriting the router, paper
        Section 4).
        """
        validate_address(src, self.n)
        validate_address(dst, self.n)
        if src == dst:
            return [src]
        if self.strategy == "ecube":
            return self._route_ecube(src, dst)
        if self.strategy == "shortest":
            return self._route_shortest(src, dst)
        return self._route_adaptive(src, dst)

    def hops(self, src: int, dst: int) -> int:
        """Number of links on :meth:`route`."""
        return len(self.route(src, dst)) - 1

    def _route_ecube(self, src: int, dst: int) -> list[int]:
        path = ecube_path(src, dst, self.n)
        for cur, nxt in zip(path, path[1:]):
            if not self._usable_step(cur, nxt, dst):
                raise RouteError(
                    f"e-cube route {src}->{dst} blocked at link {cur}->{nxt} "
                    f"(kind={self.faults.kind.value})"
                )
        return path

    def _route_shortest(self, src: int, dst: int) -> list[int]:
        forbidden = (
            set(self.faults.processors) - {src, dst}
            if self.faults.kind is FaultKind.TOTAL
            else set()
        )
        # Link faults force a per-step graph search even in partial mode.
        parent: dict[int, int] = {src: src}
        frontier = [src]
        while frontier and dst not in parent:
            nxt_frontier: list[int] = []
            for cur in frontier:
                for d in range(self.n):
                    nb = cur ^ (1 << d)
                    if nb in parent or nb in forbidden:
                        continue
                    if self.faults.is_link_faulty(cur, nb):
                        continue
                    if nb != dst and not self.faults.can_route_through(nb):
                        continue
                    parent[nb] = cur
                    nxt_frontier.append(nb)
            frontier = nxt_frontier
        if dst not in parent:
            raise RouteError(f"no surviving path {src}->{dst}")
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def _route_adaptive(self, src: int, dst: int) -> list[int]:
        """Greedy productive-first DFS with spare-dimension detours."""
        visited = {src}
        path = [src]
        # Explicit DFS with per-node iterator order: productive dims
        # ascending, then spare dims ascending — the greedy preference.
        choice_stack: list[list[int]] = [self._choices(src, dst)]
        while path:
            cur = path[-1]
            if cur == dst:
                return path
            choices = choice_stack[-1]
            advanced = False
            while choices:
                nxt = choices.pop(0)
                if nxt in visited:
                    continue
                visited.add(nxt)
                path.append(nxt)
                choice_stack.append(self._choices(nxt, dst))
                advanced = True
                break
            if not advanced:
                path.pop()  # backtrack (counts as traversing back in hops)
                choice_stack.pop()
        raise RouteError(f"adaptive routing exhausted: no surviving path {src}->{dst}")

    def _choices(self, cur: int, dst: int) -> list[int]:
        productive = []
        spare = []
        for d in range(self.n):
            nxt = cur ^ (1 << d)
            if not self._usable_step(cur, nxt, dst):
                continue
            if (cur ^ dst) >> d & 1:
                productive.append(nxt)
            else:
                spare.append(nxt)
        return productive + spare
