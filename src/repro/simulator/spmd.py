"""SPMD process layer over the discrete-event engine.

Programs are written as Python generators, one per processor, in the style
of mpi4py's per-rank code (the hpc-parallel guide's idiom): the generator
receives a :class:`Proc` handle and *yields* effect objects —

* ``proc.send(dst, payload, size)`` — non-blocking injection; the sender is
  busy for the first-hop transmission time,
* ``proc.recv(src=..., tag=...)`` — blocks until a matching message has
  fully arrived; evaluates to the message payload,
* ``proc.compute(comparisons)`` — advances the local clock by compute time.

Example::

    def program(proc: Proc):
        if proc.rank == 0:
            yield proc.send(1, payload={"hello": 1}, size=4)
        else:
            data = yield proc.recv(src=0)

    machine = SpmdMachine(n=1, faults=FaultSet(1))
    machine.run({0: program, 1: program})

Each processor has its own local clock; the machine's ``finish_time`` is
the max over processors.  Faulty processors run no program (their compute
portion is dead under both fault kinds); whether they *forward* messages is
the router's business.

Robustness extensions (see docs/ROBUSTNESS.md):

* **Mid-run faults** — :meth:`SpmdMachine.schedule_processor_fault` kills a
  rank's program at a simulated time (partial model: its memory and links
  survive, in-flight messages complete);
  :meth:`SpmdMachine.schedule_link_fault` kills a link, after which the
  engine silently drops messages that try to cross it.
* **Failure detection** — give the machine an
  :class:`repro.faults.detect.OnlineDiagnoser` and every blocking ``recv``
  arms a timeout watchdog.  On expiry the awaited source becomes a
  *suspect*, is confirmed by neighbor tests (false suspicions — a peer
  stalled behind somebody else's fault — are cleared and the watchdog
  re-arms), and a confirmed fault aborts the run at the current event so a
  supervisor can recover.
* **Reliable messaging** — with ``reliable=True`` every send uses the
  engine's ACK/retry protocol; on a retry the machine probes the failed
  path, registers the dead link with the diagnoser, and reroutes through
  the adaptive fault-tolerant router, so link deaths are absorbed without
  aborting the sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque
from collections.abc import Callable, Generator

from repro.faults.model import FaultSet
from repro.obs.spans import NULL_TRACER, PID_SIM, TID_RANK_BASE
from repro.simulator.engine import EventEngine, Message
from repro.simulator.params import MachineParams
from repro.simulator.router import RouteError, Router

__all__ = ["Proc", "ProgramError", "ReliabilityPolicy", "SpmdMachine"]

ANY_SOURCE = -1
ANY_TAG = -1


class ProgramError(RuntimeError):
    """An SPMD program misbehaved (deadlock, bad effect, faulty target)."""


@dataclass(frozen=True)
class _SendEffect:
    dst: int
    payload: object
    size: int
    tag: int


@dataclass(frozen=True)
class _RecvEffect:
    src: int
    tag: int


@dataclass(frozen=True)
class _ComputeEffect:
    comparisons: int


@dataclass(frozen=True)
class ReliabilityPolicy:
    """ACK/retry parameters for :class:`SpmdMachine` reliable messaging.

    Attributes:
        timeout: ACK wait before the first retry (simulated microseconds);
            grows by ``backoff`` per attempt.
        max_retries: retries before a send gives up and the destination
            becomes a processor-fault suspect.
        backoff: exponential backoff factor (>= 1).
    """

    timeout: float = 20_000.0
    max_retries: int = 4
    backoff: float = 2.0


class Proc:
    """Per-processor handle passed to SPMD program generators."""

    def __init__(self, machine: "SpmdMachine", rank: int):
        self._machine = machine
        self.rank = rank
        self.clock: float = 0.0
        self.sent_messages = 0
        self.received_messages = 0

    def send(self, dst: int, payload: object = None, size: int = 1, tag: int = 0) -> _SendEffect:
        """Effect: transmit ``size`` elements to ``dst`` (yield it)."""
        return _SendEffect(dst=dst, payload=payload, size=size, tag=tag)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> _RecvEffect:
        """Effect: block for a matching message (yield it; evaluates to payload)."""
        return _RecvEffect(src=src, tag=tag)

    def compute(self, comparisons: int) -> _ComputeEffect:
        """Effect: charge local compute time for ``comparisons`` comparisons."""
        return _ComputeEffect(comparisons=comparisons)

    @property
    def obs(self):
        """The machine's observability tracer (NULL_TRACER when disabled)."""
        return self._machine.obs

    @property
    def kernels(self):
        """The machine's kernel backend (see :mod:`repro.kernels`)."""
        return self._machine.kernels


class _ProcState:
    def __init__(self, proc: Proc, gen: Generator):
        self.proc = proc
        self.gen = gen
        self.inbox: deque[Message] = deque()
        self.waiting: _RecvEffect | None = None
        self.done = False
        # Monotonic counter of recv-wait episodes; a watchdog remembers the
        # value it was armed with and stands down if the wait was satisfied.
        self.wait_seq = 0


_WATCHDOG_MAX_REARMS = 25


class SpmdMachine:
    """Run one generator program per fault-free processor of ``Q_n``.

    Args:
        n: hypercube dimension.
        faults: fault configuration (decides routing and which ranks run).
        params: cost constants.
        router: optional router override (default ``Router(faults)``).
        obs: optional :class:`repro.obs.Tracer`, shared with the underlying
            :class:`EventEngine` (link/message lifecycle events); the
            machine additionally records one ``"proc"`` span per rank and
            the ``spmd.*`` message totals.
        diagnoser: optional :class:`repro.faults.detect.OnlineDiagnoser`.
            With one attached (and ``detect_timeout`` set), blocked receives
            arm watchdogs, suspects are confirmed by neighbor tests, and a
            confirmed processor fault aborts the run (``aborted``/
            ``abort_record``) for a supervisor to recover.
        detect_timeout: recv watchdog timeout in simulated time units.
        reliable: ``True`` (default policy), a :class:`ReliabilityPolicy`,
            or ``None``/``False`` — when set, every multi-hop send uses the
            engine's ACK/retry protocol and dead links are absorbed by
            rerouting through the adaptive router.
        kernels: kernel backend (or name, see :mod:`repro.kernels`) exposed
            to programs as ``proc.kernels``; ``None`` = process default.

    With ``diagnoser``/``reliable`` left at their defaults the machine
    behaves byte-identically to the pre-robustness version.
    """

    def __init__(
        self,
        n: int,
        faults: FaultSet | None = None,
        params: MachineParams | None = None,
        router: Router | None = None,
        obs=None,
        diagnoser=None,
        detect_timeout: float | None = None,
        reliable: "ReliabilityPolicy | bool | None" = None,
        kernels=None,
    ):
        from repro.kernels import resolve_backend

        self.kernels = resolve_backend(kernels)
        self.n = n
        self.size = 1 << n
        self.faults = faults if faults is not None else FaultSet(n)
        if self.faults.n != n:
            raise ValueError(f"fault set is for Q_{self.faults.n}, expected Q_{n}")
        self.params = params if params is not None else MachineParams.ncube7()
        self.obs = obs if obs is not None else NULL_TRACER
        self.engine = EventEngine(self.params, obs=self.obs)
        self.router = router if router is not None else Router(self.faults)
        self.diagnoser = diagnoser
        self.detect_timeout = detect_timeout
        if reliable is True:
            reliable = ReliabilityPolicy()
        elif reliable is False:
            reliable = None
        self.reliable: ReliabilityPolicy | None = reliable
        self.dead_at: dict[int, float] = {}
        self.aborted = False
        self.abort_record = None
        self.detections: list = []
        self._probed_links: set[tuple[int, int]] = set()
        self._states: dict[int, _ProcState] = {}
        self.finish_time: float = 0.0

    # -- dynamic failures ------------------------------------------------------

    def schedule_processor_fault(self, rank: int, at: float) -> None:
        """Kill ``rank``'s program at simulated time ``at`` (partial model:
        its memory and links survive; in-flight messages complete)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside Q_{self.n}")
        self.engine.schedule(at, lambda: self._strike(rank))

    def schedule_link_fault(self, a: int, b: int, at: float) -> None:
        """Kill the undirected link ``a``-``b`` at simulated time ``at``."""
        self.engine.fail_link(a, b, at=at)

    def _strike(self, rank: int) -> None:
        if rank in self.dead_at or self.faults.is_faulty(rank):
            return
        self.dead_at[rank] = self.engine.now
        if self.obs.enabled:
            self.obs.instant(f"proc-fault {rank}", ts=self.engine.now,
                             cat="fault", pid=PID_SIM)
            self.obs.metrics.inc("robust.proc_faults")
        state = self._states.get(rank)
        if state is not None and not state.done:
            state.done = True
            state.waiting = None
            state.wait_seq += 1
            state.gen.close()

    def _truth(self, addr: int) -> bool:
        """Ground-truth oracle the diagnoser's test model reads through."""
        return self.faults.is_faulty(addr) or addr in self.dead_at

    def _suspect_processor(self, addr: int):
        """Confirm-or-clear a suspicion; abort the run on a confirmed fault."""
        if self.diagnoser is None or self.aborted:
            return None
        record = self.diagnoser.confirm_processor(
            addr, self._truth,
            suspected_at=self.engine.now,
            occurred_at=self.dead_at.get(addr),
        )
        self.detections.append(record)
        if record.faulty:
            self._abort(record)
        return record

    def _abort(self, record) -> None:
        self.aborted = True
        self.abort_record = record
        self.engine.stop()
        if self.obs.enabled:
            self.obs.metrics.inc("robust.aborts")
            if record.latency is not None:
                self.obs.metrics.observe("robust.detect_latency", record.latency)

    def _fault_view(self) -> FaultSet:
        """Static faults enlarged with everything confirmed or probed so far."""
        base = self.faults
        if self.diagnoser is not None:
            base = self.diagnoser.fault_view(base)
        extra = [lk for lk in sorted(self._probed_links)
                 if not base.is_link_faulty(*lk)]
        if not extra:
            return base
        links = [(node, node | (1 << dim)) for node, dim in base.links] + extra
        return FaultSet(base.n, base.processors, kind=base.kind, links=links)

    # -- lifecycle ------------------------------------------------------------

    def run(
        self,
        programs: dict[int, Callable[[Proc], Generator]] | Callable[[Proc], Generator],
        max_events: int | None = None,
    ) -> float:
        """Execute programs to completion; returns the finish time.

        ``programs`` is either one callable used for every fault-free rank
        (true SPMD) or a dict rank -> callable (ranks omitted run nothing).
        Raises :class:`ProgramError` on deadlock (some program still waits
        on ``recv`` after the event queue drains).
        """
        if callable(programs):
            table = {
                rank: programs for rank in range(self.size) if not self.faults.is_faulty(rank)
            }
        else:
            table = dict(programs)
        for rank in table:
            if self.faults.is_faulty(rank):
                raise ProgramError(f"cannot run a program on faulty processor {rank}")
        self._states = {}
        self.aborted = False
        self.abort_record = None
        for rank, factory in sorted(table.items()):
            proc = Proc(self, rank)
            gen = factory(proc)
            if not isinstance(gen, Generator):
                raise ProgramError(
                    f"program for rank {rank} must be a generator function, got {type(gen)}"
                )
            self._states[rank] = _ProcState(proc, gen)
        for state in list(self._states.values()):
            self._step(state, first=True)
        self.engine.run()
        if not self.aborted:
            stuck = [r for r, s in self._states.items() if not s.done]
            if stuck:
                raise ProgramError(
                    f"deadlock: ranks {stuck} still blocked after the event queue drained"
                )
        self.finish_time = max(
            (s.proc.clock for s in self._states.values()), default=self.engine.now
        )
        if self.aborted:
            self.finish_time = max(self.finish_time, self.engine.now)
        if self.obs.enabled:
            self._record_run()
        return self.finish_time

    def _record_run(self) -> None:
        """Per-rank program spans + message totals (tracing enabled only)."""
        sent = received = 0
        self.obs.name_process(PID_SIM, "simulated machine")
        for rank, state in sorted(self._states.items()):
            proc = state.proc
            tid = TID_RANK_BASE + rank
            self.obs.name_thread(tid, f"rank {rank}", pid=PID_SIM)
            self.obs.complete(
                f"program rank {rank}",
                ts=0.0,
                dur=proc.clock,
                cat="proc",
                pid=PID_SIM,
                tid=tid,
                args={"rank": rank, "sent": proc.sent_messages,
                      "received": proc.received_messages},
            )
            sent += proc.sent_messages
            received += proc.received_messages
        m = self.obs.metrics
        m.inc("spmd.messages_sent", sent)
        m.inc("spmd.messages_received", received)
        m.set_gauge("spmd.finish_time", self.finish_time)

    # -- program driving -----------------------------------------------------

    def _step(self, state: _ProcState, value: object = None, first: bool = False) -> None:
        """Resume one program until it blocks on recv or finishes."""
        while True:
            try:
                effect = state.gen.send(None if first else value)
            except StopIteration:
                state.done = True
                return
            first = False
            value = None
            if isinstance(effect, _ComputeEffect):
                if effect.comparisons < 0:
                    self._fail(state, "negative compute charge")
                state.proc.clock += self.params.compare_time(effect.comparisons)
                continue
            if isinstance(effect, _SendEffect):
                self._do_send(state, effect)
                continue
            if isinstance(effect, _RecvEffect):
                msg = self._match(state, effect)
                if msg is not None:
                    state.proc.clock = max(state.proc.clock, msg.delivered_at or 0.0)
                    state.proc.received_messages += 1
                    value = msg.payload
                    continue
                state.waiting = effect
                state.wait_seq += 1
                self._arm_watchdog(state, state.wait_seq)
                return
            self._fail(state, f"unknown effect {effect!r} (yield proc.send/recv/compute)")

    def _arm_watchdog(self, state: _ProcState, seq: int, rearms: int = 0) -> None:
        """Watch a blocked recv; on expiry, suspect the awaited source.

        A cleared (false) suspicion — the peer was merely stalled behind
        somebody else's fault — re-arms the watchdog, up to a cap so a
        genuine deadlock still drains the event queue and raises.
        """
        if self.diagnoser is None or self.detect_timeout is None:
            return
        eff = state.waiting
        if eff is None or eff.src == ANY_SOURCE:
            return
        deadline = max(self.engine.now, state.proc.clock) + self.detect_timeout

        def fire() -> None:
            if self.aborted or state.done or state.waiting is None:
                return
            if state.wait_seq != seq:
                return  # that wait episode was satisfied; a newer one re-armed
            record = self._suspect_processor(state.waiting.src)
            if record is not None and not record.faulty and rearms < _WATCHDOG_MAX_REARMS:
                self._arm_watchdog(state, seq, rearms + 1)

        self.engine.schedule(deadline, fire)

    def _fail(self, state: _ProcState, why: str) -> None:
        raise ProgramError(f"rank {state.proc.rank}: {why}")

    def _do_send(self, state: _ProcState, eff: _SendEffect) -> None:
        rank = state.proc.rank
        if eff.size < 0:
            self._fail(state, "negative message size")
        if self.faults.is_faulty(eff.dst):
            self._fail(state, f"send target {eff.dst} is faulty")
        path = self.router.route(rank, eff.dst)
        msg = Message(
            src=rank, dst=eff.dst, size=eff.size, payload=eff.payload, tag=eff.tag, path=path
        )
        # The sender's NIC is busy for the first hop's transmission.
        depart = state.proc.clock
        if len(path) > 1:
            state.proc.clock += self.engine.hop_time(eff.size)
        state.proc.sent_messages += 1
        if self.reliable is not None and len(path) > 1:
            self.engine.send_reliable(
                msg,
                self._on_delivered,
                timeout=self.reliable.timeout,
                max_retries=self.reliable.max_retries,
                backoff=self.reliable.backoff,
                reroute=lambda rs: self._reroute(rank, eff.dst, rs),
                on_giveup=lambda rs: self._suspect_processor(eff.dst),
                at=depart,
            )
        else:
            self.engine.send(msg, self._on_delivered, at=depart)

    def _reroute(self, src: int, dst: int, rs) -> list[int] | None:
        """Retry-path callback: probe the swallowed link, detour around it.

        The sender only learns what its own probe reveals (the link that
        dropped the last attempt, recorded on the :class:`ReliableSend`);
        that link is registered with the diagnoser and the adaptive
        fault-tolerant router recomputes a path over the enlarged view.
        Returns ``None`` (reuse the old path) when no detour exists.
        """
        if rs.dropped_links:
            a, b = rs.dropped_links[-1]
            self._probed_links.add((min(a, b), max(a, b)))
            if self.diagnoser is not None:
                self.diagnoser.confirm_link(
                    a, b,
                    suspected_at=self.engine.now,
                    occurred_at=self.engine.link_died_at(a, b),
                )
        try:
            return Router(self._fault_view(), strategy="adaptive").route(src, dst)
        except RouteError:
            return None

    def _on_delivered(self, msg: Message) -> None:
        state = self._states.get(msg.dst)
        if state is None:
            return  # fire-and-forget to a rank running no program
        state.inbox.append(msg)
        if state.waiting is not None:
            eff = state.waiting
            matched = self._match(state, eff)
            if matched is not None:
                state.waiting = None
                state.proc.clock = max(state.proc.clock, matched.delivered_at or 0.0)
                state.proc.received_messages += 1
                self._step(state, value=matched.payload)

    def _match(self, state: _ProcState, eff: _RecvEffect) -> Message | None:
        for idx, msg in enumerate(state.inbox):
            if eff.src not in (ANY_SOURCE, msg.src):
                continue
            if eff.tag not in (ANY_TAG, msg.tag):
                continue
            del state.inbox[idx]
            return msg
        return None

    # -- results ----------------------------------------------------------------

    def proc(self, rank: int) -> Proc:
        """The :class:`Proc` handle of a finished rank (clocks, counters)."""
        return self._states[rank].proc
