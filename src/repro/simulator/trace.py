"""Event-engine tracing: link occupancy intervals and utilization reports.

The discrete-event engine aggregates per-link busy time by default; for
deeper inspection (hotspot hunting, contention visualization) attach a
:class:`LinkTracer`.  Since the ``repro.obs`` subsystem landed, the engine
itself emits per-hop ``"link"`` events into its ``obs`` tracer, and
``LinkTracer`` is a thin compatibility shim over that event API: it
installs a simulated-time :class:`~repro.obs.Tracer` on the engine (or
reuses an already-attached one) and folds the link events into per-link
aggregates *incrementally* — each event is visited exactly once, so
``report()`` is ``O(links log links)`` instead of the old
``O(intervals x links)`` rescans.

Example::

    engine = EventEngine(params)
    tracer = LinkTracer(engine)
    ... run the workload ...
    print(tracer.report(top=5))
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.spans import Tracer
from repro.simulator.engine import EventEngine

__all__ = ["LinkInterval", "LinkTracer"]


@dataclass(frozen=True)
class LinkInterval:
    """One transmission occupying a directed link.

    ``queue_delay`` is how long the message waited for the link after being
    ready to transmit (0 when the link was free).
    """

    link: tuple[int, int]
    start: float
    end: float
    size: int
    queue_delay: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class LinkTracer:
    """Per-link transmission intervals of an :class:`EventEngine`.

    Attaching installs an enabled :class:`repro.obs.Tracer` as the
    engine's ``obs`` (unless one is already enabled, which is then shared);
    the engine records every hop through its normal event API — scheduling
    behavior and timing are completely unchanged.  :meth:`detach` restores
    the engine's previous tracer and freezes this view.

    Aggregates (busy time per link, total queueing delay) are maintained
    incrementally as events stream in, so the report methods no longer
    rescan the interval list per link.
    """

    def __init__(self, engine: EventEngine, obs: Tracer | None = None):
        self.engine = engine
        self._owns = False
        self._prev_obs = None
        if obs is not None:
            self._obs = obs
        elif engine.obs.enabled:
            self._obs = engine.obs
        else:
            self._obs = Tracer(clock=lambda: engine.now)
            self._prev_obs = engine.obs
            engine.obs = self._obs
            self._owns = True
        self._intervals: list[LinkInterval] = []
        self._busy: dict[tuple[int, int], float] = {}
        self._waiting = 0.0
        self._cursor = 0
        self._frozen_at: int | None = None

    def detach(self) -> None:
        """Stop tracing (restores the engine's previous tracer)."""
        self._sync()
        self._frozen_at = self._cursor
        if self._owns:
            self.engine.obs = self._prev_obs
            self._owns = False

    # -- incremental aggregation ---------------------------------------------

    def _sync(self) -> None:
        """Fold link events recorded since the last call into the aggregates."""
        spans = self._obs.spans
        limit = len(spans) if self._frozen_at is None else self._frozen_at
        for sp in spans[self._cursor:limit]:
            if sp.cat != "link":
                continue
            args = sp.args or {}
            iv = LinkInterval(
                link=tuple(args.get("link", (0, 0))),
                start=sp.ts,
                end=sp.ts + sp.dur,
                size=int(args.get("size", 0)),
                queue_delay=float(args.get("queue_delay", 0.0)),
            )
            self._intervals.append(iv)
            self._busy[iv.link] = self._busy.get(iv.link, 0.0) + iv.duration
            self._waiting += iv.queue_delay
        self._cursor = limit

    @property
    def intervals(self) -> list[LinkInterval]:
        """Every recorded transmission interval, in schedule order."""
        self._sync()
        return self._intervals

    # -- reports -------------------------------------------------------------

    def busiest_links(self, top: int = 5) -> list[tuple[tuple[int, int], float]]:
        """The ``top`` directed links by total busy time."""
        self._sync()
        return sorted(self._busy.items(), key=lambda kv: -kv[1])[:top]

    def waiting_time(self) -> float:
        """Total time messages spent queued behind busy links."""
        self._sync()
        return self._waiting

    def utilization(self, link: tuple[int, int], until: float | None = None) -> float:
        """Fraction of time a directed link was busy up to ``until``."""
        self._sync()
        horizon = until if until is not None else self.engine.now
        if horizon <= 0:
            return 0.0
        return min(self._busy.get(link, 0.0) / horizon, 1.0)

    def report(self, top: int = 5) -> str:
        """Text report of the busiest links."""
        self._sync()
        horizon = self.engine.now
        lines = [f"link trace: {len(self._intervals)} transmissions, "
                 f"horizon {horizon:.1f}"]
        for link, busy in self.busiest_links(top):
            util = min(busy / horizon, 1.0) if horizon > 0 else 0.0
            lines.append(
                f"  {link[0]:>3} -> {link[1]:<3} busy {busy:10.1f} ({100 * util:5.1f}%)"
            )
        return "\n".join(lines)
