"""Event-engine tracing: link occupancy intervals and utilization reports.

The discrete-event engine aggregates per-link busy time by default; for
deeper inspection (hotspot hunting, contention visualization) wrap it in a
:class:`LinkTracer`, which records every transmission interval and can
render a compact text timeline.

Example::

    engine = EventEngine(params)
    tracer = LinkTracer(engine)
    ... run the workload ...
    print(tracer.report(top=5))
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.engine import EventEngine, Message

__all__ = ["LinkInterval", "LinkTracer"]


@dataclass(frozen=True)
class LinkInterval:
    """One transmission occupying a directed link.

    ``queue_delay`` is how long the message waited for the link after being
    ready to transmit (0 when the link was free).
    """

    link: tuple[int, int]
    start: float
    end: float
    size: int
    queue_delay: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class LinkTracer:
    """Records every link transmission interval of an :class:`EventEngine`.

    Installed by monkey-wrapping the engine's hop scheduler — the engine
    itself stays trace-free and fast when no tracer is attached.
    """

    def __init__(self, engine: EventEngine):
        self.engine = engine
        self.intervals: list[LinkInterval] = []
        self._original = engine._advance_hop
        engine._advance_hop = self._traced_advance_hop  # type: ignore[method-assign]

    def detach(self) -> None:
        """Stop tracing (restores the engine's original scheduler)."""
        self.engine._advance_hop = self._original  # type: ignore[method-assign]

    def _traced_advance_hop(self, message: Message, hop_index: int, ready_at: float,
                            on_delivered) -> None:
        u = message.path[hop_index]
        v = message.path[hop_index + 1]
        link = (u, v)
        free_at = self.engine._link_free_at.get(link, 0.0)
        begin = max(ready_at, free_at)
        end = begin + self.engine.hop_time(message.size)
        self.intervals.append(
            LinkInterval(
                link=link,
                start=begin,
                end=end,
                size=message.size,
                queue_delay=max(begin - ready_at, 0.0),
            )
        )
        self._original(message, hop_index, ready_at, on_delivered)

    # -- reports -------------------------------------------------------------

    def busiest_links(self, top: int = 5) -> list[tuple[tuple[int, int], float]]:
        """The ``top`` directed links by total busy time."""
        busy: dict[tuple[int, int], float] = {}
        for iv in self.intervals:
            busy[iv.link] = busy.get(iv.link, 0.0) + iv.duration
        return sorted(busy.items(), key=lambda kv: -kv[1])[:top]

    def waiting_time(self) -> float:
        """Total time messages spent queued behind busy links."""
        return sum(iv.queue_delay for iv in self.intervals)

    def utilization(self, link: tuple[int, int], until: float | None = None) -> float:
        """Fraction of time a directed link was busy up to ``until``."""
        horizon = until if until is not None else self.engine.now
        if horizon <= 0:
            return 0.0
        busy = sum(iv.duration for iv in self.intervals if iv.link == link)
        return min(busy / horizon, 1.0)

    def report(self, top: int = 5) -> str:
        """Text report of the busiest links."""
        lines = [f"link trace: {len(self.intervals)} transmissions, "
                 f"horizon {self.engine.now:.1f}"]
        for link, busy in self.busiest_links(top):
            util = self.utilization(link)
            lines.append(
                f"  {link[0]:>3} -> {link[1]:<3} busy {busy:10.1f} ({100 * util:5.1f}%)"
            )
        return "\n".join(lines)
