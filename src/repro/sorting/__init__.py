"""Sequential and parallel sorting kernels.

* :mod:`repro.sorting.heapsort` — from-scratch heapsort with exact
  comparison counting (the paper's step-3 local sort) plus the paper's
  worst-case comparison formula.
* :mod:`repro.sorting.merge` — the compare-split kernels: the paper's
  half-traffic exchange protocol between a processor pair, with exact
  element/comparison accounting.
* :mod:`repro.sorting.bitonic_seq` — Batcher's bitonic sorting network on a
  single array; reference implementation used as an oracle and by the
  sequential baselines.
* :mod:`repro.sorting.bitonic_cube` — block bitonic sort across the nodes of
  a (possibly single-fault) hypercube, written against the phase-level
  machine.
"""

from repro.sorting.heapsort import heapsort, heapsort_comparisons_worst_case
from repro.sorting.merge import (
    CompareSplitResult,
    compare_split,
    compare_split_counts,
    merge_split_reference,
)
from repro.sorting.bitonic_seq import (
    bitonic_merge_inplace,
    bitonic_sort,
    is_bitonic,
    next_pow2,
)
from repro.sorting.odd_even import (
    comparator_count,
    comparators,
    odd_even_merge_sort,
)

__all__ = [
    "CompareSplitResult",
    "comparator_count",
    "comparators",
    "odd_even_merge_sort",
    "bitonic_merge_inplace",
    "bitonic_sort",
    "compare_split",
    "compare_split_counts",
    "heapsort",
    "heapsort_comparisons_worst_case",
    "is_bitonic",
    "merge_split_reference",
    "next_pow2",
]
