"""Block bitonic sort across the nodes of a (sub)hypercube.

This is the parallel sorting workhorse: Batcher's bitonic network applied
to *blocks*, with every comparator realized as the half-traffic
compare-split of :mod:`repro.sorting.merge`.  By the classical blockwise
network theorem (replace each comparator of a sorting network by an exact
merge-split and any arrangement of sorted blocks gets globally sorted), the
result is sorted in *logical position order* regardless of the initial
block arrangement, as long as each block is internally sorted.

Dead nodes
----------
The paper's single-fault insight (Section 2.1): a dead (faulty or dangling)
processor holding zero keys behaves exactly like a block of sentinel keys
*if* the sentinels would sit still at its position through every stage of
the network.  That holds only at logical position 0 — the one position
whose comparator direction bit is constant through all stages, and whose
enclosing sub-block is first (hence sorted in the overall direction) at
every stage — with ``-inf`` sentinels in an ascending network and ``+inf``
in a descending one.  This is exactly why the paper XOR-reindexes the fault
to address 0, and why a *descending* subcube must run a direction-inverted
network rather than an ascending network read backwards (a dead node at the
top position is **not** exact; the test suite pins this down).

Block representation
--------------------
Blocks are canonically ascending.  After an ascending sort, logical
position ``l`` holds content-rank ``l``'s chunk; after a descending sort it
holds content-rank ``(2**q - 1) - l``'s chunk (chunks reversed across
positions, each chunk still ascending inside) — equivalent to the paper's
genuinely-descending layout up to free local reversals, with identical
communication pattern and cost.

Lockstep groups
---------------
The fault-tolerant sort runs ``2**m`` subcubes *in parallel*; their
identical substage sequences must share phases (phase time is a max, not a
sum).  :func:`block_bitonic_sort_groups` runs any number of equal-dimension
logical cubes through the network in lockstep, each with its own direction.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.faults.injectors import active_comparison
from repro.kernels import resolve_backend
from repro.simulator.phases import PhaseMachine

__all__ = [
    "block_bitonic_merge_groups",
    "block_bitonic_sort",
    "block_bitonic_sort_groups",
    "exchange_pair",
    "run_exchange_jobs",
    "substage_pairs",
]


def substage_pairs(q: int, i: int, j: int, descending: bool = False) -> list[tuple[int, int, bool]]:
    """Comparator pairs of bitonic substage ``(i, j)`` on ``2**q`` positions.

    Returns ``(low_logical, high_logical, low_keeps_min)`` triples: at merge
    stage ``i`` (``0 <= i < q``), substage dimension ``j`` (``i >= j >= 0``),
    position ``l`` (bit ``j`` clear) pairs with ``l | 2**j``; in the
    ascending network the pair sorts ascending iff bit ``i + 1`` of ``l``
    is 0, and the descending network inverts every direction.
    """
    if not 0 <= i < q or not 0 <= j <= i:
        raise ValueError(f"invalid substage (i={i}, j={j}) for q={q}")
    pairs = []
    for low in range(1 << q):
        if (low >> j) & 1:
            continue
        high = low | (1 << j)
        low_keeps_min = ((low >> (i + 1)) & 1) == 0
        if descending:
            low_keeps_min = not low_keeps_min
        pairs.append((low, high, low_keeps_min))
    return pairs


def _charge_exchange(
    machine: PhaseMachine,
    addr_low: int,
    addr_high: int,
    k: int,
    hops: int | None,
    probe: bool,
) -> int:
    """Charge one executed (non-skipped) compare-split, per the paper's model.

    Returns the number of messages exchanged (the caller accumulates the
    obs counters for the whole phase and flushes them once).
    """
    first_leg = (k + 1) // 2
    return_leg = k // 2
    # Half-exchange protocol: both sides ship half simultaneously, then
    # return the losers simultaneously (full-duplex links; each swap leg
    # costs one transfer, matching the paper's single t_s/r term per leg).
    machine.charge_swap(addr_low, addr_high, first_leg, hops=hops)
    if return_leg:
        machine.charge_swap(addr_low, addr_high, return_leg, hops=hops)
    # Pairwise comparisons: ceil(k/2) at one endpoint, floor(k/2) at the
    # other; then each merges its two runs at (k - 1) comparisons (the
    # paper's step-7(c) charge).
    machine.charge_compute(addr_low, first_leg + max(k - 1, 0))
    machine.charge_compute(addr_high, return_leg + max(k - 1, 0))
    return (2 if probe else 0) + 2 + (2 if return_leg else 0)


def run_exchange_jobs(
    machine: PhaseMachine,
    jobs: Sequence[tuple[int, int, bool, int | None]],
    kernels=None,
    probe: bool = True,
) -> None:
    """Execute the compare-splits of one parallel phase, batched.

    ``jobs`` holds ``(addr_low, addr_high, low_keeps_min, hops)`` tuples
    over *disjoint* node pairs; the call must happen inside an open machine
    phase.  Probes, skip decisions, and every cost charge are evaluated
    per pair exactly as :func:`exchange_pair` does — only the block data
    movement is delegated to the kernel backend, which (when vectorized)
    processes all surviving pairs of the substage as one array operation.
    Accounting is order-independent inside a phase (the clock advances by
    the per-node maximum at the barrier), so the batched and per-pair
    paths are indistinguishable to the machine.
    """
    kern = resolve_backend(kernels)
    # Comparison-fault universes flip probe verdicts too — a lying probe
    # misroutes a whole block, which is exactly what the tolerance-aware
    # oracle budgets for.  The hash is symmetric in the boundary pair, so
    # the compiled skip vector and the SPMD partners decide identically.
    inj = active_comparison()
    # Obs counters accumulate locally and flush once per call — this
    # function runs once per substage, and per-pair metric increments were
    # measurably hot on large campaigns.
    skipped = 0
    messages = 0
    live: list[tuple[int, int, bool, int | None, np.ndarray, np.ndarray]] = []
    for addr_low, addr_high, low_keeps_min, hops in jobs:
        a = machine.get_block(addr_low)
        b = machine.get_block(addr_high)
        if a.size == 0 or b.size == 0:
            # Dead-node comparator: the live partner keeps its block and
            # nothing is charged ("keeps its elements without doing any
            # operation").
            continue
        if probe:
            # Boundary exchange: each side ships the key its partner needs
            # to decide whether any element must move (full-duplex).
            machine.charge_swap(addr_low, addr_high, 1, hops=hops)
            machine.charge_compute(addr_low, 1)
            machine.charge_compute(addr_high, 1)
            if low_keeps_min:
                skip = a[-1] <= b[0]
            else:
                skip = b[-1] <= a[0]
            if inj is not None:
                boundary_hi, boundary_lo = (a[-1], b[0]) if low_keeps_min else (b[-1], a[0])
                if inj.flip_one(boundary_hi, boundary_lo, kind="probe"):
                    skip = not skip
            if skip:
                skipped += 1
                messages += 2
                continue
        live.append((addr_low, addr_high, low_keeps_min, hops, a, b))
    if live:
        sizes = {a.size for _, _, _, _, a, b in live} | {b.size for _, _, _, _, a, b in live}
        if kern.batched and len(live) > 1 and len(sizes) == 1:
            # Stage-batched fast path: one 2-D exchange-split over every pair.
            # Row t's min-keeping side goes into X, the other into Y.
            x = np.stack([a if km else b for _, _, km, _, a, b in live])
            y = np.stack([b if km else a for _, _, km, _, a, b in live])
            lows, highs = kern.split_blocks(x, y)
            for t, (addr_low, addr_high, km, hops, a, b) in enumerate(live):
                min_addr, max_addr = (addr_low, addr_high) if km else (addr_high, addr_low)
                machine.blocks[min_addr] = lows[t]
                machine.blocks[max_addr] = highs[t]
                messages += _charge_exchange(
                    machine, addr_low, addr_high, int(a.size), hops, probe
                )
        else:
            for addr_low, addr_high, km, hops, a, b in live:
                low, high = kern.split_pair(a, b)
                min_addr, max_addr = (addr_low, addr_high) if km else (addr_high, addr_low)
                machine.blocks[min_addr] = low
                machine.blocks[max_addr] = high
                messages += _charge_exchange(
                    machine, addr_low, addr_high, int(a.size), hops, probe
                )
    if machine.obs.enabled and (messages or skipped or live):
        m = machine.obs.metrics
        if live:
            m.inc("sort.cx.executed", len(live))
        if skipped:
            m.inc("sort.cx.skipped", skipped)
        if messages:
            m.inc("sort.messages", messages)


def exchange_pair(
    machine: PhaseMachine,
    addr_low: int,
    addr_high: int,
    low_keeps_min: bool,
    hops: int | None = 1,
    probe: bool = True,
    kernels=None,
) -> None:
    """One compare-split between two physical nodes, with cost charging.

    The node at ``addr_low`` ends with the smaller half of the union iff
    ``low_keeps_min``.  A pair with an empty side is the dead-node
    comparator: the live partner keeps its block and nothing is charged
    (the paper's "keeps its elements without doing any operation").

    With ``probe=True`` (default) the pair first exchanges one boundary key
    each way and skips the block exchange entirely when the blocks are
    already correctly split — the standard MIMD implementation trick that
    keeps measured time far below the oblivious worst case on the
    nearly-sorted data that Step 8's re-sorts see.  The paper's closed-form
    ``T`` charges the no-skip worst case (:mod:`repro.core.cost`); its
    *measured* Figure-7 curves, like ours, sit well below it.  The
    comparator's result is unchanged either way, so network correctness is
    unaffected.

    Must be called inside an open machine phase.
    """
    run_exchange_jobs(
        machine,
        [(addr_low, addr_high, low_keeps_min, hops)],
        kernels=kernels,
        probe=probe,
    )


def _validate_group(
    machine: PhaseMachine,
    addr_of_logical: Sequence[int],
    dead_logical: frozenset[int],
) -> int:
    size = len(addr_of_logical)
    if size == 0 or size & (size - 1):
        raise ValueError(f"addr_of_logical length must be a power of two, got {size}")
    if not dead_logical <= {0}:
        raise ValueError(
            f"dead logical positions {sorted(dead_logical)} must be within {{0}}; "
            "reindex the dead processor to logical address 0 first (the only "
            "position where the skip rule is exact)"
        )
    live_sizes = {
        machine.get_block(addr_of_logical[l]).size
        for l in range(size)
        if l not in dead_logical
    }
    if len(live_sizes) > 1:
        raise ValueError(f"live blocks must have equal sizes, got {sorted(live_sizes)}")
    for l in dead_logical:
        if machine.get_block(addr_of_logical[l]).size:
            raise ValueError(f"dead logical position {l} holds keys")
    return size.bit_length() - 1


def block_bitonic_sort_groups(
    machine: PhaseMachine,
    groups: Sequence[tuple[Sequence[int], frozenset[int] | set[int], bool]],
    label: str = "bitonic",
    uniform_hops: int | None = 1,
    kernels=None,
) -> None:
    """Sort several equal-dimension logical cubes in lockstep phases.

    Args:
        machine: the phase machine holding every node's block.
        groups: ``(addr_of_logical, dead_logical, descending)`` per logical
            cube; all must share one power-of-two length and their physical
            address sets must be disjoint.  ``dead_logical`` ⊆ ``{0}``.
        label: phase-label prefix.
        uniform_hops: hop count per exchange (1 when logical neighbors are
            physical neighbors, as with any XOR reindexing); ``None`` uses
            the machine's fault-aware metric.
        kernels: kernel backend (or name) for the exchange-splits; ``None``
            uses the process default.  Every substage batches its pairs —
            across all groups — into one :func:`run_exchange_jobs` call.

    After the call each ascending group's logical-order chunk ranks are
    ``0, 1, 2, ...`` and each descending group's are reversed (see module
    docstring).
    """
    if not groups:
        return
    kern = resolve_backend(kernels)
    norm = [(list(a), frozenset(d), bool(desc)) for a, d, desc in groups]
    qs = {_validate_group(machine, a, d) for a, d, _ in norm}
    if len(qs) != 1:
        raise ValueError(f"all groups must share one dimension, got {sorted(qs)}")
    q = qs.pop()
    seen: set[int] = set()
    for a, _, _ in norm:
        dup = seen.intersection(a)
        if dup:
            raise ValueError(f"groups overlap on physical addresses {sorted(dup)}")
        seen.update(a)
    if q == 0:
        return
    for i in range(q):
        for j in range(i, -1, -1):
            with machine.phase(f"{label}[i={i},j={j}]"):
                jobs = [
                    (addr_of_logical[low], addr_of_logical[high], low_keeps_min, uniform_hops)
                    for addr_of_logical, dead, descending in norm
                    for low, high, low_keeps_min in substage_pairs(q, i, j, descending)
                    if not (low in dead and high in dead)
                ]
                run_exchange_jobs(machine, jobs, kernels=kern)


def block_bitonic_merge_groups(
    machine: PhaseMachine,
    groups: Sequence[tuple[Sequence[int], frozenset[int] | set[int], bool]],
    label: str = "bitonic-merge",
    uniform_hops: int | None = 1,
    kernels=None,
) -> None:
    """One bitonic *merge* pass over each group, in lockstep phases.

    A merge is the final stage of the bitonic sort alone: substages
    ``j = q-1 .. 0`` with every comparator pointing the group's direction.
    It sorts the group iff the virtual sequence — the live blocks plus the
    dead node's sentinel block (``-inf`` for ascending, ``+inf`` for
    descending, always at logical 0) — is cyclically bitonic.  The
    fault-tolerant sort's Step 8 establishes that precondition analytically
    (see :mod:`repro.core.ftsort`); callers with arbitrary data must use
    :func:`block_bitonic_sort_groups` instead.

    Arguments are exactly those of :func:`block_bitonic_sort_groups`.
    """
    if not groups:
        return
    kern = resolve_backend(kernels)
    norm = [(list(a), frozenset(d), bool(desc)) for a, d, desc in groups]
    qs = {_validate_group(machine, a, d) for a, d, _ in norm}
    if len(qs) != 1:
        raise ValueError(f"all groups must share one dimension, got {sorted(qs)}")
    q = qs.pop()
    if q == 0:
        return
    i = q - 1
    for j in range(i, -1, -1):
        with machine.phase(f"{label}[j={j}]"):
            jobs = [
                (addr_of_logical[low], addr_of_logical[high], low_keeps_min, uniform_hops)
                for addr_of_logical, dead, descending in norm
                for low, high, low_keeps_min in substage_pairs(q, i, j, descending)
                if not (low in dead and high in dead)
            ]
            run_exchange_jobs(machine, jobs, kernels=kern)


def block_bitonic_sort(
    machine: PhaseMachine,
    addr_of_logical: Sequence[int],
    dead_logical: frozenset[int] | set[int] = frozenset(),
    descending: bool = False,
    label: str = "bitonic",
    uniform_hops: int | None = 1,
    kernels=None,
) -> None:
    """Sort one logical cube of blocks (see :func:`block_bitonic_sort_groups`).

    Single-group convenience wrapper: after the call (ascending), reading
    the blocks at ``addr_of_logical[0], addr_of_logical[1], ...`` and
    concatenating gives the keys in ascending order.
    """
    block_bitonic_sort_groups(
        machine,
        [(addr_of_logical, frozenset(dead_logical), descending)],
        label=label,
        uniform_hops=uniform_hops,
        kernels=kernels,
    )
