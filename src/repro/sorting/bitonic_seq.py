"""Batcher's bitonic sorting network on a single array.

Reference implementation of the sequential bitonic sort the whole paper is
built around.  Used as:

* an oracle for the parallel block versions (the network structure is the
  same, comparators become compare-splits),
* the local "re-sort a bounded-disorder block" primitive in the SPMD
  simulator, and
* a teaching artifact in the examples.

Counts comparisons exactly.  Handles non-power-of-two lengths by padding
with ``+inf`` sentinels, exactly as the paper pads uneven distributions with
dummy keys (Section 2.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import PAD_KEY

__all__ = ["bitonic_sort", "bitonic_merge_inplace", "is_bitonic", "next_pow2"]


def next_pow2(x: int) -> int:
    """Smallest power of two ``>= x`` (and ``>= 1``)."""
    if x < 0:
        raise ValueError(f"expected non-negative size, got {x}")
    return 1 << max(x - 1, 0).bit_length() if x > 1 else 1


def is_bitonic(values: np.ndarray | list) -> bool:
    """Whether a sequence is bitonic under some rotation.

    A sequence is bitonic iff it has at most two "direction changes" when
    read cyclically.  Equal neighbors do not count as a change.
    """
    a = np.asarray(values)
    if a.size <= 2:
        return True
    diffs = np.diff(np.concatenate([a, a[:1]]))
    signs = np.sign(diffs)
    signs = signs[signs != 0]
    if signs.size == 0:
        return True
    changes = int(np.count_nonzero(signs != np.roll(signs, 1)))
    return changes <= 2


def bitonic_merge_inplace(a: np.ndarray, lo: int, count: int, ascending: bool) -> int:
    """Bitonic merge of ``a[lo:lo+count]`` (a bitonic range) in place.

    ``count`` must be a power of two.  Returns the number of comparisons
    (``count/2 * log2(count)``).
    """
    if count & (count - 1):
        raise ValueError(f"bitonic merge needs a power-of-two range, got {count}")
    comparisons = 0
    k = count // 2
    while k >= 1:
        for start in range(lo, lo + count, 2 * k):
            i = np.arange(start, start + k)
            j = i + k
            left = a[i]
            right = a[j]
            comparisons += k
            if ascending:
                swap = left > right
            else:
                swap = left < right
            a[i[swap]] = right[swap]
            a[j[swap]] = left[swap]
        k //= 2
    return comparisons


def bitonic_sort(values: np.ndarray | list, descending: bool = False) -> tuple[np.ndarray, int]:
    """Sort an array with Batcher's bitonic network.

    Returns ``(sorted_copy, comparison_count)``.  Comparisons on padding
    sentinels are counted (the network is oblivious, exactly as on the real
    machine where dummy keys are physically compared).
    """
    src = np.asarray(values, dtype=float)
    if src.ndim != 1:
        raise ValueError(f"bitonic_sort expects a 1-D array, got shape {src.shape}")
    n = int(src.size)
    if n == 0:
        return src.copy(), 0
    padded_n = next_pow2(n)
    a = np.full(padded_n, PAD_KEY)
    a[:n] = src
    comparisons = 0
    size = 2
    while size <= padded_n:
        for lo in range(0, padded_n, size):
            block_index = lo // size
            asc = (block_index % 2) == 0
            comparisons += bitonic_merge_inplace(a, lo, size, asc)
        size *= 2
    out = a[:n] if not descending else a[:n][::-1].copy()
    # Padding keys are +inf and therefore sort to the tail; dropping the
    # tail preserves the real keys.
    return out, comparisons
