"""Heapsort with exact comparison counting.

The paper's fault-tolerant sort begins with each processor heapsorting its
local block (step 3), and its cost model charges the classical worst-case
bound ``((ceil(M/N') - 1) * log2(ceil(M/N')) + 1) * t_c`` for it.  We provide
both: a real heapsort (used by tests and the SPMD simulator for exact
counts) and the paper's closed-form worst case (used by the phase engine on
large inputs, matching how the paper itself accounts time).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["heapsort", "heapsort_comparisons_worst_case"]


def _sift_down(a: np.ndarray, start: int, end: int) -> int:
    """Restore the max-heap property for the subtree rooted at ``start``.

    ``end`` is one past the last heap index.  Returns the number of key
    comparisons performed.
    """
    comparisons = 0
    root = start
    while True:
        child = 2 * root + 1
        if child >= end:
            break
        if child + 1 < end:
            comparisons += 1
            if a[child] < a[child + 1]:
                child += 1
        comparisons += 1
        if a[root] < a[child]:
            a[root], a[child] = a[child], a[root]
            root = child
        else:
            break
    return comparisons


def heapsort(values: np.ndarray | list, descending: bool = False) -> tuple[np.ndarray, int]:
    """Heapsort a 1-D array, returning ``(sorted_copy, comparison_count)``.

    Args:
        values: input keys (any numpy-sortable dtype).
        descending: sort largest-first when True (the paper's odd-address
            processors keep their block descending).

    The input is not modified.  Comparison counts are exact and are what the
    SPMD simulator charges as compute time for step 3.
    """
    a = np.asarray(values)
    if a.ndim != 1:
        raise ValueError(f"heapsort expects a 1-D array, got shape {a.shape}")
    # Sorting happens in place, so alias the caller's buffer never; but when
    # ``np.asarray`` already built a fresh array (list/tuple input), a second
    # copy would be pure waste.
    if a is values or (isinstance(values, np.ndarray) and np.shares_memory(a, values)):
        a = np.ascontiguousarray(a) if not a.flags.c_contiguous else a.copy()
    elif not a.flags.writeable:
        a = a.copy()
    n = a.size
    comparisons = 0
    # Build max-heap.
    for start in range(n // 2 - 1, -1, -1):
        comparisons += _sift_down(a, start, n)
    # Repeatedly extract the maximum.
    for end in range(n - 1, 0, -1):
        a[0], a[end] = a[end], a[0]
        comparisons += _sift_down(a, 0, end)
    if descending:
        a = a[::-1].copy()
    return a, comparisons


def heapsort_comparisons_worst_case(m: int) -> int:
    """The paper's worst-case comparison count for heapsorting ``m`` keys.

    Section 3 charges ``(ceil(M/N') - 1) * log(ceil(M/N')) + 1`` comparisons
    (base-2 log) for the local heapsort; this evaluates that expression for
    a block of ``m`` keys.  For ``m <= 1`` no comparison is needed.
    """
    if m < 0:
        raise ValueError(f"block size must be non-negative, got {m}")
    if m <= 1:
        return 0
    return int((m - 1) * math.ceil(math.log2(m)) + 1)
