"""Compare-split kernels: the paper's half-traffic exchange protocol.

The primitive of hypercube bitonic sorting is the *compare-split* (also
called comparison-exchange, Section 2.1): a pair of processors redistribute
their two sorted blocks so that one ends up with the smaller half of the
union and the other with the larger half.

The naive protocol ships both full blocks (``2k`` element transfers each
way).  The paper uses the classical half-traffic protocol:

1. each side sends half of its block (``k/2`` elements),
2. each side compares its unsent elements pairwise against the received
   ones, keeps the winners, and returns the losers (``<= k/2`` elements),
3. each side merges its two resulting runs.

For two ascending blocks ``A`` and ``B`` of equal length ``k``, the pairwise
comparisons are ``a_i`` vs ``b_{k-1-i}`` — and the multiset
``{min(a_i, b_{k-1-i})}`` is exactly the ``k`` smallest of the union (the
standard exchange-split lemma, equivalent to Batcher's bitonic rule on the
ascending/descending concatenation the paper uses).  The kernel below
therefore computes the *exact* merge-split while accounting elements moved
and comparisons made per the half-traffic protocol.  Blocks are kept
canonically ascending; the paper's alternating even/odd block orientations
are an equivalent representation that avoids local reversals on a real
machine and change neither the traffic nor the comparison counts (see
DESIGN.md, "Known deviations").

Unequal block lengths arise only against the dead (faulty or dangling)
processor, which holds zero keys; that degenerate case short-circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CompareSplitResult",
    "compare_split",
    "compare_split_counts",
    "merge_split_reference",
]


@dataclass(frozen=True)
class CompareSplitResult:
    """Outcome of one compare-split between a processor pair.

    Attributes:
        low: ascending array of the ``len(a)`` smallest keys (stays on the
            min-keeping side).
        high: ascending array of the ``len(b)`` largest keys.
        sent_low_to_high: elements shipped from the min side to the max side
            (first leg plus returned losers).
        sent_high_to_low: elements shipped the other way.
        comparisons: pairwise key comparisons performed across both sides
            (excluding the final local merges).
        merge_comparisons: comparisons charged for the two local merges of
            step 7(c) / Section 2.1 (``k - 1`` per side, the paper's bound).
    """

    low: np.ndarray
    high: np.ndarray
    sent_low_to_high: int
    sent_high_to_low: int
    comparisons: int
    merge_comparisons: int


def merge_split_reference(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Oracle merge-split: smallest ``len(a)`` keys and largest ``len(b)`` keys.

    Implemented with a full sort of the union; used by tests to validate
    :func:`compare_split` and by the semantic engine where counts are
    charged separately.
    """
    union = np.sort(np.concatenate([np.asarray(a), np.asarray(b)]), kind="stable")
    return union[: len(a)], union[len(a):]


def compare_split_counts(k: int) -> tuple[int, int, int]:
    """Traffic/comparison accounting of one compare-split of two ``k``-blocks.

    Returns ``(sent_each_way, pairwise_comparisons, merge_comparisons)``
    where ``sent_each_way`` counts elements crossing the link in one
    direction (first leg ``ceil(k/2)`` plus up to ``floor(k/2)`` returned),
    ``pairwise_comparisons`` is ``k`` in total (``ceil(k/2)`` per side), and
    ``merge_comparisons`` is ``k - 1`` per side, i.e. the paper's
    ``(ceil(M/N') - 1) t_c`` merge charge.
    """
    if k < 0:
        raise ValueError(f"block size must be non-negative, got {k}")
    if k == 0:
        return (0, 0, 0)
    sent = (k + 1) // 2 + k // 2  # first leg + returned losers
    return (sent, k, max(k - 1, 0) * 2)


def compare_split(a: np.ndarray, b: np.ndarray, kernels=None) -> CompareSplitResult:
    """Compare-split two ascending blocks, with half-traffic accounting.

    ``a`` and ``b`` must each be ascending (empty allowed — the dead-node
    case).  The result's ``low`` holds the ``len(a)`` smallest keys of the
    union and ``high`` the ``len(b)`` largest, both ascending.

    For equal-length blocks the counts follow the half-exchange protocol;
    a zero-length side short-circuits with zero cost (the paper's "keeps
    its elements without doing any operation" rule for the dead node's
    partner).

    ``kernels`` selects the execution backend for the split itself (a
    :mod:`repro.kernels` backend or name; ``None`` = process default).
    The accounting is backend-independent.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("compare_split expects 1-D blocks")
    if a.size == 0 or b.size == 0:
        # Dead-node exchange: partner keeps its block untouched.
        return CompareSplitResult(
            low=a if b.size else np.sort(a, kind="stable"),
            high=b if a.size else np.sort(b, kind="stable"),
            sent_low_to_high=0,
            sent_high_to_low=0,
            comparisons=0,
            merge_comparisons=0,
        )
    if a.size != b.size:
        raise ValueError(
            f"compare_split needs equal block sizes (or one empty), got {a.size} and {b.size}"
        )
    k = int(a.size)
    # Exact exchange-split (pair a_i with b_{k-1-i}) through the selected
    # kernel backend; the step-7(c) merge is realized inside the kernel.
    from repro.kernels import resolve_backend

    low, high = resolve_backend(kernels).split_pair(a, b)
    sent, comparisons, merge_comparisons = compare_split_counts(k)
    return CompareSplitResult(
        low=low,
        high=high,
        sent_low_to_high=sent,
        sent_high_to_low=sent,
        comparisons=comparisons,
        merge_comparisons=merge_comparisons,
    )
