"""Batcher's odd-even merge sort (reference network).

A second classical sorting network, alongside the bitonic network the
paper builds on.  Odd-even merge sort uses asymptotically fewer
comparators (~``n/4 log^2 n`` vs bitonic's ``n/2 log^2 n``... precisely,
fewer by a constant factor), but — unlike bitonic — its comparator pairs
are not all hypercube-neighbor pairs, which is exactly why hypercube
machines (and this paper) use bitonic.  We implement it sequentially as:

* an independent *oracle* for the other sorts,
* a comparator-count datum for the network-choice discussion, and
* a :func:`comparators` generator exposing the raw network for tests that
  check the neighbor-mapping claim.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import PAD_KEY
from repro.sorting.bitonic_seq import next_pow2

__all__ = ["odd_even_merge_sort", "comparators", "comparator_count"]


def comparators(n: int) -> list[tuple[int, int]]:
    """The comparator list of the odd-even merge sorting network on ``n``.

    ``n`` must be a power of two.  Returned in execution order; each pair
    ``(i, j)`` with ``i < j`` orders positions ascending.
    """
    if n <= 0 or n & (n - 1):
        raise ValueError(f"network size must be a power of two, got {n}")
    out: list[tuple[int, int]] = []

    def merge(lo: int, length: int, step: int) -> None:
        jump = step * 2
        if jump < length:
            merge(lo, length, jump)
            merge(lo + step, length, jump)
            for i in range(lo + step, lo + length - step, jump):
                out.append((i, i + step))
        else:
            out.append((lo, lo + step))

    def sort(lo: int, length: int) -> None:
        if length > 1:
            half = length // 2
            sort(lo, half)
            sort(lo + half, half)
            merge(lo, length, 1)

    sort(0, n)
    return out


def comparator_count(n: int) -> int:
    """Number of comparators in the odd-even merge sort network."""
    return len(comparators(n))


def odd_even_merge_sort(values: np.ndarray | list) -> tuple[np.ndarray, int]:
    """Sort via the odd-even merge network; returns (sorted, comparisons).

    Non-power-of-two inputs are padded with ``+inf`` sentinels, as in the
    paper's dummy-key convention.
    """
    src = np.asarray(values, dtype=float)
    if src.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {src.shape}")
    n = int(src.size)
    if n == 0:
        return src.copy(), 0
    padded = next_pow2(n)
    a = np.full(padded, PAD_KEY)
    a[:n] = src
    count = 0
    for i, j in comparators(padded):
        count += 1
        if a[i] > a[j]:
            a[i], a[j] = a[j], a[i]
    return a[:n], count
