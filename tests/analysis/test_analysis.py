"""Tests for repro.analysis — metrics and breakdowns."""

from __future__ import annotations

import pytest

from repro.analysis.breakdown import phase_breakdown
from repro.analysis.metrics import (
    crossover_keys,
    efficiency,
    model_accuracy,
    speedup_vs_baseline,
)
from repro.core.ftsort import fault_tolerant_sort
from repro.simulator.params import MachineParams

PAPER_FAULTS = [3, 5, 16, 24]


class TestSpeedup:
    def test_large_m_beats_baseline(self):
        s = speedup_vs_baseline(32 * 4000, 5, PAPER_FAULTS)
        assert s > 1.0

    def test_small_m_baseline_wins(self):
        s = speedup_vs_baseline(32, 5, PAPER_FAULTS)
        assert s < 1.0

    def test_deterministic(self):
        a = speedup_vs_baseline(2048, 5, PAPER_FAULTS, seed=3)
        b = speedup_vs_baseline(2048, 5, PAPER_FAULTS, seed=3)
        assert a == b


class TestEfficiency:
    def test_single_fault_efficiency_near_one(self):
        # One fault out of 32: per-processor work barely changes.
        e = efficiency(32 * 2000, 5, [7])
        assert 0.7 < e <= 1.2

    def test_multi_fault_efficiency_degrades(self):
        e1 = efficiency(32 * 2000, 5, [7])
        e4 = efficiency(32 * 2000, 5, PAPER_FAULTS)
        assert e4 < e1


class TestCrossover:
    def test_crossover_exists_and_separates(self):
        m_star = crossover_keys(5, PAPER_FAULTS, lo=16, hi=1 << 18)
        assert m_star is not None
        assert speedup_vs_baseline(m_star, 5, PAPER_FAULTS) > 1.0
        if m_star > 16:
            assert speedup_vs_baseline(m_star // 2, 5, PAPER_FAULTS) <= 1.05

    def test_crossover_lo_already_winning(self):
        # With r=1 the proposed scheme wins even at tiny M against Q_{n-1}:
        m_star = crossover_keys(5, [0], lo=4096, hi=1 << 18)
        assert m_star is not None

    def test_none_when_never_winning(self):
        # Against itself (no faults), "baseline" is the same machine: the
        # speedup hovers around 1 and never strictly exceeds it... use a
        # rigged fast-baseline case instead: unreachable in practice, so
        # simply check hi respected via a tiny hi.
        m_star = crossover_keys(5, PAPER_FAULTS, lo=16, hi=32)
        assert m_star is None


class TestModelAccuracy:
    def test_worst_case_is_sound(self):
        acc = model_accuracy(24 * 1000, 5, PAPER_FAULTS)
        assert acc.ratio <= 1.0
        assert acc.measured > 0 and acc.model_bound > 0

    def test_sound_across_fault_counts(self):
        for faults in ([], [7], [7, 20], PAPER_FAULTS):
            acc = model_accuracy(24 * 500, 5, faults)
            assert acc.ratio <= 1.0, faults

    def test_model_not_absurdly_loose_for_fault_free(self):
        acc = model_accuracy(32 * 1000, 5, [])
        assert acc.ratio > 0.3


class TestBreakdown:
    def test_stages_cover_all_phases(self, rng):
        res = fault_tolerant_sort(rng.random(24 * 200), 5, PAPER_FAULTS)
        stages = phase_breakdown(res.machine)
        assert sum(s.phases for s in stages.values()) == len(res.machine.phases)
        assert sum(s.duration for s in stages.values()) == pytest.approx(res.elapsed)

    def test_expected_stage_names(self, rng):
        res = fault_tolerant_sort(rng.random(24 * 200), 5, PAPER_FAULTS)
        stages = phase_breakdown(res.machine)
        assert "local sort (step 3a)" in stages
        assert "inter-subcube exchange (step 7)" in stages
        assert "subcube re-sort (step 8)" in stages

    def test_sorted_by_duration(self, rng):
        res = fault_tolerant_sort(rng.random(24 * 200), 5, PAPER_FAULTS)
        durations = [s.duration for s in phase_breakdown(res.machine).values()]
        assert durations == sorted(durations, reverse=True)

    def test_fault_free_uses_bitonic_stage(self, rng):
        res = fault_tolerant_sort(rng.random(64), 3, [])
        stages = phase_breakdown(res.machine)
        assert "full-cube bitonic" in stages
