"""Tests for repro.analysis.records and MachineParams.with_record_bytes."""

from __future__ import annotations

import pytest

from repro.analysis.records import record_size_sensitivity
from repro.simulator.params import MachineParams


class TestWithRecordBytes:
    def test_scales_transfer_only(self):
        p = MachineParams(t_compare=10, t_element=10, t_startup=350)
        q = p.with_record_bytes(16)
        assert q.t_element == 40.0
        assert q.t_compare == p.t_compare
        assert q.t_startup == p.t_startup

    def test_identity_for_key_size(self):
        p = MachineParams.ncube7()
        assert p.with_record_bytes(4) == p

    def test_preserves_switching(self):
        p = MachineParams.ncube2()
        assert p.with_record_bytes(64).switching == "cut_through"

    def test_rejects_sub_key_records(self):
        with pytest.raises(ValueError):
            MachineParams.ncube7().with_record_bytes(2)


class TestRecordSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        return record_size_sensitivity(
            5, [3, 5, 16, 24], 24 * 400, record_sizes=(4, 32, 256), seed=2
        )

    def test_times_grow_with_record_size(self, rows):
        assert rows[0].proposed_time < rows[1].proposed_time < rows[2].proposed_time
        assert rows[0].baseline_time < rows[1].baseline_time < rows[2].baseline_time

    def test_speedup_erodes_with_record_size(self, rows):
        # The proposed scheme is multi-hop-heavier: big records favor the
        # single-hop baseline.
        assert rows[0].speedup > rows[-1].speedup

    def test_small_records_favor_proposed(self):
        rows = record_size_sensitivity(
            5, [3, 5, 16, 24], 24 * 4000, record_sizes=(4,), seed=3
        )
        assert rows[0].speedup > 1.0

    def test_speedup_property(self, rows):
        for r in rows:
            assert r.speedup == pytest.approx(r.baseline_time / r.proposed_time)
