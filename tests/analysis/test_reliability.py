"""Tests for repro.analysis.reliability — expected-capacity comparison."""

from __future__ import annotations

import pytest

from repro.analysis.reliability import expected_capacity
from repro.baselines.spares import SpareScheme


class TestExpectedCapacity:
    @pytest.fixture(scope="class")
    def curve(self):
        return expected_capacity(5, 0.02, placements_per_r=120, rng=1)

    def test_capacities_in_unit_interval(self, curve):
        for v in (curve.proposed, curve.max_subcube, curve.spares):
            assert 0.0 <= v <= 1.0

    def test_proposed_beats_subcube(self, curve):
        # The paper's utilization thesis, in expectation.
        assert curve.proposed > curve.max_subcube

    def test_no_failures_full_capacity(self):
        c = expected_capacity(4, 0.0, placements_per_r=10, rng=0)
        assert c.proposed == c.max_subcube == c.spares == pytest.approx(1.0)

    def test_capacity_decreases_with_p(self):
        lo = expected_capacity(5, 0.01, placements_per_r=80, rng=2)
        hi = expected_capacity(5, 0.08, placements_per_r=80, rng=2)
        assert hi.proposed < lo.proposed
        assert hi.max_subcube < lo.max_subcube
        assert hi.spares < lo.spares

    def test_spares_overhead_reported(self, curve):
        assert curve.spare_overhead > 0

    def test_custom_spare_scheme(self):
        rich = SpareScheme(5, module_dim=3, spares_per_module=2)
        poor = SpareScheme(5, module_dim=3, spares_per_module=1)
        c_rich = expected_capacity(5, 0.05, spare_scheme=rich, placements_per_r=60, rng=3)
        c_poor = expected_capacity(5, 0.05, spare_scheme=poor, placements_per_r=60, rng=3)
        assert c_rich.spares > c_poor.spares
        assert c_rich.spare_overhead > c_poor.spare_overhead

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            expected_capacity(4, 1.0)
        with pytest.raises(ValueError):
            expected_capacity(4, -0.1)
