"""Tests for repro.baselines.maxsubcube — Özgüner's reconfiguration method."""

from __future__ import annotations

import pytest

from repro.baselines.maxsubcube import (
    all_max_fault_free_subcubes,
    max_fault_free_dim,
    max_fault_free_subcube,
)
from repro.cube.subcube import enumerate_subcubes
from repro.faults.inject import random_faulty_processors
from repro.faults.model import FaultSet


def brute_force_max_dim(n: int, faults) -> int:
    fault_set = set(faults)
    for k in range(n, -1, -1):
        for sub in enumerate_subcubes(n, k):
            if not any(sub.contains(f) for f in fault_set):
                return k
    raise AssertionError("no fault-free subcube at all")


class TestMaxDim:
    def test_no_faults(self):
        assert max_fault_free_dim(4, []) == 4

    def test_single_fault_gives_n_minus_1(self):
        for f in range(8):
            assert max_fault_free_dim(3, [f]) == 2

    def test_paper_example1_gives_q3(self):
        # Section 4: faults {3, 5, 16, 24} in Q_5 leave at most a Q_3.
        assert max_fault_free_dim(5, [3, 5, 16, 24]) == 3

    def test_antipodal_pair(self):
        # Faults 0 and 2^n - 1: every (n-1)-subcube fixes one dimension,
        # and the two faults cover both values of it, so no Q_{n-1}
        # survives; fixing two dimensions leaves values 01/10 free -> Q_{n-2}.
        assert max_fault_free_dim(4, [0, 15]) == 2

    def test_adjacent_pair_leaves_q_n_minus_1(self):
        # Faults 0 and 1 agree on every dimension but 0; fixing any other
        # dimension to 1 excludes both.
        assert max_fault_free_dim(4, [0, 1]) == 3

    def test_matches_brute_force(self, rng):
        for _ in range(40):
            n = int(rng.integers(2, 6))
            r = int(rng.integers(0, min(6, 1 << n)))
            faults = random_faulty_processors(n, r, rng)
            assert max_fault_free_dim(n, faults) == brute_force_max_dim(n, faults)

    def test_all_faulty_rejected(self):
        with pytest.raises(ValueError):
            max_fault_free_dim(2, [0, 1, 2, 3])

    def test_accepts_fault_set(self):
        assert max_fault_free_dim(4, FaultSet(4, [3])) == 3

    def test_lower_bound_log(self):
        # With r faults, dimension >= n - ceil(log2(r+1)).
        import math

        rng_local = __import__("numpy").random.default_rng(5)
        for _ in range(30):
            n = int(rng_local.integers(3, 7))
            r = int(rng_local.integers(1, n))
            faults = random_faulty_processors(n, r, rng_local)
            dim = max_fault_free_dim(n, faults)
            assert dim >= n - math.ceil(math.log2(r + 1))


class TestMaxSubcube:
    def test_returned_subcube_is_fault_free_and_maximal(self, rng):
        for _ in range(30):
            n = int(rng.integers(2, 6))
            r = int(rng.integers(1, min(5, 1 << n)))
            faults = random_faulty_processors(n, r, rng)
            sub = max_fault_free_subcube(n, faults)
            assert not any(sub.contains(f) for f in faults)
            assert sub.dim == max_fault_free_dim(n, faults)

    def test_no_faults_whole_cube(self):
        sub = max_fault_free_subcube(3, [])
        assert sub.dim == 3

    def test_deterministic(self):
        a = max_fault_free_subcube(5, [3, 5, 16, 24])
        b = max_fault_free_subcube(5, [3, 5, 16, 24])
        assert a == b


class TestAllMaxSubcubes:
    def test_all_are_fault_free_and_maximal(self, rng):
        faults = random_faulty_processors(5, 3, rng)
        subs = all_max_fault_free_subcubes(5, faults)
        best = max_fault_free_dim(5, faults)
        assert subs
        for sub in subs:
            assert sub.dim == best
            assert not any(sub.contains(f) for f in faults)

    def test_exhaustive_against_enumeration(self, rng):
        for _ in range(10):
            faults = random_faulty_processors(4, 2, rng)
            best = max_fault_free_dim(4, faults)
            expected = {
                (s.fixed_mask, s.fixed_value)
                for s in enumerate_subcubes(4, best)
                if not any(s.contains(f) for f in faults)
            }
            got = {(s.fixed_mask, s.fixed_value) for s in all_max_fault_free_subcubes(4, faults)}
            assert got == expected

    def test_no_faults(self):
        subs = all_max_fault_free_subcubes(3, [])
        assert len(subs) == 1 and subs[0].dim == 3
