"""Tests for repro.baselines.spares — modular hardware spare allocation."""

from __future__ import annotations

from math import comb

import numpy as np
import pytest

from repro.baselines.spares import SpareScheme
from repro.faults.model import FaultSet


class TestScheme:
    def test_structure(self):
        s = SpareScheme(6, module_dim=4, spares_per_module=1)
        assert s.num_modules == 4
        assert s.module_size == 16
        assert s.total_spares == 4
        assert s.hardware_overhead == pytest.approx(4 / 64)

    def test_module_of(self):
        s = SpareScheme(4, module_dim=2, spares_per_module=1)
        assert s.module_of(0) == 0
        assert s.module_of(3) == 0
        assert s.module_of(4) == 1
        assert s.module_of(15) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SpareScheme(4, module_dim=5, spares_per_module=1)
        with pytest.raises(ValueError):
            SpareScheme(4, module_dim=2, spares_per_module=-1)
        with pytest.raises(ValueError):
            SpareScheme(3, 1, 1).module_of(8)


class TestRepair:
    def test_spread_faults_repairable(self):
        s = SpareScheme(4, module_dim=2, spares_per_module=1)
        res = s.repair([0, 5, 10, 15])  # one per module
        assert res.success
        assert set(res.replaced) == {0, 5, 10, 15}
        assert res.overloaded_modules == ()

    def test_clustered_faults_overload(self):
        s = SpareScheme(4, module_dim=2, spares_per_module=1)
        res = s.repair([0, 1])  # both in module 0
        assert not res.success
        assert res.overloaded_modules == (0,)
        assert res.replaced == {}

    def test_two_spares_absorb_pairs(self):
        s = SpareScheme(4, module_dim=2, spares_per_module=2)
        assert s.repair([0, 1]).success

    def test_accepts_fault_set(self):
        s = SpareScheme(4, module_dim=2, spares_per_module=1)
        assert s.repair(FaultSet(4, [2, 7])).success


class TestCoverage:
    def test_zero_faults(self):
        assert SpareScheme(4, 2, 1).coverage(0) == 1.0

    def test_one_fault_always_covered(self):
        assert SpareScheme(5, 3, 1).coverage(1) == 1.0

    def test_more_faults_than_spares_zero(self):
        s = SpareScheme(4, module_dim=2, spares_per_module=1)
        assert s.coverage(5) == 0.0  # only 4 spares exist

    def test_exact_small_case(self):
        # Q_2 (4 processors) in 2 modules of 2, one spare each: 2 faults
        # repairable iff they land in different modules: C(2,1)*C(2,1)=4
        # of C(4,2)=6 placements.
        s = SpareScheme(2, module_dim=1, spares_per_module=1)
        assert s.coverage(2) == pytest.approx(4 / 6)

    def test_matches_monte_carlo(self, rng):
        s = SpareScheme(5, module_dim=3, spares_per_module=1)
        r = 3
        trials = 4000
        hits = 0
        for _ in range(trials):
            faults = rng.choice(32, size=r, replace=False)
            hits += s.repair([int(f) for f in faults]).success
        mc = hits / trials
        assert abs(mc - s.coverage(r)) < 0.04

    def test_coverage_monotone_decreasing_in_r(self):
        s = SpareScheme(6, module_dim=4, spares_per_module=1)
        covs = [s.coverage(r) for r in range(0, 6)]
        assert all(a >= b for a, b in zip(covs, covs[1:]))

    def test_more_spares_more_coverage(self):
        lo = SpareScheme(5, module_dim=3, spares_per_module=1)
        hi = SpareScheme(5, module_dim=3, spares_per_module=2)
        assert hi.coverage(3) > lo.coverage(3)

    def test_bad_r_rejected(self):
        with pytest.raises(ValueError):
            SpareScheme(3, 1, 1).coverage(-1)
