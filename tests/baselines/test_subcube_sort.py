"""Tests for repro.baselines.subcube_sort — the Figure-7 baseline sorter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.maxsubcube import max_fault_free_subcube
from repro.baselines.subcube_sort import max_subcube_sort
from repro.core.ftsort import fault_tolerant_sort
from repro.cube.subcube import Subcube
from repro.faults.inject import random_faulty_processors
from repro.simulator.params import MachineParams

from tests.conftest import assert_sorted_output


class TestMaxSubcubeSort:
    def test_sorts(self, rng):
        keys = rng.random(100)
        res = max_subcube_sort(keys, 4, [3, 9])
        assert_sorted_output(res, keys)

    def test_uses_maximal_subcube(self, rng):
        res = max_subcube_sort(rng.random(20), 5, [3, 5, 16, 24])
        assert res.subcube.dim == 3
        assert res.subcube == max_fault_free_subcube(5, [3, 5, 16, 24])

    def test_dangling_count(self, rng):
        # Q_5, 4 faults, Q_3 subcube: dangling = 32 - 4 - 8 = 20.
        res = max_subcube_sort(rng.random(20), 5, [3, 5, 16, 24])
        assert res.dangling == 20

    def test_no_faults_uses_whole_cube(self, rng):
        keys = rng.random(64)
        res = max_subcube_sort(keys, 3, [])
        assert res.subcube.dim == 3
        assert len(res.output_order) == 8
        assert_sorted_output(res, keys)

    def test_blocks_outside_subcube_empty(self, rng):
        res = max_subcube_sort(rng.random(40), 4, [0])
        inside = set(res.output_order)
        for addr in range(16):
            if addr not in inside:
                assert res.machine.get_block(addr).size == 0

    def test_forced_subcube(self, rng):
        keys = rng.random(30)
        sub = Subcube(4, fixed_mask=0b1000, fixed_value=0b1000)
        res = max_subcube_sort(keys, 4, [0], subcube=sub)
        assert res.subcube == sub
        assert_sorted_output(res, keys)

    def test_forced_subcube_with_fault_rejected(self):
        sub = Subcube(4, fixed_mask=0b1000, fixed_value=0)
        with pytest.raises(ValueError):
            max_subcube_sort([1.0], 4, [0], subcube=sub)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            max_subcube_sort([1.0], 4, [0], subcube=Subcube(3, 0, 0))

    def test_empty_keys(self):
        res = max_subcube_sort([], 3, [1])
        assert res.sorted_keys.size == 0


class TestPaperComparison:
    """The qualitative Figure-7 claims: proposed beats the baseline."""

    def test_q6_two_faults_proposed_beats_baseline_best_case(self, rng):
        # Faults {0, 1} leave a fault-free Q_5 (the baseline's best case);
        # the paper's Figure 7(a) claim is that r = 2 still beats it.
        keys = rng.random(64 * 2000)
        p = MachineParams.ncube7()
        ft = fault_tolerant_sort(keys, 6, [0, 1], params=p)
        base = max_subcube_sort(keys, 6, [0, 1], params=p)
        assert base.subcube.dim == 5
        assert ft.elapsed < base.elapsed

    def test_q5_paper_faults_proposed_beats_baseline(self, rng):
        # Example 1's faults leave only a Q_3 for the baseline; at the
        # paper's upper key range the proposed algorithm on 24 workers
        # wins comfortably (crossovers at small M are expected, as in the
        # paper's own figure).
        keys = rng.random(32 * 5000)
        p = MachineParams.ncube7()
        ft = fault_tolerant_sort(keys, 5, [3, 5, 16, 24], params=p)
        base = max_subcube_sort(keys, 5, [3, 5, 16, 24], params=p)
        assert base.subcube.dim == 3
        assert ft.elapsed < base.elapsed

    def test_both_sorts_agree_on_output(self, rng):
        keys = rng.random(500)
        for _ in range(5):
            faults = list(random_faulty_processors(5, 3, rng))
            a = fault_tolerant_sort(keys, 5, faults)
            b = max_subcube_sort(keys, 5, faults)
            np.testing.assert_array_equal(a.sorted_keys, b.sorted_keys)
