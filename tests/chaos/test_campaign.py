"""Tests for repro.chaos.campaign — execution, oracle check, reporting."""

from __future__ import annotations

import json

from repro.chaos import run_campaign, run_scenario, random_scenario
from repro.chaos.schedule import ChaosScenario, ScenarioEvent


class TestRunScenario:
    def test_single_scenario_passes_oracle(self):
        out = run_scenario(random_scenario(0, seed=21))
        assert out.recovered and out.sorted_correct and out.passed
        assert out.total_time > 0

    def test_outcome_dict_replayable(self):
        out = run_scenario(random_scenario(1, seed=21))
        d = out.to_dict()
        json.dumps(d)
        replay = ChaosScenario.from_dict(d["scenario"])
        assert run_scenario(replay).passed == out.passed

    def test_exception_becomes_failure_record(self):
        # An event outside the cube makes FaultEvent.validate raise; the
        # runner must capture that as a failed outcome, not propagate.
        base = random_scenario(0, seed=21)
        from dataclasses import replace

        bad = replace(base, events=(ScenarioEvent("processor", 10**6, 0.5),))
        out = run_scenario(bad)
        assert not out.recovered and not out.passed
        assert out.error and "ValueError" in out.error


class TestRunCampaign:
    def test_small_campaign_all_pass_and_report_written(self, tmp_path):
        report = tmp_path / "chaos.jsonl"
        summary = run_campaign(count=8, seed=5, out=str(report),
                               shrink_failures=False)
        assert summary.scenarios == 8
        assert summary.all_passed and summary.passed == 8
        assert set(summary.backends) == {"phase", "spmd"}
        lines = report.read_text().splitlines()
        assert len(lines) == 9  # 8 scenarios + summary line
        for line in lines[:-1]:
            rec = json.loads(line)
            assert rec["passed"] and "scenario" in rec
        assert json.loads(lines[-1])["summary"]["all_passed"]

    def test_progress_callback_fires(self):
        seen = []
        run_campaign(count=3, seed=1, shrink_failures=False,
                     progress=lambda i, o: seen.append(i))
        assert seen == [0, 1, 2]

    def test_campaign_deterministic(self):
        a = run_campaign(count=4, seed=9, shrink_failures=False)
        b = run_campaign(count=4, seed=9, shrink_failures=False)
        assert a.to_dict() == b.to_dict()
